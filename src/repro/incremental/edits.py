"""The typed edit algebra of the incremental ECO engine.

An *engineering change order* (ECO) arrives as a small set of local
modifications to an already-solved net: a sink's required arrival moved,
a wire segment re-routed, a pin added or dropped, the driver resized.
This module gives each such move a typed, validated representation so
the rest of the subsystem — the
:class:`~repro.incremental.engine.IncrementalSolver`, the ``/session``
endpoints, the ``repro edit`` CLI — can reason about *what changed*
instead of diffing trees.

Each edit is a frozen dataclass with two responsibilities:

* :meth:`Edit.apply` — perform the change on a
  :class:`~repro.tree.routing_tree.RoutingTree` (through the tree's
  validated mutation API) and return an :class:`EditImpact` describing
  the blast radius: the deepest vertex whose *subtree content* changed
  (the dirty anchor the digest update walks up from), plus any
  created/removed node ids;
* a JSON codec (:func:`edit_to_dict` / :func:`edit_from_dict`) in the
  same SI-unit conventions as :mod:`repro.tree.io`, used by the
  ``/session/.../edit`` endpoint and the edit-script files of
  ``repro edit``.

Every failure — unknown node, wrong node kind, invalid value — raises
:class:`~repro.errors.EditError` *before* the tree is touched, so a
rejected edit never leaves a session half-applied.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional, Tuple, Type

from repro.errors import EditError, ReproError
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class EditImpact:
    """What one applied edit did to the net.

    Attributes:
        anchor: The deepest surviving vertex whose subtree *content*
            changed — digests must be recomputed from here up to the
            root.  ``None`` for driver swaps (the driver is outside
            every subtree digest by design).
        structural: Whether the node/edge set changed (the compiled
            schedule must be re-flattened; payload-only edits are
            patched in place instead).
        created: Node ids added by this edit.
        removed: Node ids deleted by this edit.
    """

    anchor: Optional[int]
    structural: bool = False
    created: Tuple[int, ...] = ()
    removed: Tuple[int, ...] = ()


class Edit:
    """Base class of the edit algebra (see module docstring)."""

    #: JSON ``op`` tag; set per subclass.
    op: str = ""

    def apply(self, tree: RoutingTree) -> EditImpact:
        """Validate against ``tree``, mutate it, and report the impact.

        Raises:
            EditError: The edit does not apply to this net.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human summary (CLI transcripts)."""
        payload = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{self.op}({payload})"


def _sink(tree: RoutingTree, node_id: int) -> None:
    try:
        node = tree.node(node_id)
    except ReproError as exc:
        raise EditError(str(exc)) from exc
    if not node.is_sink:
        raise EditError(
            f"node {node_id} is a {node.kind.value}, not a sink"
        )


def _non_root(tree: RoutingTree, node_id: int) -> None:
    try:
        tree.node(node_id)
    except ReproError as exc:
        raise EditError(str(exc)) from exc
    if node_id == tree.root_id:
        raise EditError("the source vertex has no incoming wire")


@dataclass(frozen=True)
class SetSinkRAT(Edit):
    """Change a sink's required arrival time (seconds)."""

    node: int
    required_arrival: float
    op = "set_sink_rat"

    def apply(self, tree: RoutingTree) -> EditImpact:
        _sink(tree, self.node)
        tree.set_sink(self.node, required_arrival=self.required_arrival)
        return EditImpact(anchor=self.node)


@dataclass(frozen=True)
class SetSinkCap(Edit):
    """Change a sink's load capacitance (farads)."""

    node: int
    capacitance: float
    op = "set_sink_cap"

    def apply(self, tree: RoutingTree) -> EditImpact:
        _sink(tree, self.node)
        if self.capacitance < 0.0:
            raise EditError(
                f"sink capacitance must be >= 0, got {self.capacitance}"
            )
        tree.set_sink(self.node, capacitance=self.capacitance)
        return EditImpact(anchor=self.node)


@dataclass(frozen=True)
class SetSinkPolarity(Edit):
    """Flip a sink's required signal polarity (+1 or -1)."""

    node: int
    polarity: int
    op = "set_sink_polarity"

    def apply(self, tree: RoutingTree) -> EditImpact:
        _sink(tree, self.node)
        if self.polarity not in (1, -1):
            raise EditError(f"polarity must be +1 or -1, got {self.polarity}")
        tree.set_sink(self.node, polarity=self.polarity)
        return EditImpact(anchor=self.node)


@dataclass(frozen=True)
class SetWire(Edit):
    """Re-parasitize the wire reaching ``node`` (move / re-length).

    ``node`` is the *downstream* endpoint; topology is unchanged.  The
    subtree under ``node`` keeps its digest — only the parent's
    accumulation sees the new ``R``/``C`` — so the anchor is the parent.
    """

    node: int
    resistance: float
    capacitance: float
    length: Optional[float] = None
    op = "set_wire"

    def apply(self, tree: RoutingTree) -> EditImpact:
        _non_root(tree, self.node)
        if self.resistance < 0.0 or self.capacitance < 0.0:
            raise EditError(
                "wire parasitics must be >= 0 "
                f"(R={self.resistance}, C={self.capacitance})"
            )
        tree.set_edge(
            self.node, resistance=self.resistance,
            capacitance=self.capacitance, length=self.length,
        )
        return EditImpact(anchor=tree.edge_to(self.node).parent)


@dataclass(frozen=True)
class SwapDriver(Edit):
    """Replace the source driver (``resistance=None`` = ideal driver).

    The driver sits *outside* the dynamic program's subtree recursion —
    it only scores the finished root frontier — so this edit dirties no
    subtree at all: an incremental re-solve after a driver swap is one
    argmax over the memoized root frontier.
    """

    resistance: Optional[float] = None
    intrinsic_delay: float = 0.0
    name: str = "driver"
    op = "swap_driver"

    def apply(self, tree: RoutingTree) -> EditImpact:
        if self.resistance is None:
            tree.driver = None
        else:
            try:
                tree.driver = Driver(
                    resistance=self.resistance,
                    intrinsic_delay=self.intrinsic_delay,
                    name=self.name,
                )
            except ReproError as exc:
                raise EditError(str(exc)) from exc
        return EditImpact(anchor=None)


@dataclass(frozen=True)
class AddSink(Edit):
    """Attach a new sink pin under an existing vertex."""

    parent: int
    edge_resistance: float
    edge_capacitance: float
    capacitance: float
    required_arrival: float
    polarity: int = 1
    name: str = ""
    op = "add_sink"

    def apply(self, tree: RoutingTree) -> EditImpact:
        try:
            node = tree.node(self.parent)
        except ReproError as exc:
            raise EditError(str(exc)) from exc
        if node.is_sink:
            raise EditError(
                f"cannot attach under sink {self.parent}: sinks are leaves"
            )
        try:
            new_id = tree.add_sink(
                self.parent, self.edge_resistance, self.edge_capacitance,
                capacitance=self.capacitance,
                required_arrival=self.required_arrival,
                polarity=self.polarity, name=self.name,
            )
        except ReproError as exc:
            raise EditError(str(exc)) from exc
        return EditImpact(
            anchor=self.parent, structural=True, created=(new_id,)
        )


@dataclass(frozen=True)
class SplitWire(Edit):
    """Insert an internal vertex (a buffer position) inside a wire.

    The edge reaching ``node`` splits at ``fraction`` of its electrical
    extent; total parasitics are conserved exactly (see
    :meth:`~repro.tree.routing_tree.RoutingTree.split_edge`).
    """

    node: int
    fraction: float = 0.5
    buffer_position: bool = True
    allowed_buffers: Optional[Tuple[str, ...]] = None
    name: str = ""
    op = "split_wire"

    def apply(self, tree: RoutingTree) -> EditImpact:
        _non_root(tree, self.node)
        if not 0.0 < self.fraction < 1.0:
            raise EditError(
                f"split fraction must be inside (0, 1), got {self.fraction}"
            )
        parent = tree.edge_to(self.node).parent
        try:
            new_id = tree.split_edge(
                self.node, fraction=self.fraction,
                buffer_position=self.buffer_position,
                allowed_buffers=self.allowed_buffers, name=self.name,
            )
        except ReproError as exc:
            raise EditError(str(exc)) from exc
        return EditImpact(anchor=parent, structural=True, created=(new_id,))


@dataclass(frozen=True)
class RemoveSubtree(Edit):
    """Drop a vertex and everything below it (ECO pin removal)."""

    node: int
    op = "remove_subtree"

    def apply(self, tree: RoutingTree) -> EditImpact:
        _non_root(tree, self.node)
        parent = tree.edge_to(self.node).parent
        try:
            removed = tree.remove_subtree(self.node)
        except ReproError as exc:
            raise EditError(str(exc)) from exc
        return EditImpact(
            anchor=parent, structural=True, removed=tuple(removed)
        )


#: JSON ``op`` tag -> edit class (the codec's dispatch table).
EDIT_TYPES: Dict[str, Type[Edit]] = {
    cls.op: cls
    for cls in (
        SetSinkRAT, SetSinkCap, SetSinkPolarity, SetWire, SwapDriver,
        AddSink, SplitWire, RemoveSubtree,
    )
}


def edit_to_dict(edit: Edit) -> Dict[str, Any]:
    """Serialize one edit to its JSON object (``{"op": ..., fields}``)."""
    if not isinstance(edit, Edit) or edit.op not in EDIT_TYPES:
        raise EditError(f"not an edit: {edit!r}")
    payload: Dict[str, Any] = {"op": edit.op}
    for key, value in asdict(edit).items():
        if isinstance(value, tuple):
            value = list(value)
        payload[key] = value
    return payload


def edit_from_dict(data: Dict[str, Any]) -> Edit:
    """Parse one edit from its JSON object.

    Raises:
        EditError: Missing/unknown ``op``, unknown fields, or field
            values of the wrong shape (the dataclass raises on type
            misuse at apply time; structural problems surface here).
    """
    if not isinstance(data, dict):
        raise EditError(f"an edit must be an object, got {type(data).__name__}")
    op = data.get("op")
    cls = EDIT_TYPES.get(op)
    if cls is None:
        raise EditError(
            f"unknown edit op {op!r}; known ops: {sorted(EDIT_TYPES)}"
        )
    known = {f.name for f in fields(cls)}
    payload = {key: value for key, value in data.items() if key != "op"}
    unknown = set(payload) - known
    if unknown:
        raise EditError(
            f"unknown fields for {op!r}: {sorted(unknown)} "
            f"(expected among {sorted(known)})"
        )
    if "allowed_buffers" in payload and payload["allowed_buffers"] is not None:
        payload["allowed_buffers"] = tuple(payload["allowed_buffers"])
    try:
        return cls(**payload)
    except TypeError as exc:
        raise EditError(f"bad {op!r} edit: {exc}") from exc
