"""The incremental re-solve engine: dirty-path execution with splicing.

:class:`IncrementalSolver` is a stateful session around one net: it
compiles the net's postorder schedule once, memoizes every subtree's
finished candidate frontier in a digest-keyed
:class:`~repro.incremental.subtree_cache.FrontierCache`, and after each
batch of :mod:`~repro.incremental.edits` re-runs **only the dirty
instruction sub-ranges** of the schedule — every clean subtree is a
contiguous, skippable range whose cached frontier is spliced onto the
interpreter stack in O(k).  The result — slack, assignment, driver
load, even the ``peak_list_length`` / ``candidates_generated`` DP stats
— is bit-identical to a from-scratch solve of the edited net (asserted
exactly, ``==`` not approx, by ``tests/test_incremental.py``).

**How dirtiness works.**  The engine maintains a Merkle digest per
subtree and updates it along the edited node's root path (O(depth) per
edit).  At resolve time nothing is explicitly marked dirty: the
interpreter simply probes the frontier cache at every subtree start —
an edited subtree's digest changed, so it *misses* and is re-executed
(and re-captured), while unchanged subtrees hit and are skipped.  The
digest is the invalidation.  This also means structurally repeated
subtrees — sibling copies, or the same subtree across different
sessions sharing one cache — are solved once and spliced everywhere
else.

**Why the digest is order-sensitive.**  Unlike
:func:`repro.service.canon.canonicalize` (which sorts children so
cosmetic reordering hits one cache entry), the frontier digest hashes
children in **tree order**: the DP folds sibling branches left to
right, and float addition is not associative, so frontiers of two
subtrees that are equal only up to child reordering can differ in the
last ulp.  Keying on the order-sensitive digest is what lets a spliced
frontier replay the exact IEEE-754 data flow of a scratch solve.  (The
canonical sorted digest remains the *request*-level key — see
:attr:`~repro.service.canon.CanonicalNet.subtree_keys`.)

**Provenance across solves.**  A cached frontier's decisions name node
ids of the tree it was captured from.  Splicing into a digest-equal
subtree elsewhere wraps each decision in a
:class:`SplicedFrontierDecision`, which translates ids through
tree-preorder indices at backtrace time — O(answer), only for the
winning candidate.  Splices into the *same* vertex of an unchanged
index reuse the decisions unwrapped.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

from repro.core.candidate import (
    Candidate,
    ExpandedDecision,
    reconstruct_assignment,
)
from repro.core.dp import _finish, _resolve_ops
from repro.core.registry import get_algorithm
from repro.core.schedule import (
    OP_FINAL,
    OP_MERGE,
    OP_SINK,
    OP_WIRE,
    CompiledNet,
    compile_net,
)
from repro.core.solution import BufferingResult
from repro.core.stores import get_store_backend, resolve_backend
from repro.core.stores.soa import _CHAIN_LIMIT
from repro.errors import AlgorithmError, EditError
from repro.incremental.edits import (
    Edit,
    EditImpact,
    SetSinkCap,
    SetSinkRAT,
    SetWire,
    SplitWire,
    edit_from_dict,
)
from repro.incremental.subtree_cache import FrontierCache, FrontierSnapshot
from repro.library.library import BufferLibrary
from repro.obs.profiler import instrument_ops
from repro.obs.spans import active_tracer
from repro.resilience.deadline import active_deadline
from repro.service.canon import (
    digest_body,
    edge_entry,
    library_key,
    node_payload,
    options_key,
)
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


class TreeIndex:
    """A frozen tree-preorder numbering of one net state.

    Preorder makes every subtree a contiguous index block, so two
    digest-equal subtrees (identical shape *in tree order*) correspond
    position-by-position: node at relative index ``r`` of one maps to
    relative index ``r`` of the other.  Snapshots pin the index of the
    state they were captured from; one instance is shared by all
    snapshots of a resolve, and payload-only edits reuse it outright
    (ids and order don't move).
    """

    __slots__ = ("node_of_index", "index_of_node")

    def __init__(self, node_of_index: Tuple[int, ...]) -> None:
        self.node_of_index = node_of_index
        self.index_of_node = {
            node_id: index for index, node_id in enumerate(node_of_index)
        }


class SplicedFrontierDecision:
    """Provenance of a spliced candidate: translate ids at backtrace.

    Wraps a captured decision DAG together with the capture-time and
    splice-time :class:`TreeIndex` anchors.  ``expand`` (the deferred
    hook of :func:`repro.core.candidate.reconstruct_assignment`) expands
    the inner decision into the capture tree's ids, then maps each
    assigned node through its preorder offset onto the splice target's
    subtree — the step that makes one cache entry serve every
    digest-equal subtree instance with correct node ids.

    ``chain_depth`` counts nested provenance generations (wrappers and
    tape archives); once it reaches the cap, the engine flattens the
    splice to an :class:`~repro.core.candidate.ExpandedDecision`
    instead of nesting further, bounding both retained memory and the
    expansion recursion however long a session lives.
    """

    __slots__ = ("decision", "src_index", "src_root", "dst_index",
                 "dst_root", "chain_depth")

    def __init__(
        self,
        decision: object,
        src_index: TreeIndex,
        src_root: int,
        dst_index: TreeIndex,
        dst_root: int,
    ) -> None:
        self.decision = decision
        self.src_index = src_index
        self.src_root = src_root
        self.dst_index = dst_index
        self.dst_root = dst_root
        self.chain_depth = 1 + getattr(decision, "chain_depth", 0)

    def expand(self, assignment: Dict[int, object], stack: list) -> None:
        inner = reconstruct_assignment(self.decision)
        if not inner:
            return
        src_of = self.src_index.index_of_node
        dst_nodes = self.dst_index.node_of_index
        offset = (
            self.dst_index.index_of_node[self.dst_root]
            - src_of[self.src_root]
        )
        for node_id, buffer in inner.items():
            assignment[dst_nodes[src_of[node_id] + offset]] = buffer

    def __repr__(self) -> str:
        return (
            f"SplicedFrontierDecision({self.src_root}->{self.dst_root})"
        )


def splice_snapshot(
    snapshot: FrontierSnapshot, factory=None, decisions=None
):
    """Materialize a frozen frontier into a live store list.

    The splice primitive shared by the incremental engine and the
    parallel partitioned solver: turns a
    :class:`~repro.incremental.subtree_cache.FrontierSnapshot` back
    into whatever the executing backend pushes on its interpreter
    stack — a plain :class:`~repro.core.candidate.Candidate` list for
    the object backend (``factory=None``) or a store built by
    ``factory.from_snapshot`` (value columns copied, provenance
    deferred).  The copied floats are the captured floats, so every
    downstream operation sees bit-identical inputs.

    ``decisions`` overrides the snapshot's own provenance — the
    incremental engine passes id-translated wrappers here; callers
    splicing in original coordinates (the parallel solver — subschedule
    extraction preserves node ids) leave it ``None``.
    """
    if decisions is None:
        decisions = snapshot.decision_list()
    if factory is None:
        return [
            Candidate(q=q, c=c, decision=decision)
            for q, c, decision in zip(snapshot.q, snapshot.c, decisions)
        ]
    return factory.from_snapshot(snapshot.q, snapshot.c, decisions)


class IncrementalSolver:
    """A stateful ECO session: apply edits, re-solve the dirty path.

    Typical use::

        solver = IncrementalSolver(tree, library, algorithm="fast")
        baseline = solver.resolve()            # full solve, frontiers memoized
        solver.apply(SetWire(node=17, resistance=3.1, capacitance=4.2e-15))
        updated = solver.resolve()             # pays only the dirty path

    The session owns its tree (edits mutate it in place), a private
    :class:`~repro.core.schedule.CompiledNet` (payload edits are O(1)
    array patches; structural edits re-flatten), a private store
    factory (warm SoA arenas across re-solves) and a
    :class:`~repro.incremental.subtree_cache.FrontierCache` — pass a
    shared cache to pool frontier memory across sessions (the server
    does).

    Args:
        tree: The net; validated once here, mutated by :meth:`apply`.
        library: The buffer library (fixed for the session's lifetime).
        algorithm: A registered algorithm exposing ``add_buffer_op``
            (all built-ins do).
        backend: Candidate-store backend name or ``"auto"``; must be
            ``"object"`` or provide frontier snapshots (``"soa"`` does).
        driver: Fixed driver override; default ``None`` follows
            ``tree.driver`` (so :class:`~repro.incremental.edits.SwapDriver`
            edits take effect).
        cache: Shared :class:`FrontierCache`; a private one by default.
        capture: Memoize frontiers while solving (disable for pure
            replay measurements).
        **options: Algorithm options (part of every cache key).

    Raises:
        AlgorithmError: Unknown algorithm/backend, invalid options, an
            algorithm without ``add_buffer_op``, or a backend without
            snapshot support.
    """

    def __init__(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        algorithm: str = "fast",
        backend: str = "auto",
        driver: Optional[Driver] = None,
        cache: Optional[FrontierCache] = None,
        capture: bool = True,
        **options,
    ) -> None:
        self.tree = tree
        self.library = library
        self.algorithm = algorithm
        self.backend = resolve_backend(backend)
        self.driver = driver
        self.capture = capture
        self.options = dict(options)
        strategy = get_algorithm(algorithm)
        strategy.validate_options(options)
        self._add_buffer = strategy.add_buffer_op(
            self.backend, library, **options
        )
        self._label = strategy.stats_label(**options)
        self.cache = cache if cache is not None else FrontierCache()
        self._context_key = digest_body(";".join((
            f"lib={library_key(library)}",
            f"alg={algorithm}",
            f"backend={self.backend}",
            f"opts={options_key(options)}",
        )))
        if self.backend == "object":
            self.factory = None
        else:
            # Backends without snapshot support fail loudly on the first
            # capture (StoreFactory's defaults raise AlgorithmError).
            self.factory = get_store_backend(self.backend)()
        try:
            tree.validate()
        except Exception as exc:
            raise AlgorithmError(f"invalid routing tree: {exc}") from exc
        self.compiled: CompiledNet = compile_net(tree, library, validate=False)
        self._digest: Dict[int, str] = {}
        self._entry: Dict[int, str] = {}
        self._rebuild_digests()
        self._index: Optional[TreeIndex] = None
        self._index_stale = True
        self._schedule_stale = False
        self._probe: Optional[Dict[int, List[int]]] = None
        self._final_node: Optional[Dict[int, int]] = None
        self._stale = True
        self._last_result: Optional[BufferingResult] = None
        #: Session counters (surfaced by /stats and `repro edit`).
        self.resolves = 0
        self.edits_applied = 0
        self.last_executed_fraction = 1.0
        self.last_spliced_subtrees = 0
        self._executed_instructions = 0
        self._total_instructions = 0

    # -- digest maintenance --------------------------------------------

    def _body(self, node_id: int) -> str:
        """The order-sensitive Merkle body of one vertex (see module
        docstring for why children are *not* sorted here)."""
        body = node_payload(self.tree, node_id)
        children = self.tree.children_of(node_id)
        if children:
            entry = self._entry
            body += "[" + "|".join(entry[child] for child in children) + "]"
        return body

    def _digest_node(self, node_id: int) -> None:
        self._digest[node_id] = digest_body(self._body(node_id))
        if node_id != self.tree.root_id:
            edge = self.tree.edge_to(node_id)
            self._entry[node_id] = edge_entry(
                edge.resistance, edge.capacitance, self._digest[node_id]
            )

    def _rebuild_digests(self) -> None:
        self._digest.clear()
        self._entry.clear()
        for node_id in self.tree.postorder():
            self._digest_node(node_id)

    def _recompute_up(self, node_id: int) -> None:
        """Refresh digests from ``node_id`` to the root (the dirty path)."""
        tree = self.tree
        current: Optional[int] = node_id
        while current is not None:
            self._digest_node(current)
            current = (
                None if current == tree.root_id
                else tree.edge_to(current).parent
            )

    # -- edits ---------------------------------------------------------

    def apply(self, edit: Union[Edit, Dict]) -> EditImpact:
        """Apply one edit to the session's net.

        Accepts an :class:`~repro.incremental.edits.Edit` or its JSON
        dict form.  Digests along the dirty path are refreshed, and the
        compiled schedule is patched in place (payload edits) or marked
        for re-flattening (structural edits).  The next
        :meth:`resolve` pays only for what changed.

        Raises:
            EditError: The edit is malformed or does not apply; the net
                is left untouched in that case.
        """
        if isinstance(edit, dict):
            edit = edit_from_dict(edit)
        if not isinstance(edit, Edit):
            raise EditError(f"not an edit: {edit!r}")
        impact = edit.apply(self.tree)
        self.edits_applied += 1
        self._stale = True

        for node_id in impact.removed:
            self._digest.pop(node_id, None)
            self._entry.pop(node_id, None)
        if isinstance(edit, (SetWire, SplitWire)):
            # The child keeps its digest; only its edge-prefixed entry
            # (and everything above) changes.
            edge = self.tree.edge_to(edit.node)
            self._entry[edit.node] = edge_entry(
                edge.resistance, edge.capacitance, self._digest[edit.node]
            )
        for node_id in impact.created:
            self._digest_node(node_id)
        if impact.anchor is not None:
            self._recompute_up(impact.anchor)

        if impact.structural:
            self._schedule_stale = True
            self._index_stale = True
        elif self._schedule_stale:
            # A re-flatten is already pending (earlier structural edit):
            # it will pick up this payload change from the tree, and the
            # old schedule may not even contain the edited node.
            pass
        elif isinstance(edit, (SetSinkRAT, SetSinkCap)):
            node = self.tree.node(edit.node)
            self.compiled.patch_sink(
                edit.node, node.required_arrival, node.capacitance
            )
        elif isinstance(edit, SetWire):
            self.compiled.patch_wire(
                edit.node, edit.resistance, edit.capacitance
            )
        # SetSinkPolarity and SwapDriver leave the schedule untouched:
        # polarity is outside the compiled payloads, the driver only
        # scores the finished root frontier.
        return impact

    def apply_edits(self, edits) -> List[EditImpact]:
        """Apply a sequence of edits (see :meth:`apply`)."""
        return [self.apply(edit) for edit in edits]

    # -- schedule / index upkeep ---------------------------------------

    def _ensure_schedule(self) -> None:
        if not self._schedule_stale:
            return
        # Structural edits went through the validated mutation API, but
        # re-validating here is cheap relative to a re-flatten and keeps
        # invariant violations loud at the earliest boundary.
        self.compiled = compile_net(self.tree, self.library, validate=True)
        self._schedule_stale = False
        self._probe = None
        self._final_node = None

    def _frozen_index(self) -> TreeIndex:
        if self._index is None or self._index_stale:
            self._index = TreeIndex(tuple(self.tree.preorder()))
            self._index_stale = False
        return self._index

    def _probes(self) -> Dict[int, List[int]]:
        """``instruction -> [nodes whose subtree starts here]``, outermost
        first (so the largest clean subtree wins the splice)."""
        if self._probe is None:
            final = self.compiled.final_of_node
            by_start: Dict[int, List[int]] = {}
            for node, start in self.compiled.start_of_node.items():
                by_start.setdefault(start, []).append(node)
            for nodes in by_start.values():
                nodes.sort(key=final.__getitem__, reverse=True)
            self._probe = by_start
            self._final_node = {
                index: node for node, index in final.items()
            }
        return self._probe

    # -- splice / capture ----------------------------------------------

    def _splice(
        self, snapshot: FrontierSnapshot, target_root: int, index: TreeIndex
    ):
        decisions = snapshot.decision_list()
        if snapshot.canon is not index or snapshot.root_id != target_root:
            src_of = snapshot.canon.index_of_node
            dst_nodes = index.node_of_index
            offset = index.index_of_node[target_root] - src_of[snapshot.root_id]
            wrapped = []
            for decision in decisions:
                if getattr(decision, "chain_depth", 0) >= _CHAIN_LIMIT:
                    # Cap the provenance chain: expand + translate now
                    # (O(answer) once) instead of nesting another
                    # generation of wrappers.
                    wrapped.append(ExpandedDecision({
                        dst_nodes[src_of[node_id] + offset]: buffer
                        for node_id, buffer
                        in reconstruct_assignment(decision).items()
                    }))
                else:
                    wrapped.append(SplicedFrontierDecision(
                        decision, snapshot.canon, snapshot.root_id,
                        index, target_root,
                    ))
            decisions = wrapped
        return splice_snapshot(snapshot, self.factory, decisions=decisions)

    # -- the dirty-path interpreter ------------------------------------

    def resolve(self) -> BufferingResult:
        """Solve the current net, reusing every memoized clean subtree.

        Bit-identical to ``insert_buffers(tree, library, ...)`` on the
        edited net — including the DP stats, except ``runtime_seconds``
        which reports this (much shorter) resolve.  With no edits since
        the last resolve, returns the previous result without solving.
        """
        if self._last_result is not None and not self._stale:
            return self._last_result
        self._ensure_schedule()
        index = self._frozen_index()
        compiled = self.compiled
        steps, wire_r, wire_c, sink_node, sink_q, sink_c = compiled.runtime()
        plans = compiled.plans()
        probes = self._probes()
        final_node = self._final_node
        final_of_node = compiled.final_of_node
        digest = self._digest
        cache = self.cache
        context = self._context_key
        capture = self.capture
        add_buffer = self._add_buffer
        driver = self.driver if self.driver is not None else self.tree.driver

        started = time.perf_counter()
        sink_op, wire_op, merge_op, best_op, release = _resolve_ops(
            self.backend, None, None, factory=self.factory
        )
        sink_op, wire_op, merge_op, add_buffer, end_range = instrument_ops(
            sink_op, wire_op, merge_op, add_buffer
        )
        tracer = active_tracer()
        resolve_handle = (
            tracer.begin("incremental.resolve", backend=self.backend)
            if tracer is not None
            else None
        )
        factory = self.factory
        snapshot_values = getattr(factory, "snapshot_values", None)

        stack: List[object] = []
        push = stack.append
        pop = stack.pop
        peaks: List[int] = []
        gens: List[int] = []
        # Captures collect here and become cache entries only after the
        # run: values are copied at the capture point (the object
        # backend's wire op mutates candidates in place downstream) but
        # SoA provenance stays as raw tape indices until the tape is
        # archived once, at the end — capture cost therefore scales
        # with candidate values, not provenance graphs.
        pending: List[tuple] = []
        pending_keys = set()
        executed = 0
        spliced = 0
        i = 0
        total = len(steps)
        current = None
        deadline = active_deadline()
        while i < total:
            nodes_here = probes.get(i)
            if nodes_here is not None:
                snapshot = None
                for node in nodes_here:
                    snapshot = cache.get((digest[node], context))
                    if snapshot is not None:
                        break
                if snapshot is not None:
                    if tracer is not None:
                        splice_handle = tracer.begin(
                            "splice", node=node, size=len(snapshot.q)
                        )
                        push(self._splice(snapshot, node, index))
                        tracer.end(splice_handle)
                    else:
                        push(self._splice(snapshot, node, index))
                    peaks.append(snapshot.peak)
                    gens.append(snapshot.generated)
                    spliced += 1
                    i = final_of_node[node] + 1
                    continue
            op, arg = steps[i]
            executed += 1
            code = op & 3
            if code == OP_WIRE:
                top = stack[-1]
                current = wire_op(top, wire_r[arg], wire_c[arg])
                if current is not top:
                    release(top)
                    stack[-1] = current
            elif code == OP_SINK:
                current = sink_op(sink_node[arg], sink_q[arg], sink_c[arg])
                push(current)
                peaks.append(0)
                gens.append(1)
            elif code == OP_MERGE:
                right = pop()
                left = pop()
                right_peak = peaks.pop()
                right_gen = gens.pop()
                current = merge_op(left, right)
                gens[-1] += right_gen + len(current)
                if right_peak > peaks[-1]:
                    peaks[-1] = right_peak
                if current is not left:
                    release(left)
                if current is not right:
                    release(right)
                # Right's aggregate slot folded into left's, which now
                # sits exactly under the pushed result.
                push(current)
            else:  # OP_BUFFER
                top = stack[-1]
                before = len(top)
                current = add_buffer(top, plans[arg])
                gens[-1] += max(len(current) - before, 0)
                if current is not top:
                    release(top)
                    stack[-1] = current
            if op & OP_FINAL:
                length = len(current)
                if length > peaks[-1]:
                    peaks[-1] = length
                if deadline is not None:
                    deadline.check("incremental.resolve")
                if end_range is not None:
                    end_range(length)
                if capture:
                    node = final_node[i]
                    key = (digest[node], context)
                    if key not in pending_keys and key not in cache:
                        pending_keys.add(key)
                        store = stack[-1]
                        if snapshot_values is not None:
                            q, c, d = snapshot_values(store)
                            decisions = None
                        else:
                            q = []
                            c = []
                            decision_list = []
                            for candidate in store:
                                q.append(candidate.q)
                                c.append(candidate.c)
                                decision_list.append(candidate.decision)
                            decisions = tuple(decision_list)
                            d = None
                        pending.append(
                            (key, node, q, c, decisions, d,
                             peaks[-1], gens[-1])
                        )
            i += 1

        assert len(stack) == 1, "schedule must reduce to the root list"
        if resolve_handle is not None:
            tracer.end(
                resolve_handle, executed=executed, total=total,
                spliced=spliced,
            )
        result = _finish(
            stack[0], best_op, release, driver, self._label,
            compiled.num_buffer_positions, self.library, peaks[0], gens[0],
            started, self.backend,
        )
        if pending:
            archive = (
                factory.archive_tape() if snapshot_values is not None
                else None
            )
            for key, node, q, c, decisions, d, peak, gen in pending:
                cache.put(key, FrontierSnapshot(
                    q, c, decisions, index, node, peak, gen,
                    archive=archive, d=d,
                ))
        if factory is not None:
            factory.end_solve()

        self.resolves += 1
        self.last_executed_fraction = executed / total if total else 0.0
        self.last_spliced_subtrees = spliced
        self._executed_instructions += executed
        self._total_instructions += total
        self._last_result = result
        self._stale = False
        return result

    # -- introspection -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.tree.num_nodes

    def stats(self) -> Dict[str, object]:
        """Session health: counters plus the frontier cache's (JSON-ready)."""
        total = self._total_instructions
        return {
            "algorithm": self._label,
            "backend": self.backend,
            "num_nodes": self.tree.num_nodes,
            "resolves": self.resolves,
            "edits_applied": self.edits_applied,
            "last_executed_fraction": self.last_executed_fraction,
            "last_spliced_subtrees": self.last_spliced_subtrees,
            "executed_fraction": (
                self._executed_instructions / total if total else 0.0
            ),
            "frontier_cache": self.cache.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"IncrementalSolver(nodes={self.tree.num_nodes}, "
            f"algorithm={self._label!r}, backend={self.backend!r}, "
            f"resolves={self.resolves})"
        )
