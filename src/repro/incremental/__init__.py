"""Incremental ECO re-solve: edit a net, pay only for the dirty path.

Edit-heavy engineering-change-order (ECO) workloads are the dominant
real-world use of buffer insertion: a placed design is re-timed
thousands of times as pins move, wires re-route and drivers resize.
The bottom-up dynamic program is naturally compositional — the
candidate frontier at any vertex depends only on its subtree — yet a
stateless solver re-pays the whole net for every one-wire edit.  This
package turns the solver into a stateful session:

* :mod:`repro.incremental.edits` — a typed, validated edit algebra
  (sink RAT/cap/polarity, wire move/re-length, add/remove pins, wire
  splitting, driver swap) with a JSON codec;
* :mod:`repro.incremental.subtree_cache` — digest-keyed memoization of
  frozen subtree frontiers, byte-bounded, shareable across sessions;
* :mod:`repro.incremental.engine` — :class:`IncrementalSolver`, which
  re-runs only the dirty instruction sub-ranges of the compiled
  postorder schedule and splices memoized frontiers in for every clean
  subtree, producing results **bit-identical** to a from-scratch solve.

The serving layer exposes sessions over HTTP (``/session`` endpoints,
:meth:`repro.service.client.ServiceClient.create_session`) and the CLI
replays edit scripts with ``repro edit``.
"""

from repro.incremental.edits import (
    AddSink,
    Edit,
    EditImpact,
    RemoveSubtree,
    SetSinkCap,
    SetSinkPolarity,
    SetSinkRAT,
    SetWire,
    SplitWire,
    SwapDriver,
    edit_from_dict,
    edit_to_dict,
)
from repro.incremental.engine import (
    IncrementalSolver,
    SplicedFrontierDecision,
    TreeIndex,
)
from repro.incremental.subtree_cache import FrontierCache, FrontierSnapshot

__all__ = [
    "Edit",
    "EditImpact",
    "SetSinkRAT",
    "SetSinkCap",
    "SetSinkPolarity",
    "SetWire",
    "SwapDriver",
    "AddSink",
    "SplitWire",
    "RemoveSubtree",
    "edit_from_dict",
    "edit_to_dict",
    "FrontierCache",
    "FrontierSnapshot",
    "IncrementalSolver",
    "SplicedFrontierDecision",
    "TreeIndex",
]
