"""Digest-keyed memoization of subtree candidate frontiers.

The bottom-up dynamic program is compositional: the candidate frontier
at a vertex ``v`` depends only on the subtree under ``v`` (and the
library / algorithm / backend / options context), never on anything
above it.  :mod:`repro.service.canon` already computes a Merkle digest
for every subtree; this module keys frozen frontiers on those digests,
so an edited net re-pays only the dirty path while every unchanged
subtree — and every *structurally repeated* subtree anywhere — is
answered from memory.

A cached :class:`FrontierSnapshot` must outlive the solve that produced
it, across backends with very different lifetime rules:

* the object backend's candidates are mutated in place by downstream
  add-wire steps, so the ``(q, c)`` values are copied out; the decision
  DAG is immutable and shared as-is;
* the SoA backend's provenance lives on a per-solve tape that is
  rewound between solves, so decisions are *materialized* into
  persistent objects at capture time
  (:meth:`repro.core.stores.soa.SoAStoreFactory.snapshot`) — a stale
  :class:`~repro.core.stores.soa.TapeRef` can never reach the cache.

Because decisions name the node ids of the tree they were captured
from, each snapshot also records the capture-time
:class:`~repro.service.canon.CanonicalNet` and subtree root: splicing
into a *different* (but digest-identical) subtree translates ids
through canonical indices at backtrace time (see
:class:`~repro.incremental.engine.SplicedFrontierDecision`), which is
what makes sibling subtrees that share a digest safe to serve from one
entry.

:class:`FrontierCache` is a thread-safe LRU bounded by **bytes** as
well as entries — sessions on a server share one instance, so the bound
is the serving layer's documented memory ceiling for frontier state.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Dict, Hashable, Optional

#: Fixed per-snapshot overhead estimate (object headers, slots, the
#: cache entry itself), plus a per-candidate estimate covering the two
#: value columns, the provenance column/reference and an amortized
#: share of the per-resolve tape archive (archives are shared by all
#: of a resolve's snapshots and die with their last snapshot, so exact
#: per-entry attribution is impossible; the constant errs high).
_SNAPSHOT_BASE_BYTES = 256
_PER_CANDIDATE_BYTES = 128


class FrontierSnapshot:
    """One frozen subtree frontier, detached from any solve.

    Attributes:
        q / c: The candidates' slack / load columns (sequences of
            floats in the store's sorted order; NumPy arrays for SoA
            captures, lists for object captures).
        decisions: Per-candidate persistent provenance (decision DAG
            nodes) for object-backend captures; ``None`` for SoA
            captures, which instead carry ``archive`` + ``d``.
        archive / d: SoA deferred provenance: an immutable
            :class:`~repro.core.stores.soa.TapeArchive` shared by the
            capturing resolve's snapshots, plus this frontier's tape
            indices into it.  Decision objects are only built when the
            snapshot is spliced (:meth:`decision_list`).
        canon: The capture-time preorder index
            (:class:`~repro.incremental.engine.TreeIndex`) of the
            *whole* net the subtree belonged to — the anchor id
            translation needs; shared by all snapshots of one resolve.
        root_id: The subtree root's node id in ``canon``'s tree.
        peak / generated: The subtree's contribution to
            :class:`~repro.core.solution.DPStats` — the max final-list
            length and the candidates-generated sum over the subtree —
            so an incremental solve reports stats identical to a
            from-scratch one.
    """

    __slots__ = ("q", "c", "decisions", "archive", "d", "canon", "root_id",
                 "peak", "generated", "nbytes")

    def __init__(
        self,
        q,
        c,
        decisions: Optional[tuple],
        canon: object,
        root_id: int,
        peak: int,
        generated: int,
        archive: object = None,
        d=None,
    ) -> None:
        self.q = q
        self.c = c
        self.decisions = decisions
        self.archive = archive
        self.d = d
        self.canon = canon
        self.root_id = root_id
        self.peak = peak
        self.generated = generated
        self.nbytes = _SNAPSHOT_BASE_BYTES + _PER_CANDIDATE_BYTES * len(q)

    def decision_list(self):
        """Per-candidate decision objects, built on demand for splicing."""
        if self.decisions is not None:
            return self.decisions
        from repro.core.stores.soa import ArchivedDecision

        archive = self.archive
        return [
            ArchivedDecision(archive, index) for index in self.d.tolist()
        ]

    def __len__(self) -> int:
        return len(self.q)

    def __repr__(self) -> str:
        return (
            f"FrontierSnapshot(candidates={len(self.q)}, "
            f"root={self.root_id}, peak={self.peak})"
        )


def capture_frontier(
    store,
    factory,
    root_id: int,
    peak: int,
    generated: int,
    portable: bool = False,
) -> FrontierSnapshot:
    """Freeze a completed store's frontier outside any solver session.

    The :class:`~repro.incremental.engine.IncrementalSolver` captures
    frontiers mid-resolve with its own batching (values now, one tape
    archive at the end); this is the standalone equivalent for callers
    that ran a whole schedule to completion themselves — above all the
    parallel partition workers, which solve an extracted
    :meth:`~repro.core.schedule.CompiledNet.subschedule` and ship its
    root frontier back to the parent process.

    Args:
        store: The completed root store (object-backend candidate list,
            or a store of ``factory``'s backend).
        factory: The store factory the solve ran on, or ``None`` for
            the object backend.  SoA-family factories are archived here
            (one :meth:`archive_tape` call), so call this *before*
            ``factory.end_solve()`` and at most once per solve.
        root_id: The subtree root's node id (parent-tree coordinates —
            subschedules preserve ids, so ``canon`` stays ``None`` and
            splicing needs no translation).
        peak / generated: The solve's DP-stats contribution.
        portable: Flatten object-backend decision DAGs into
            :class:`~repro.core.candidate.ExpandedDecision`\\ s.  The
            DAG can nest as deep as the subtree, which breaks pickling
            (recursion) across process boundaries; flattening keeps the
            reconstructed assignment — hence the final result —
            bit-identical while bounding depth.  SoA captures are
            already portable (flat archive columns).
    """
    snapshot_values = (
        getattr(factory, "snapshot_values", None)
        if factory is not None else None
    )
    if snapshot_values is not None:
        q, c, d = snapshot_values(store)
        return FrontierSnapshot(
            q, c, None, None, root_id, peak, generated,
            archive=factory.archive_tape(), d=d,
        )
    q = []
    c = []
    decisions = []
    if portable:
        from repro.core.candidate import (
            ExpandedDecision,
            reconstruct_assignment,
        )
    for candidate in store:
        q.append(candidate.q)
        c.append(candidate.c)
        decision = candidate.decision
        if portable:
            decision = ExpandedDecision(reconstruct_assignment(decision))
        decisions.append(decision)
    return FrontierSnapshot(
        q, c, tuple(decisions), None, root_id, peak, generated
    )


class FrontierCache:
    """Thread-safe LRU over frontier snapshots, bounded in bytes.

    Keys are ``(subtree digest, context)`` tuples — the context folds in
    everything else a frontier depends on (library content, algorithm,
    backend, options), so one cache instance can safely serve many
    sessions with different solve contexts.

    Args:
        max_bytes: Total estimated snapshot bytes to retain; inserting
            beyond it evicts least-recently-used entries.
        max_entries: Entry-count cap (second bound; generous default).
    """

    def __init__(
        self, max_bytes: int = 64 << 20, max_entries: int = 1 << 20
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, FrontierSnapshot]" = OrderedDict()
        self._lock = Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Optional[FrontierSnapshot]:
        """The snapshot under ``key`` or ``None`` (counted either way)."""
        with self._lock:
            snapshot = self._entries.get(key)
            if snapshot is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return snapshot

    def put(self, key: Hashable, snapshot: FrontierSnapshot) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past bounds."""
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._entries[key] = snapshot
            self._bytes += snapshot.nbytes
            while self._entries and (
                self._bytes > self.max_bytes
                or len(self._entries) > self.max_entries
            ):
                if len(self._entries) == 1:
                    # Never evict what was just inserted: a single
                    # oversized frontier stays servable.
                    break
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters keep their totals)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Non-counting, non-LRU-touching membership probe (tests)."""
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, object]:
        """JSON-ready counters (the ``/stats`` ``incremental`` block)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }
