"""Candidate-list statistics: where the O(b n) lists actually live.

Section 2 bounds the nonredundant candidate count by ``b n + 1``; in
practice wire pruning keeps lists far shorter, which is why the
measured Table-1 speedups trail the worst-case ratio b.  This module
instruments a DP run to collect the list-length distribution — the
quantity EXPERIMENTS.md uses to explain the measured-vs-paper gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.buffer_ops import BufferPlan, generate_fast, insert_candidates
from repro.core.candidate import CandidateList
from repro.core.dp import run_dynamic_program
from repro.core.pruning import convex_prune
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class ListStats:
    """Distribution of candidate-list lengths over one DP run.

    Lengths are sampled at every buffer position (just before the
    add-buffer operation — the ``k`` in the paper's O(b k) / O(k + b)).

    Attributes:
        samples: Number of buffer positions visited.
        mean / median / p90 / maximum: Length statistics.
        hull_mean: Mean convex-hull size at the same points — the list
            the fast algorithm actually walks.
        theoretical_bound: ``b n + 1`` for the instance.
    """

    samples: int
    mean: float
    median: int
    p90: int
    maximum: int
    hull_mean: float
    theoretical_bound: int

    def __str__(self) -> str:
        return (
            f"k over {self.samples} positions: mean {self.mean:.1f}, "
            f"median {self.median}, p90 {self.p90}, max {self.maximum} "
            f"(hull mean {self.hull_mean:.1f}; bound {self.theoretical_bound})"
        )


def collect_list_stats(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver] = None,
) -> ListStats:
    """Run the fast algorithm once, recording list lengths at buffers."""
    lengths: List[int] = []
    hull_lengths: List[int] = []

    def instrumented(candidates: CandidateList, plan: BufferPlan):
        hull = convex_prune(candidates)
        lengths.append(len(candidates))
        hull_lengths.append(len(hull))
        new_candidates = generate_fast(candidates, plan, hull=hull)
        return insert_candidates(candidates, new_candidates)

    run_dynamic_program(
        tree, library, instrumented, algorithm="fast-instrumented",
        driver=driver,
    )
    if not lengths:
        return ListStats(0, 0.0, 0, 0, 0, 0.0,
                         library.size * tree.num_buffer_positions + 1)
    ordered = sorted(lengths)
    return ListStats(
        samples=len(lengths),
        mean=sum(lengths) / len(lengths),
        median=ordered[len(ordered) // 2],
        p90=ordered[min(len(ordered) - 1, int(0.9 * len(ordered)))],
        maximum=ordered[-1],
        hull_mean=sum(hull_lengths) / len(hull_lengths),
        theoretical_bound=library.size * tree.num_buffer_positions + 1,
    )


def list_growth_by_positions(
    tree_builder,
    position_counts: Tuple[int, ...],
    library: BufferLibrary,
) -> List[Tuple[int, ListStats]]:
    """List statistics across instance sizes (for shape analyses).

    Args:
        tree_builder: Callable ``n -> RoutingTree``.
        position_counts: The ``n`` values to sample.
        library: Buffer library.
    """
    results = []
    for count in position_counts:
        tree = tree_builder(count)
        results.append((tree.num_buffer_positions,
                        collect_list_stats(tree, library)))
    return results
