"""Table 1: runtimes of the O(b^2 n^2) baseline versus the O(bn^2)
algorithm on the three industrial-like nets, across library sizes.

The paper reports absolute seconds on a 400 MHz SPARC and speedups up to
~11x at b = 64 (and a slight *slow-down* at small b, attributed to the
``Convexpruning`` overhead).  Here the same row/column structure is
regenerated on the scaled nets; the qualitative claims asserted by
``benchmarks/bench_table1.py`` are: identical optimal slacks, speedup
growing with b, and speedup > 1 at b = 64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.batch import parallel_map
from repro.core.schedule import compile_net
from repro.experiments.runner import time_algorithm
from repro.experiments.workloads import (
    TABLE1_LIBRARY_SIZES,
    TABLE1_NETS,
    NetSpec,
    build_net,
)
from repro.library.generators import paper_library
from repro.units import to_ps


@dataclass(frozen=True)
class Table1Row:
    """One (net, b) cell pair of Table 1.

    Attributes:
        net: Net name.
        sinks: Scaled sink count ``m``.
        positions: Buffer positions ``n``.
        library_size: ``b``.
        lillis_seconds: Baseline wall time.
        fast_seconds: New-algorithm wall time.
        slack_ps: Optimal slack (identical for both, in picoseconds).
        num_buffers: Buffers in the optimal solution.
        peak_list_lillis / peak_list_fast: Peak candidate-list lengths —
            the paper's ~2% memory-overhead discussion.
    """

    net: str
    sinks: int
    positions: int
    library_size: int
    lillis_seconds: float
    fast_seconds: float
    slack_ps: float
    num_buffers: int
    peak_list_lillis: int
    peak_list_fast: int

    @property
    def speedup(self) -> float:
        """Baseline time over new-algorithm time."""
        return self.lillis_seconds / self.fast_seconds if self.fast_seconds else 0.0


def _measure_cell(cell) -> Table1Row:
    """One (net, b) cell of the grid; module-level so it pickles.

    Each worker process materializes the net through the ``build_net``
    cache, so cells sharing a spec inside one worker reuse the tree —
    and the net is compiled against the cell's library exactly once
    (:func:`~repro.core.schedule.compile_net`), so validation, buffer
    plans and the tree flattening are shared by both algorithms and all
    repeats.
    """
    spec, size, repeats, seed, backend = cell
    tree = build_net(spec)
    library = paper_library(size, jitter=0.03, seed=seed + size)
    compiled = compile_net(tree, library)
    lillis = time_algorithm(compiled, library, "lillis", repeats=repeats,
                            backend=backend)
    fast = time_algorithm(compiled, library, "fast", repeats=repeats,
                          backend=backend)
    if abs(lillis.result.slack - fast.result.slack) > 1e-15:
        raise AssertionError(
            f"slack mismatch on {spec.name} b={size}: "
            f"{lillis.result.slack} vs {fast.result.slack}"
        )
    return Table1Row(
        net=spec.name,
        sinks=tree.num_sinks,
        positions=tree.num_buffer_positions,
        library_size=size,
        lillis_seconds=lillis.seconds,
        fast_seconds=fast.seconds,
        slack_ps=to_ps(fast.result.slack),
        num_buffers=fast.result.num_buffers,
        peak_list_lillis=lillis.result.stats.peak_list_length,
        peak_list_fast=fast.result.stats.peak_list_length,
    )


def run_table1(
    nets: Optional[Sequence[NetSpec]] = None,
    library_sizes: Sequence[int] = TABLE1_LIBRARY_SIZES,
    repeats: int = 1,
    seed: int = 0,
    jobs: int = 1,
    backend: str = "object",
) -> List[Table1Row]:
    """Measure both algorithms over the Table 1 grid.

    Args:
        nets: Net specs (default: the three scaled industrial nets).
        library_sizes: The ``b`` column values.
        repeats: Timing repeats per cell (best-of).
        seed: Jitter seed for the synthetic libraries.
        jobs: Worker processes for the grid cells; ``1`` (default) runs
            serially.  Parallel cells share the machine, so use this to
            *survey* a large grid quickly, not for publication-grade
            absolute times.
        backend: Candidate-store backend for every cell.  The default is
            the reference object backend: the paper's lillis-vs-fast
            comparison is about per-candidate work, which the SoA
            backend's vectorized scans deliberately sidestep.

    Returns:
        One :class:`Table1Row` per (net, b), in net-major order.
    """
    nets = list(nets) if nets is not None else list(TABLE1_NETS)
    cells = [
        (spec, size, repeats, seed, backend)
        for spec in nets for size in library_sizes
    ]
    return parallel_map(_measure_cell, cells, jobs=jobs, chunksize=1)


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the paper's Table 1 layout (plus slack columns)."""
    header = (
        f"{'net':<12}{'m':>6}{'n':>7}{'b':>5}"
        f"{'Lillis (s)':>12}{'New (s)':>10}{'speedup':>9}"
        f"{'slack (ps)':>12}{'bufs':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.net:<12}{row.sinks:>6}{row.positions:>7}{row.library_size:>5}"
            f"{row.lillis_seconds:>12.3f}{row.fast_seconds:>10.3f}"
            f"{row.speedup:>8.2f}x{row.slack_ps:>12.1f}{row.num_buffers:>6}"
        )
    return "\n".join(lines)
