"""Timing runner: measure one algorithm on one instance."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.api import insert_buffers
from repro.core.solution import BufferingResult
from repro.library.library import BufferLibrary
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class MeasuredRun:
    """One timed algorithm execution.

    Attributes:
        algorithm: Algorithm name as passed to ``insert_buffers``.
        library_size: ``b``.
        num_positions: ``n``.
        seconds: Best wall-clock time over the repeats.
        result: The :class:`BufferingResult` (identical across repeats).
    """

    algorithm: str
    library_size: int
    num_positions: int
    seconds: float
    result: BufferingResult


def time_algorithm(
    tree: RoutingTree,
    library: BufferLibrary,
    algorithm: str,
    repeats: int = 1,
    **options,
) -> MeasuredRun:
    """Run ``algorithm`` ``repeats`` times; keep the best wall time.

    Best-of-N (rather than mean) follows standard microbenchmark
    practice: the minimum is the least noisy estimator of the
    deterministic work under OS jitter, and both algorithms receive the
    same treatment.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best_seconds = float("inf")
    result: Optional[BufferingResult] = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = insert_buffers(tree, library, algorithm=algorithm, **options)
        elapsed = time.perf_counter() - started
        best_seconds = min(best_seconds, elapsed)
    assert result is not None
    return MeasuredRun(
        algorithm=algorithm,
        library_size=library.size,
        num_positions=tree.num_buffer_positions,
        seconds=best_seconds,
        result=result,
    )
