"""Timing runners: one algorithm on one instance, or on a whole corpus."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.api import insert_buffers
from repro.core.batch import solve_many
from repro.core.schedule import CompiledNet
from repro.core.solution import BufferingResult
from repro.library.library import BufferLibrary
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class MeasuredRun:
    """One timed algorithm execution.

    Attributes:
        algorithm: Algorithm name as passed to ``insert_buffers``.
        library_size: ``b``.
        num_positions: ``n``.
        seconds: Best wall-clock time over the repeats.
        result: The :class:`BufferingResult` (identical across repeats).
    """

    algorithm: str
    library_size: int
    num_positions: int
    seconds: float
    result: BufferingResult


def time_algorithm(
    tree: Union[RoutingTree, CompiledNet],
    library: BufferLibrary,
    algorithm: str,
    repeats: int = 1,
    **options,
) -> MeasuredRun:
    """Run ``algorithm`` ``repeats`` times; keep the best wall time.

    Best-of-N (rather than mean) follows standard microbenchmark
    practice: the minimum is the least noisy estimator of the
    deterministic work under OS jitter, and both algorithms receive the
    same treatment.

    Pass a :class:`~repro.core.schedule.CompiledNet` (the sweep drivers
    do) to measure the repeat-solve path: compilation cost stays outside
    the timed region and every repeat runs the schedule interpreter.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best_seconds = float("inf")
    result: Optional[BufferingResult] = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = insert_buffers(tree, library, algorithm=algorithm, **options)
        elapsed = time.perf_counter() - started
        best_seconds = min(best_seconds, elapsed)
    assert result is not None
    return MeasuredRun(
        algorithm=algorithm,
        library_size=library.size,
        num_positions=tree.num_buffer_positions,
        seconds=best_seconds,
        result=result,
    )


@dataclass(frozen=True)
class MeasuredBatch:
    """One timed :func:`repro.core.batch.solve_many` execution.

    Attributes:
        algorithm: Algorithm name.
        backend: Candidate-store backend name.
        jobs: Worker-process count the batch ran with.
        num_nets: Corpus size.
        seconds: Wall-clock time of the whole batch.
        results: Per-net results, in input order.
    """

    algorithm: str
    backend: str
    jobs: int
    num_nets: int
    seconds: float
    results: List[BufferingResult]

    @property
    def nets_per_second(self) -> float:
        """Throughput over the whole batch."""
        return self.num_nets / self.seconds if self.seconds else float("inf")


def time_batch(
    trees: Sequence[RoutingTree],
    library: BufferLibrary,
    algorithm: str = "fast",
    jobs: int = 1,
    backend: str = "object",
    **options,
) -> MeasuredBatch:
    """Wall-clock one batched solve of the whole corpus.

    Unlike :func:`time_algorithm` this measures *throughput* (the batch
    engine's reason to exist), so the pool startup cost is deliberately
    inside the measurement: that is what a caller of ``solve_many``
    experiences.
    """
    started = time.perf_counter()
    results = solve_many(
        trees, library, algorithm=algorithm, jobs=jobs, backend=backend,
        **options,
    )
    elapsed = time.perf_counter() - started
    return MeasuredBatch(
        algorithm=algorithm,
        backend=backend,
        jobs=jobs,
        num_nets=len(results),
        seconds=elapsed,
        results=results,
    )
