"""Workload definitions for the paper's evaluation, scaled for Python.

The paper's Table 1 uses three proprietary industrial nets with
m = 337, 1944 and 2676 sinks; the m = 1944 net is segmented to
n = 33133 buffer positions for Figures 3 and 4.  We substitute random
Steiner-like nets (same code paths, see DESIGN.md) scaled by ~1/10 in
both sinks and positions so the quadratic baseline finishes in seconds
of pure Python rather than the minutes of the authors' C code.

Every spec is deterministic: the net is produced by a seeded generator
and wire segmenting to the target position count.

Beyond the paper's single-corner tables, :func:`corner_variants`
replicates any net across an R/C process-corner grid
(:func:`make_corners`) — the multi-corner workload the batch-axis
engine (:mod:`repro.core.stores.batch_axis`) was built for, used by
``benchmarks/bench_batch_axis.py`` and ``repro batch --corners``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.tree.builders import random_tree_net, two_pin_net
from repro.tree.io import tree_from_dict, tree_to_dict
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.tree.segmenting import segment_to_position_count
from repro.units import fF, ps


@dataclass(frozen=True)
class NetSpec:
    """A reproducible test net.

    Attributes:
        name: Identifier used in reports.
        paper_sinks: ``m`` in the paper's Table 1.
        sinks: Scaled ``m`` used here.
        target_positions: Scaled ``n`` (paper ratio n/m ~ 17 preserved).
        seed: Generator seed.
        driver_resistance: Source driver resistance, ohms.
        rat_window_ps: Sink required-arrival window, picoseconds
            (industrial nets have spread RATs).
        die_size: Placement region side, micrometres.
        topology: ``"random"`` — a random Steiner-like multi-pin net —
            or ``"trunk"`` — one long segmented 2-pin wire.  The trunk
            reaches the paper's long-candidate-list regime (where the
            add-buffer operation dominates) at Python-feasible ``n``;
            see EXPERIMENTS.md for why Figure 4 uses it.
    """

    name: str
    paper_sinks: int
    sinks: int
    target_positions: int
    seed: int = 2005
    driver_resistance: float = 200.0
    rat_window_ps: Tuple[float, float] = (500.0, 3000.0)
    die_size: float = 10_000.0
    topology: str = "random"

    def scale(self, factor: float) -> "NetSpec":
        """A spec with the position target scaled by ``factor``."""
        return NetSpec(
            name=f"{self.name}@{factor:g}x",
            paper_sinks=self.paper_sinks,
            sinks=self.sinks,
            target_positions=max(int(self.target_positions * factor), self.sinks),
            seed=self.seed,
            driver_resistance=self.driver_resistance,
            rat_window_ps=self.rat_window_ps,
            die_size=self.die_size,
            topology=self.topology,
        )


#: The three Table 1 nets (m = 337 / 1944 / 2676 in the paper).
TABLE1_NETS: Tuple[NetSpec, ...] = (
    NetSpec(name="ind337", paper_sinks=337, sinks=34, target_positions=580),
    NetSpec(name="ind1944", paper_sinks=1944, sinks=194, target_positions=3300),
    NetSpec(name="ind2676", paper_sinks=2676, sinks=268, target_positions=4560),
)

#: Library sizes of Table 1 and Figure 3's x-axis base (paper: 8/16/32/64).
TABLE1_LIBRARY_SIZES: Tuple[int, ...] = (8, 16, 32, 64)

#: Figure 3 sweeps b at fixed net (paper: the m = 1944, n = 33133 net).
FIG3_LIBRARY_SIZES: Tuple[int, ...] = (8, 16, 24, 32, 48, 64)

#: Figure 4 sweeps n at fixed b = 32 (paper: 1943 .. 66k positions).
FIG4_POSITION_COUNTS: Tuple[int, ...] = (500, 1000, 2000, 4000, 8000)

#: The net Figure 3 is measured on (scaled m = 1944 net).
FIGURE_NET: NetSpec = TABLE1_NETS[1]

#: The net Figure 4 is measured on: a long trunk whose candidate lists
#: grow with n, reaching the regime where the add-buffer step dominates
#: (the paper reaches it with n = 33k on the industrial net; see
#: EXPERIMENTS.md for the scaling argument).
FIG4_NET: NetSpec = NetSpec(
    name="trunk60mm",
    paper_sinks=1944,
    sinks=1,
    target_positions=8000,
    rat_window_ps=(9000.0, 9000.0),
    die_size=60_000.0,
    topology="trunk",
)


#: The named process-corner grid multi-corner workloads start from:
#: ``(name, resistance_scale, capacitance_scale)``.  Interconnect
#: corners move wire R and C together but not in lockstep (metal
#: thickness trades one against the other), hence the skewed pairs.
DEFAULT_CORNERS: Tuple[Tuple[str, float, float], ...] = (
    ("tt", 1.00, 1.00),
    ("ff", 0.85, 0.93),
    ("ss", 1.18, 1.09),
    ("fs", 0.91, 1.05),
)


def make_corners(count: int) -> Tuple[Tuple[str, float, float], ...]:
    """``count`` deterministic ``(name, r_scale, c_scale)`` corners.

    The first four are the named grid (:data:`DEFAULT_CORNERS`); beyond
    that, extra corners interpolate deterministically between the slow
    and fast extremes (``pvt4``, ``pvt5``, ...), so any requested group
    size yields distinct, reproducible parasitics.
    """
    if count < 1:
        raise ValueError(f"corner count must be >= 1, got {count}")
    corners = list(DEFAULT_CORNERS[:count])
    for index in range(len(corners), count):
        # Walk the ss..ff diagonal in golden-ratio steps: dense,
        # non-repeating coverage for arbitrarily large groups.
        fraction = (index * 0.61803398875) % 1.0
        corners.append((
            f"pvt{index}",
            0.85 + 0.33 * fraction,
            1.09 - 0.16 * fraction,
        ))
    return tuple(corners)


def corner_variants(
    tree: RoutingTree, count: int
) -> List[Tuple[str, RoutingTree]]:
    """``count`` corner replicas of ``tree``: same topology, scaled R/C.

    Replicas are built through the serialization round trip
    (:func:`~repro.tree.io.tree_to_dict` /
    :func:`~repro.tree.io.tree_from_dict`), which re-assigns node ids
    pre-order — every variant therefore compiles to the same op stream
    and shares a :func:`~repro.core.schedule.group_signature`, making a
    corner sweep the canonical batch-axis group (only wire parasitics
    differ; structure, sinks and driver are untouched).

    Returns ``(corner_name, tree)`` pairs, ``tt`` (unscaled) first.
    """
    base = tree_to_dict(tree)
    variants: List[Tuple[str, RoutingTree]] = []
    for name, r_scale, c_scale in make_corners(count):
        spec = copy.deepcopy(base)
        for node in spec["nodes"]:
            edge = node.get("edge")
            if edge is not None:
                edge["resistance"] *= r_scale
                edge["capacitance"] *= c_scale
        variants.append((name, tree_from_dict(spec)))
    return variants


@lru_cache(maxsize=32)
def build_net(spec: NetSpec, positions_override: int = 0) -> RoutingTree:
    """Materialize a spec into a segmented routing tree (cached).

    Args:
        spec: The net specification.
        positions_override: Re-segment to this position count instead of
            ``spec.target_positions`` (used by the Figure 4 sweep, which
            varies ``n`` on one base net).
    """
    lo, hi = spec.rat_window_ps
    target = positions_override or spec.target_positions
    if spec.topology == "trunk":
        return two_pin_net(
            length=spec.die_size,
            sink_capacitance=fF(20.0),
            required_arrival=ps(hi),
            driver=Driver(resistance=spec.driver_resistance),
            num_segments=target + 1,
        )
    if spec.topology != "random":
        raise ValueError(f"unknown topology {spec.topology!r}")
    base = random_tree_net(
        spec.sinks,
        seed=spec.seed,
        die_size=spec.die_size,
        required_arrival=(ps(lo), ps(hi)),
        driver=Driver(resistance=spec.driver_resistance),
    )
    return segment_to_position_count(base, target)
