"""Per-operation profiling of the dynamic program.

The paper explains Figure 4 by noting that "the operation of adding a
buffer becomes more dominant among three major operations when n
increases".  This module makes that claim measurable: it runs either
algorithm with the three operations wrapped in timers and reports the
wall-clock share of each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.buffer_ops import (
    BufferPlan,
    generate_fast,
    generate_lillis,
    insert_candidates,
)
from repro.core.candidate import CandidateList
from repro.core.dp import run_dynamic_program
from repro.core.merge import merge_branches
from repro.core.pruning import convex_prune
from repro.core.wire_ops import add_wire
from repro.errors import AlgorithmError
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class OperationProfile:
    """Wall-clock decomposition of one DP run.

    Attributes:
        algorithm: Which algorithm was profiled.
        wire_seconds / merge_seconds / buffer_seconds: Time inside each
            of the paper's three major operations.
        total_seconds: End-to-end DP time (includes untimed glue).
        wire_calls / merge_calls / buffer_calls: Operation counts.
    """

    algorithm: str
    wire_seconds: float
    merge_seconds: float
    buffer_seconds: float
    total_seconds: float
    wire_calls: int
    merge_calls: int
    buffer_calls: int

    @property
    def buffer_fraction(self) -> float:
        """Share of *operation* time spent adding buffers."""
        measured = self.wire_seconds + self.merge_seconds + self.buffer_seconds
        return self.buffer_seconds / measured if measured else 0.0

    def __str__(self) -> str:
        measured = self.wire_seconds + self.merge_seconds + self.buffer_seconds
        if not measured:
            return f"OperationProfile({self.algorithm}: no operations)"
        return (
            f"{self.algorithm}: wire {self.wire_seconds / measured:5.1%}  "
            f"merge {self.merge_seconds / measured:5.1%}  "
            f"buffer {self.buffer_seconds / measured:5.1%}  "
            f"(total {self.total_seconds:.3f}s)"
        )


def profile_operations(
    tree: RoutingTree,
    library: BufferLibrary,
    algorithm: str = "lillis",
    driver: Optional[Driver] = None,
) -> OperationProfile:
    """Run one DP with the three major operations individually timed.

    Args:
        tree: The instance.
        library: Buffer library.
        algorithm: ``"lillis"`` or ``"fast"``.
        driver: Source driver (defaults to ``tree.driver``).

    Returns:
        An :class:`OperationProfile`; the buffering result itself is
        discarded (per-op timers add overhead, so callers wanting clean
        end-to-end numbers should time the plain entry points).
    """
    if algorithm == "lillis":
        generate = generate_lillis
    elif algorithm == "fast":
        generate = generate_fast
    else:
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; choose 'fast' or 'lillis'"
        )

    timers = {"wire": 0.0, "merge": 0.0, "buffer": 0.0}
    counts = {"wire": 0, "merge": 0, "buffer": 0}

    def timed_wire(candidates: CandidateList, r: float, c: float):
        start = time.perf_counter()
        out = add_wire(candidates, r, c)
        timers["wire"] += time.perf_counter() - start
        counts["wire"] += 1
        return out

    def timed_merge(left: CandidateList, right: CandidateList):
        start = time.perf_counter()
        out = merge_branches(left, right)
        timers["merge"] += time.perf_counter() - start
        counts["merge"] += 1
        return out

    def timed_buffer(candidates: CandidateList, plan: BufferPlan):
        start = time.perf_counter()
        if algorithm == "fast":
            hull = convex_prune(candidates)
            new_candidates = generate(candidates, plan, hull=hull)
        else:
            new_candidates = generate(candidates, plan)
        out = insert_candidates(candidates, new_candidates)
        timers["buffer"] += time.perf_counter() - start
        counts["buffer"] += 1
        return out

    started = time.perf_counter()
    run_dynamic_program(
        tree,
        library,
        timed_buffer,
        algorithm=f"{algorithm}-profiled",
        driver=driver,
        add_wire=timed_wire,
        merge=timed_merge,
    )
    total = time.perf_counter() - started

    return OperationProfile(
        algorithm=algorithm,
        wire_seconds=timers["wire"],
        merge_seconds=timers["merge"],
        buffer_seconds=timers["buffer"],
        total_seconds=total,
        wire_calls=counts["wire"],
        merge_calls=counts["merge"],
        buffer_calls=counts["buffer"],
    )
