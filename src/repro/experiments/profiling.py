"""Per-operation profiling of the dynamic program (compatibility shim).

The paper explains Figure 4 by noting that "the operation of adding a
buffer becomes more dominant among three major operations when n
increases".  This module makes that claim measurable: it runs either
algorithm with the three operations timed and reports the wall-clock
share of each.

.. deprecated::
    The hand-built object-backend timing wrappers this module used to
    construct are gone; :func:`profile_operations` is now a thin shim
    over the strategy-agnostic sampling profiler in
    :mod:`repro.obs.profiler`, which instruments the interpreter loop
    itself (and therefore also covers the soa, batch-axis and
    partitioned execution paths).  New code should use
    :class:`repro.obs.profiler.KernelProfiler` under
    :func:`repro.obs.profiler.profile_scope` directly; this entry point
    remains only so existing callers (``bench_op_profile.py``) keep
    working unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import AlgorithmError
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class OperationProfile:
    """Wall-clock decomposition of one DP run.

    Attributes:
        algorithm: Which algorithm was profiled.
        wire_seconds / merge_seconds / buffer_seconds: Time inside each
            of the paper's three major operations.
        total_seconds: End-to-end DP time (includes untimed glue).
        wire_calls / merge_calls / buffer_calls: Operation counts.
    """

    algorithm: str
    wire_seconds: float
    merge_seconds: float
    buffer_seconds: float
    total_seconds: float
    wire_calls: int
    merge_calls: int
    buffer_calls: int

    @property
    def buffer_fraction(self) -> float:
        """Share of *operation* time spent adding buffers."""
        measured = self.wire_seconds + self.merge_seconds + self.buffer_seconds
        return self.buffer_seconds / measured if measured else 0.0

    def __str__(self) -> str:
        measured = self.wire_seconds + self.merge_seconds + self.buffer_seconds
        if not measured:
            return f"OperationProfile({self.algorithm}: no operations)"
        return (
            f"{self.algorithm}: wire {self.wire_seconds / measured:5.1%}  "
            f"merge {self.merge_seconds / measured:5.1%}  "
            f"buffer {self.buffer_seconds / measured:5.1%}  "
            f"(total {self.total_seconds:.3f}s)"
        )


def profile_operations(
    tree: RoutingTree,
    library: BufferLibrary,
    algorithm: str = "lillis",
    driver: Optional[Driver] = None,
) -> OperationProfile:
    """Run one DP with the three major operations individually timed.

    A shim over :class:`repro.obs.profiler.KernelProfiler`: the solve
    runs under an ambient :func:`~repro.obs.profiler.profile_scope`, and
    the profiler's per-op totals are repackaged into the historical
    :class:`OperationProfile` shape.

    Args:
        tree: The instance.
        library: Buffer library.
        algorithm: ``"lillis"`` or ``"fast"``.
        driver: Source driver (defaults to ``tree.driver``).

    Returns:
        An :class:`OperationProfile`; the buffering result itself is
        discarded (per-op timers add overhead, so callers wanting clean
        end-to-end numbers should time the plain entry points).
    """
    if algorithm not in ("lillis", "fast"):
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; choose 'fast' or 'lillis'"
        )
    from repro.core.api import insert_buffers
    from repro.obs.profiler import KernelProfiler, profile_scope

    profiler = KernelProfiler()
    started = time.perf_counter()
    # flush=False: a profiling *experiment* should not fold its timings
    # into the process-wide metrics registry the way a served solve
    # under profile_scope does.
    with profile_scope(profiler, flush=False):
        insert_buffers(
            tree, library, algorithm=algorithm, backend="object",
            driver=driver,
        )
    total = time.perf_counter() - started

    return OperationProfile(
        algorithm=algorithm,
        wire_seconds=profiler.seconds["wire"],
        merge_seconds=profiler.seconds["merge"],
        buffer_seconds=profiler.seconds["buffer"],
        total_seconds=total,
        wire_calls=profiler.calls["wire"],
        merge_calls=profiler.calls["merge"],
        buffer_calls=profiler.calls["buffer"],
    )
