"""Experiment harness: the paper's evaluation, regenerated.

This package defines the scaled workloads (see DESIGN.md for the
paper-to-repo substitution table), timing runners and formatters used by
``benchmarks/`` and ``examples/``:

* :mod:`repro.experiments.workloads` — net specifications mirroring the
  paper's three industrial test cases (scaled x1/10 in sinks) plus the
  Figure 3/4 sweeps.
* :mod:`repro.experiments.runner` — wall-clock measurement of one
  algorithm on one instance.
* :mod:`repro.experiments.table1` — Table 1: runtimes and speedups over
  nets x library sizes.
* :mod:`repro.experiments.figures` — Figures 3 and 4: normalized
  runtime versus ``b`` and versus ``n``.
"""

from repro.experiments.workloads import (
    NetSpec,
    TABLE1_NETS,
    TABLE1_LIBRARY_SIZES,
    FIG3_LIBRARY_SIZES,
    FIG4_NET,
    FIG4_POSITION_COUNTS,
    FIGURE_NET,
    build_net,
)
from repro.experiments.runner import (
    MeasuredBatch,
    MeasuredRun,
    time_algorithm,
    time_batch,
)
from repro.experiments.profiling import OperationProfile, profile_operations
from repro.experiments.list_stats import (
    ListStats,
    collect_list_stats,
    list_growth_by_positions,
)
from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.figures import (
    SeriesPoint,
    FigureSeries,
    run_fig3,
    run_fig4,
    format_figure,
)

__all__ = [
    "NetSpec",
    "TABLE1_NETS",
    "TABLE1_LIBRARY_SIZES",
    "FIG3_LIBRARY_SIZES",
    "FIG4_NET",
    "FIG4_POSITION_COUNTS",
    "FIGURE_NET",
    "build_net",
    "MeasuredRun",
    "MeasuredBatch",
    "time_algorithm",
    "time_batch",
    "OperationProfile",
    "profile_operations",
    "ListStats",
    "collect_list_stats",
    "list_growth_by_positions",
    "Table1Row",
    "run_table1",
    "format_table1",
    "SeriesPoint",
    "FigureSeries",
    "run_fig3",
    "run_fig4",
    "format_figure",
]
