"""Figures 3 and 4: normalized running-time curves.

* Figure 3: fix the net (the scaled m = 1944 case), sweep the library
  size ``b``; plot each algorithm's time normalized to its own b = 8
  time.  Paper: both curves look linear in b, but the new algorithm's
  slope is far smaller.

* Figure 4: fix b = 32, sweep the position count ``n`` by re-segmenting
  the same base net; normalize to the smallest n.  Paper: both grow
  quadratically, the new algorithm far slower, because the add-buffer
  step dominates as n grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.batch import parallel_map
from repro.core.schedule import compile_net
from repro.experiments.runner import time_algorithm
from repro.experiments.workloads import (
    FIG3_LIBRARY_SIZES,
    FIG4_NET,
    FIG4_POSITION_COUNTS,
    FIGURE_NET,
    NetSpec,
    build_net,
)
from repro.library.generators import paper_library


@dataclass(frozen=True)
class SeriesPoint:
    """One x-coordinate of a figure, both algorithms measured.

    Attributes:
        x: The swept parameter (b for Fig. 3, n for Fig. 4).
        lillis_seconds / fast_seconds: Absolute wall times.
        lillis_normalized / fast_normalized: Times divided by the series'
            first point (the paper's y-axis).
    """

    x: int
    lillis_seconds: float
    fast_seconds: float
    lillis_normalized: float
    fast_normalized: float


@dataclass(frozen=True)
class FigureSeries:
    """A complete figure: swept parameter name and its points."""

    name: str
    parameter: str
    points: Tuple[SeriesPoint, ...]

    def slopes(self) -> Tuple[float, float]:
        """(lillis, fast) normalized-time increase per unit of x.

        Least-squares slope of normalized time against x; Figure 3's
        qualitative claim is ``fast slope << lillis slope``.
        """
        xs = [p.x for p in self.points]
        mean_x = sum(xs) / len(xs)
        denom = sum((x - mean_x) ** 2 for x in xs) or 1.0

        def slope(ys: List[float]) -> float:
            mean_y = sum(ys) / len(ys)
            return sum(
                (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
            ) / denom

        return (
            slope([p.lillis_normalized for p in self.points]),
            slope([p.fast_normalized for p in self.points]),
        )


def _build_series(
    name: str,
    parameter: str,
    raw: Sequence[Tuple[int, float, float]],
) -> FigureSeries:
    base_lillis = raw[0][1] or 1.0
    base_fast = raw[0][2] or 1.0
    points = tuple(
        SeriesPoint(
            x=x,
            lillis_seconds=lillis,
            fast_seconds=fast,
            lillis_normalized=lillis / base_lillis,
            fast_normalized=fast / base_fast,
        )
        for x, lillis, fast in raw
    )
    return FigureSeries(name=name, parameter=parameter, points=points)


def _measure_fig3_point(cell) -> Tuple[int, float, float]:
    """One b-axis point of Figure 3; module-level so it pickles.

    The net is compiled against the point's library once; both
    algorithms (and all repeats) then re-solve the same
    :class:`~repro.core.schedule.CompiledNet`, keeping validation and
    plan building out of the measured region.
    """
    spec, size, repeats, seed, backend = cell
    tree = build_net(spec)
    library = paper_library(size, jitter=0.03, seed=seed + size)
    compiled = compile_net(tree, library)
    lillis = time_algorithm(compiled, library, "lillis", repeats=repeats,
                            backend=backend)
    fast = time_algorithm(compiled, library, "fast", repeats=repeats,
                          backend=backend)
    return (size, lillis.seconds, fast.seconds)


def run_fig3(
    spec: Optional[NetSpec] = None,
    library_sizes: Sequence[int] = FIG3_LIBRARY_SIZES,
    repeats: int = 1,
    seed: int = 0,
    jobs: int = 1,
    backend: str = "object",
) -> FigureSeries:
    """Figure 3: normalized running time versus library size ``b``.

    ``jobs > 1`` surveys the sweep across worker processes (points then
    contend for the machine; keep ``jobs=1`` for clean absolute times).
    ``backend`` pins the candidate-store backend; the default is the
    reference object backend, whose per-candidate costs are what the
    paper's asymptotic comparison describes (the SoA backend vectorizes
    the lillis scans away, which is interesting but a different claim).
    """
    spec = spec if spec is not None else FIGURE_NET
    cells = [(spec, size, repeats, seed, backend) for size in library_sizes]
    raw = parallel_map(_measure_fig3_point, cells, jobs=jobs, chunksize=1)
    return _build_series("Figure 3", "b", raw)


def run_fig4(
    spec: Optional[NetSpec] = None,
    position_counts: Sequence[int] = FIG4_POSITION_COUNTS,
    library_size: int = 32,
    repeats: int = 1,
    seed: int = 0,
    jobs: int = 1,
    backend: str = "object",
) -> FigureSeries:
    """Figure 4: normalized running time versus buffer positions ``n``.

    Defaults to the trunk workload (:data:`FIG4_NET`): at Python-feasible
    position counts only a deep net keeps candidate lists long enough for
    the add-buffer operation to dominate, which is the regime Figure 4
    illustrates (the paper gets there with n up to 66k).  ``jobs > 1``
    surveys the sweep across worker processes; ``backend`` defaults to
    the reference object backend (see :func:`run_fig3`).
    """
    spec = spec if spec is not None else FIG4_NET
    cells = [
        (spec, target, library_size, repeats, seed, backend)
        for target in position_counts
    ]
    raw = parallel_map(_measure_fig4_point, cells, jobs=jobs, chunksize=1)
    return _build_series("Figure 4", "n", raw)


def _measure_fig4_point(cell) -> Tuple[int, float, float]:
    """One n-axis point of Figure 4; module-level so it pickles.

    Compiled once per point, like the Figure 3 cells.
    """
    spec, target, library_size, repeats, seed, backend = cell
    library = paper_library(library_size, jitter=0.03, seed=seed + library_size)
    tree = build_net(spec, positions_override=target)
    compiled = compile_net(tree, library)
    lillis = time_algorithm(compiled, library, "lillis", repeats=repeats,
                            backend=backend)
    fast = time_algorithm(compiled, library, "fast", repeats=repeats,
                          backend=backend)
    return (compiled.num_buffer_positions, lillis.seconds, fast.seconds)


def format_figure(series: FigureSeries) -> str:
    """Render a figure series as the paper's table of normalized times."""
    header = (
        f"{series.parameter:>7}{'Lillis (s)':>12}{'New (s)':>10}"
        f"{'Lillis norm':>13}{'New norm':>10}"
    )
    lines = [f"{series.name}  (normalized to the first row)", header,
             "-" * len(header)]
    for point in series.points:
        lines.append(
            f"{point.x:>7}{point.lillis_seconds:>12.3f}{point.fast_seconds:>10.3f}"
            f"{point.lillis_normalized:>13.2f}{point.fast_normalized:>10.2f}"
        )
    lillis_slope, fast_slope = series.slopes()
    lines.append(
        f"normalized slope: lillis {lillis_slope:.4f}/{series.parameter}, "
        f"new {fast_slope:.4f}/{series.parameter}"
    )
    return "\n".join(lines)
