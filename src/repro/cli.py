"""Command-line interface: ``python -m repro <command>``.

Seven subcommands cover the workflow a user needs without writing code:

* ``generate`` — synthesize a net and/or a buffer library to JSON;
* ``buffer``   — run an insertion algorithm on saved net + library and
  print the report (optionally saving the assignment);
* ``batch``    — buffer many saved nets in one run, optionally across
  worker processes (``--jobs``);
* ``edit``     — replay an ECO edit script against a saved net with the
  incremental engine (:mod:`repro.incremental`), re-solving only the
  dirty path per step; ``--verify`` cross-checks every step against a
  from-scratch solve;
* ``info``     — describe a saved net;
* ``serve``    — run the HTTP serving layer (:mod:`repro.service`):
  ``/solve``, ``/batch``, ``/session`` (stateful incremental ECO
  sessions), ``/healthz``, ``/stats`` with canonical-hash result
  caching and a persistent worker pool; ``--policy`` selects the
  execution-routing policy and ``--workload-log`` captures every
  routed solve to a JSONL file;
* ``replay``   — re-run a captured workload log (:mod:`repro.routing`)
  under one or more routing policies and report per-request and
  aggregate regret against the observed best plan.

Algorithms and candidate-store backends are enumerated from their
registries (:mod:`repro.core.registry`, :mod:`repro.core.stores`), so a
plugin registered before :func:`main` runs is selectable by name.

Example session (see ``docs/cli.md`` for full transcripts)::

    python -m repro generate --net net.json --sinks 50 --positions 400 \\
                             --library lib.json --library-size 16
    python -m repro buffer --net net.json --library lib.json --algorithm fast
    python -m repro batch --nets a.json b.json c.json --library lib.json \\
                          --jobs 4
    python -m repro edit --net net.json --library lib.json \\
                         --edits eco.json --verify
    python -m repro info --net net.json
    python -m repro serve --port 8080 --jobs 4 --workload-log workload.jsonl
    python -m repro replay --log workload.jsonl --policy static model
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.api import insert_buffers
from repro.core.batch import solve_many
from repro.core.registry import algorithm_names, available_algorithms
from repro.core.stores import store_backend_names
from repro.library.generators import paper_library
from repro.report import describe_net, full_report, render_tree
from repro.tree.builders import random_tree_net
from repro.tree.io import (
    library_from_dict,
    library_to_dict,
    load_tree,
    save_tree,
)
from repro.tree.node import Driver
from repro.tree.segmenting import segment_to_position_count
from repro.units import ps, to_ps


def _algorithm_help() -> str:
    parts = [
        f"{name}: {algo.complexity}"
        for name, algo in available_algorithms().items()
    ]
    return "insertion algorithm (" + "; ".join(parts) + ")"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal buffer insertion (Li & Shi, DATE 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a net and/or library")
    gen.add_argument("--net", type=Path, help="write the net JSON here")
    gen.add_argument("--sinks", type=int, default=50, help="sink count m")
    gen.add_argument("--positions", type=int, default=400,
                     help="buffer-position count n (via wire segmenting)")
    gen.add_argument("--seed", type=int, default=2005)
    gen.add_argument("--driver-resistance", type=float, default=200.0)
    gen.add_argument("--rat-ps", type=float, nargs=2, default=(500.0, 3000.0),
                     metavar=("LO", "HI"),
                     help="sink required-arrival window in picoseconds")
    gen.add_argument("--library", type=Path, help="write the library JSON here")
    gen.add_argument("--library-size", type=int, default=16, help="b")

    buf = sub.add_parser("buffer", help="run buffer insertion")
    buf.add_argument("--net", type=Path, required=True)
    buf.add_argument("--library", type=Path, required=True)
    buf.add_argument("--algorithm", choices=algorithm_names(), default="fast",
                     help=_algorithm_help())
    buf.add_argument("--backend",
                     choices=("auto",) + store_backend_names(),
                     default="auto",
                     help="candidate-store backend; 'auto' (default) "
                          "picks soa when NumPy is available")
    buf.add_argument("--paper-pseudocode", action="store_true",
                     help="use the paper's destructive Convexpruning "
                          "(exact on 2-pin nets only)")
    buf.add_argument("--jobs", type=int, default=1,
                     help="worker processes for a partitioned solve of "
                          "this single net, >= 1 (default 1 = serial; "
                          "large nets are cut into balanced subtrees "
                          "solved concurrently, bit-identical result)")
    buf.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                     help="wall-clock budget for the solve in "
                          "milliseconds; exceeding it aborts with exit "
                          "code 2 (default: no deadline)")
    buf.add_argument("--output", type=Path,
                     help="write the buffer assignment JSON here")
    buf.add_argument("--show-tree", action="store_true",
                     help="print an ASCII sketch with buffer markers")
    buf.add_argument("--trace", type=Path, default=None, metavar="FILE",
                     help="write a Chrome trace_event JSON of this solve "
                          "(route/compile/kernel/worker spans; open it at "
                          "https://ui.perfetto.dev)")

    batch = sub.add_parser(
        "batch", help="buffer many nets in one run (multi-process capable)")
    batch.add_argument("--nets", type=Path, nargs="*", required=True,
                       metavar="NET", help="net JSON files to buffer")
    batch.add_argument("--library", type=Path, required=True)
    batch.add_argument("--algorithm", choices=algorithm_names(),
                       default="fast", help=_algorithm_help())
    batch.add_argument("--backend",
                       choices=("auto",) + store_backend_names(),
                       default="auto",
                       help="candidate-store backend; 'auto' (default) "
                            "picks soa when NumPy is available")
    batch.add_argument("--jobs", type=int, default=1,
                       help="worker processes, >= 1 (default 1; pass your "
                            "CPU count for one worker per core)")
    batch.add_argument("--corners", type=int, default=0, metavar="N",
                       help="replicate every net across N R/C process "
                            "corners and buffer all replicas (corner "
                            "groups ride the batch-axis engine on the "
                            "soa backend)")
    batch.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="wall-clock budget for the whole batch in "
                            "milliseconds; exceeding it aborts with exit "
                            "code 2 (default: no deadline)")
    batch.add_argument("--output", type=Path,
                       help="write per-net results JSON here")

    edit = sub.add_parser(
        "edit",
        help="replay an ECO edit script with incremental re-solving")
    edit.add_argument("--net", type=Path, required=True)
    edit.add_argument("--library", type=Path, required=True)
    edit.add_argument("--edits", type=Path, required=True,
                      help="JSON file: a list of edit objects "
                           '(e.g. [{"op": "set_sink_rat", "node": 3, '
                           '"required_arrival": 9e-10}, ...]); node ids '
                           "are the loaded net's ids (see 'repro info')")
    edit.add_argument("--algorithm", choices=algorithm_names(),
                      default="fast", help=_algorithm_help())
    edit.add_argument("--backend",
                      choices=("auto",) + store_backend_names(),
                      default="auto",
                      help="candidate-store backend; 'auto' (default) "
                           "picks soa when NumPy is available")
    edit.add_argument("--verify", action="store_true",
                      help="cross-check every step against a from-scratch "
                           "solve (bit-identical slack and assignment)")
    edit.add_argument("--output", type=Path,
                      help="write per-step results JSON here")

    info = sub.add_parser("info", help="describe a saved net")
    info.add_argument("--net", type=Path, required=True)

    serve = sub.add_parser(
        "serve", help="run the HTTP serving layer (solve/batch/healthz/stats)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (default 8080; 0 = ephemeral)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes per solve pool, >= 1 "
                            "(default 1 = solve in the server process)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="result-cache capacity in entries (default 1024)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="result-cache TTL in seconds "
                            "(default: no expiry)")
    serve.add_argument("--max-pools", type=int, default=4,
                       help="distinct solve contexts kept warm (default 4)")
    serve.add_argument("--max-sessions", type=int, default=32,
                       help="live incremental ECO sessions kept resident; "
                            "least recently used beyond this are evicted "
                            "(default 32)")
    serve.add_argument("--session-ttl", type=float, default=3600.0,
                       help="seconds an idle session stays alive "
                            "(default 3600; <= 0 disables expiry)")
    serve.add_argument("--parallel-threshold", type=int, default=None,
                       metavar="N",
                       help="instruction count above which a single "
                            "/solve net is partitioned across the "
                            "pool's workers (default: calibrated; "
                            "needs --jobs > 1)")
    serve.add_argument("--policy", default=None, metavar="POLICY",
                       help="execution-routing policy: 'static' "
                            "(default; the historical heuristics), "
                            "'model' (cost-model routed), or an "
                            "always_* escape hatch (see "
                            "repro.routing.router)")
    serve.add_argument("--workload-log", type=Path, default=None,
                       metavar="PATH",
                       help="append one JSONL record per routed solve "
                            "here ('repro replay' re-runs it offline)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="solve dispatches allowed to run "
                            "concurrently (default 8)")
    serve.add_argument("--max-queue-depth", type=int, default=32,
                       metavar="N",
                       help="requests allowed to wait for an admission "
                            "slot before the server sheds load with a "
                            "503 + Retry-After (default 32; 0 sheds "
                            "immediately when saturated)")
    serve.add_argument("--max-request-bytes", type=int,
                       default=64 * 1024 * 1024, metavar="BYTES",
                       help="request-body size cap; larger bodies are "
                            "rejected with a 413 (default 64 MiB)")
    serve.add_argument("--max-positions", type=int, default=None,
                       metavar="N",
                       help="per-net cap on buffer positions; larger "
                            "nets are rejected with a 422 (default: "
                            "unlimited)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="default per-request solve deadline in "
                            "milliseconds, answered with a 504 when "
                            "exceeded; a request's own deadline_ms "
                            "overrides it (default: no deadline)")
    serve.add_argument("--log-json", action="store_true",
                       help="emit structured JSON log lines on stderr, "
                            "each stamped with the request id it "
                            "belongs to")

    replay = sub.add_parser(
        "replay",
        help="re-run a captured workload log under routing policies")
    replay.add_argument("--log", type=Path, required=True,
                        help="workload JSONL captured with capture='full' "
                             "(the committed corpus format)")
    replay.add_argument("--policy", nargs="*", default=["static", "model"],
                        metavar="POLICY",
                        help="policies to price (default: static model); "
                             "'static' is always included as baseline")
    replay.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per (request, plan); the "
                             "best is kept (default 3)")
    replay.add_argument("--per-request", action="store_true",
                        help="also print the per-request table")
    replay.add_argument("--output", type=Path,
                        help="write the full replay report JSON here")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.net is None and args.library is None:
        print("generate: nothing to do (pass --net and/or --library)",
              file=sys.stderr)
        return 2
    if args.net is not None:
        lo, hi = args.rat_ps
        tree = random_tree_net(
            args.sinks,
            seed=args.seed,
            required_arrival=(ps(lo), ps(hi)),
            driver=Driver(resistance=args.driver_resistance),
        )
        tree = segment_to_position_count(tree, args.positions)
        save_tree(tree, args.net)
        print(f"wrote net: m={tree.num_sinks} n={tree.num_buffer_positions} "
              f"-> {args.net}")
    if args.library is not None:
        library = paper_library(args.library_size, jitter=0.03, seed=args.seed)
        args.library.write_text(json.dumps(library_to_dict(library), indent=2))
        print(f"wrote library: b={library.size} -> {args.library}")
    return 0


def _cmd_buffer(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"buffer: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        print(f"buffer: --deadline-ms must be > 0, got {args.deadline_ms}",
              file=sys.stderr)
        return 2
    tree = load_tree(args.net)
    library = library_from_dict(json.loads(args.library.read_text()))
    options = {}
    if args.paper_pseudocode:
        if args.algorithm != "fast":
            print("--paper-pseudocode only applies to --algorithm fast",
                  file=sys.stderr)
            return 2
        options["destructive_pruning"] = True
    from repro.errors import DeadlineExceeded, WorkerCrashError
    from repro.obs.spans import Tracer, new_request_id, request_scope, trace_scope
    from repro.resilience import Deadline

    deadline = (
        Deadline.from_ms(args.deadline_ms)
        if args.deadline_ms is not None else None
    )
    tracer = (
        Tracer(request_id=new_request_id())
        if args.trace is not None else None
    )

    def _solve():
        if args.jobs > 1:
            from repro.parallel import solve_partitioned

            report: dict = {}
            try:
                result = solve_partitioned(
                    tree, library, algorithm=args.algorithm,
                    backend=args.backend, jobs=args.jobs, options=options,
                    report=report, deadline=deadline,
                )
            except WorkerCrashError as exc:
                # The partitioned result is bit-identical to the serial
                # one by construction, so a crashed pool degrades to
                # the same answer — slower, never different.
                print(f"buffer: {exc}; retrying serially", file=sys.stderr)
                report = {"engaged": False,
                          "reason": "worker crash, degraded to serial"}
                result = insert_buffers(
                    tree, library, algorithm=args.algorithm,
                    backend=args.backend, deadline=deadline, **options,
                )
            if report["engaged"]:
                print(f"partitioned solve: {report['partitions']} partitions "
                      f"across {report['workers']} workers, "
                      f"coverage {report['coverage']:.0%}, "
                      f"pool utilization {report['pool_utilization']:.0%}")
            else:
                print(f"partitioned solve fell back to serial: "
                      f"{report['reason']}")
            print()
            return result
        return insert_buffers(tree, library, algorithm=args.algorithm,
                              backend=args.backend, deadline=deadline,
                              **options)

    try:
        # The ambient scope makes every layer under the solve —
        # routing, compile, kernel, worker partitions — emit spans
        # onto the tracer (a no-op when --trace was not given).
        with request_scope(tracer.request_id if tracer else None), \
                trace_scope(tracer):
            result = _solve()
    except DeadlineExceeded as exc:
        print(f"buffer: {exc}", file=sys.stderr)
        return 2
    if tracer is not None:
        args.trace.write_text(json.dumps(tracer.to_chrome()))
        print(f"wrote trace ({len(tracer)} spans, request "
              f"{tracer.request_id}) -> {args.trace}")
    print(full_report(tree, result))
    if args.show_tree:
        print()
        print(render_tree(tree, result))
    if args.output is not None:
        payload = {
            "slack_seconds": result.slack,
            "algorithm": result.stats.algorithm,
            "backend": result.stats.backend,
            "assignment": {
                str(node_id): buffer.name
                for node_id, buffer in sorted(result.assignment.items())
            },
        }
        args.output.write_text(json.dumps(payload, indent=2))
        print(f"\nwrote assignment -> {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if not args.nets:
        print("batch: --nets needs at least one net file", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"batch: --jobs must be >= 1, got {args.jobs} "
              "(pass your CPU count for one worker per core)",
              file=sys.stderr)
        return 2
    missing = [str(path) for path in args.nets if not path.is_file()]
    if missing:
        print(f"batch: net file(s) not found: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    if args.corners < 0:
        print(f"batch: --corners must be >= 0, got {args.corners}",
              file=sys.stderr)
        return 2
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        print(f"batch: --deadline-ms must be > 0, got {args.deadline_ms}",
              file=sys.stderr)
        return 2
    library = library_from_dict(json.loads(args.library.read_text()))
    loaded = [load_tree(path) for path in args.nets]
    if args.corners >= 1:
        from repro.experiments.workloads import corner_variants

        labels = []
        trees = []
        for path, tree in zip(args.nets, loaded):
            for corner, variant in corner_variants(tree, args.corners):
                labels.append(f"{path.name}@{corner}")
                trees.append(variant)
    else:
        labels = [path.name for path in args.nets]
        trees = loaded
    jobs = args.jobs
    from repro.errors import DeadlineExceeded
    from repro.resilience import Deadline

    deadline = (
        Deadline.from_ms(args.deadline_ms)
        if args.deadline_ms is not None else None
    )
    started = time.perf_counter()
    try:
        results = solve_many(trees, library, algorithm=args.algorithm,
                             jobs=jobs, backend=args.backend,
                             deadline=deadline)
    except DeadlineExceeded as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    header = f"{'net':<28}{'n':>7}{'slack (ps)':>13}{'buffers':>9}"
    print(header)
    print("-" * len(header))
    for label, tree, result in zip(labels, trees, results):
        print(f"{label:<28}{tree.num_buffer_positions:>7}"
              f"{to_ps(result.slack):>13.1f}{result.num_buffers:>9}")
    rate = len(trees) / elapsed if elapsed > 0 else float("inf")
    corner_note = (
        f", corners={args.corners}" if args.corners >= 1 else ""
    )
    print(f"\n{len(trees)} nets in {elapsed:.3f}s "
          f"({rate:.1f} nets/s, algorithm={args.algorithm}, "
          f"backend={args.backend}, jobs={args.jobs}{corner_note})")

    if args.output is not None:
        payload = {
            "algorithm": args.algorithm,
            "backend": args.backend,
            "jobs": args.jobs,
            "corners": args.corners,
            "elapsed_seconds": elapsed,
            "results": [
                {
                    "net": label,
                    "slack_seconds": result.slack,
                    "num_buffers": result.num_buffers,
                    "assignment": {
                        str(node_id): buffer.name
                        for node_id, buffer in sorted(result.assignment.items())
                    },
                }
                for label, result in zip(labels, results)
            ],
        }
        args.output.write_text(json.dumps(payload, indent=2))
        print(f"wrote results -> {args.output}")
    return 0


def _cmd_edit(args: argparse.Namespace) -> int:
    from repro.core.schedule import auto_compile
    from repro.errors import EditError, ReproError
    from repro.incremental import IncrementalSolver, edit_from_dict

    tree = load_tree(args.net)
    library = library_from_dict(json.loads(args.library.read_text()))
    try:
        edit_specs = json.loads(args.edits.read_text())
    except json.JSONDecodeError as exc:
        print(f"edit: {args.edits} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(edit_specs, list) or not edit_specs:
        print("edit: the edit script must be a non-empty JSON list",
              file=sys.stderr)
        return 2
    try:
        edits = [edit_from_dict(spec) for spec in edit_specs]
    except EditError as exc:
        print(f"edit: {exc}", file=sys.stderr)
        return 2

    solver = IncrementalSolver(tree, library, algorithm=args.algorithm,
                               backend=args.backend)
    started = time.perf_counter()
    baseline = solver.resolve()
    baseline_seconds = time.perf_counter() - started
    print(f"baseline: slack {to_ps(baseline.slack):.1f} ps, "
          f"{baseline.num_buffers} buffers "
          f"({baseline_seconds * 1e3:.1f} ms full solve, "
          f"algorithm={args.algorithm}, backend={solver.backend})")

    header = (f"{'step':>5}  {'edit':<34}{'slack (ps)':>12}{'buffers':>9}"
              f"{'resolve (ms)':>14}{'dirty %':>9}")
    print(header)
    print("-" * len(header))
    steps = []
    mismatches = 0
    for number, (edit, spec) in enumerate(zip(edits, edit_specs), start=1):
        try:
            solver.apply(edit)
        except (EditError, ReproError) as exc:
            print(f"edit: step {number} rejected: {exc}", file=sys.stderr)
            return 2
        started = time.perf_counter()
        result = solver.resolve()
        elapsed = time.perf_counter() - started
        verified = None
        if args.verify:
            with auto_compile(False):
                scratch = insert_buffers(tree, library,
                                         algorithm=args.algorithm,
                                         backend=args.backend)
            verified = (
                scratch.slack == result.slack
                and scratch.assignment == result.assignment
            )
            if not verified:
                mismatches += 1
        summary = edit.describe()
        if len(summary) > 32:
            summary = summary[:31] + "…"
        flag = "" if verified is None else ("  ok" if verified else "  MISMATCH")
        print(f"{number:>5}  {summary:<34}{to_ps(result.slack):>12.1f}"
              f"{result.num_buffers:>9}{elapsed * 1e3:>14.2f}"
              f"{solver.last_executed_fraction * 100:>8.1f}%{flag}")
        steps.append({
            "edit": spec,
            "slack_seconds": result.slack,
            "num_buffers": result.num_buffers,
            "resolve_seconds": elapsed,
            "executed_fraction": solver.last_executed_fraction,
            "spliced_subtrees": solver.last_spliced_subtrees,
            **({} if verified is None else {"verified": verified}),
        })

    cache = solver.stats()["frontier_cache"]
    print(f"\n{len(edits)} edits; frontier cache: {cache['hits']} hits / "
          f"{cache['misses']} misses ({cache['hit_rate']:.0%}), "
          f"{cache['bytes'] / 1024:.0f} KiB resident")
    if args.output is not None:
        final = steps[-1] if steps else {}
        payload = {
            "algorithm": args.algorithm,
            "backend": solver.backend,
            "baseline_slack_seconds": baseline.slack,
            "steps": steps,
            "final_assignment": {
                str(node_id): buffer.name
                for node_id, buffer in sorted(
                    solver.resolve().assignment.items()
                )
            },
            "final_slack_seconds": final.get("slack_seconds", baseline.slack),
        }
        args.output.write_text(json.dumps(payload, indent=2))
        print(f"wrote results -> {args.output}")
    if mismatches:
        print(f"edit: {mismatches} step(s) FAILED verification",
              file=sys.stderr)
        return 1
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    tree = load_tree(args.net)
    print(describe_net(tree))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"serve: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.cache_size < 1:
        print(f"serve: --cache-size must be >= 1, got {args.cache_size}",
              file=sys.stderr)
        return 2
    if args.cache_ttl is not None and args.cache_ttl <= 0:
        print(f"serve: --cache-ttl must be > 0, got {args.cache_ttl}",
              file=sys.stderr)
        return 2
    if args.max_sessions < 1:
        print(f"serve: --max-sessions must be >= 1, got {args.max_sessions}",
              file=sys.stderr)
        return 2
    if args.parallel_threshold is not None and args.parallel_threshold < 1:
        print(f"serve: --parallel-threshold must be >= 1, "
              f"got {args.parallel_threshold}", file=sys.stderr)
        return 2
    if args.max_inflight < 1:
        print(f"serve: --max-inflight must be >= 1, got {args.max_inflight}",
              file=sys.stderr)
        return 2
    if args.max_queue_depth < 0:
        print(f"serve: --max-queue-depth must be >= 0, "
              f"got {args.max_queue_depth}", file=sys.stderr)
        return 2
    if args.max_request_bytes < 1:
        print(f"serve: --max-request-bytes must be >= 1, "
              f"got {args.max_request_bytes}", file=sys.stderr)
        return 2
    if args.max_positions is not None and args.max_positions < 1:
        print(f"serve: --max-positions must be >= 1, "
              f"got {args.max_positions}", file=sys.stderr)
        return 2
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        print(f"serve: --deadline-ms must be > 0, got {args.deadline_ms}",
              file=sys.stderr)
        return 2
    if args.policy is not None:
        from repro.routing.router import validate_policy

        try:
            validate_policy(args.policy)
        except ValueError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
    from repro.service.server import serve

    if args.log_json:
        from repro.obs.logging import configure_json_logging

        configure_json_logging()
    session_ttl = args.session_ttl if args.session_ttl > 0 else None
    serve(host=args.host, port=args.port, jobs=args.jobs,
          cache_size=args.cache_size, cache_ttl=args.cache_ttl,
          max_pools=args.max_pools, max_sessions=args.max_sessions,
          session_ttl=session_ttl,
          parallel_threshold=args.parallel_threshold,
          policy=args.policy,
          workload_log=(
              str(args.workload_log) if args.workload_log is not None
              else None
          ),
          max_inflight=args.max_inflight,
          max_queue_depth=args.max_queue_depth,
          max_request_bytes=args.max_request_bytes,
          max_positions=args.max_positions,
          deadline_ms=args.deadline_ms)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.routing.router import validate_policy
    from repro.routing.workload import replay

    if args.repeats < 1:
        print(f"replay: --repeats must be >= 1, got {args.repeats}",
              file=sys.stderr)
        return 2
    if not args.log.is_file():
        print(f"replay: log file not found: {args.log}", file=sys.stderr)
        return 2
    for policy in args.policy:
        try:
            validate_policy(policy)
        except ValueError as exc:
            print(f"replay: {exc}", file=sys.stderr)
            return 2
    try:
        report = replay(args.log, policies=tuple(args.policy),
                        repeats=args.repeats)
    except ReproError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2

    print(f"replayed {report['requests']} request(s) "
          f"(repeats={report['repeats']}, "
          f"parity checked on {report['parity_checked']} plan(s), "
          f"model {report['model_version']})")
    print(f"oracle best: {report['oracle_seconds'] * 1e3:.2f} ms total")
    header = (f"{'policy':<18}{'total (ms)':>12}{'regret (ms)':>13}"
              f"{'vs oracle':>11}{'vs static':>11}")
    print(header)
    print("-" * len(header))
    for name, bucket in report["policies"].items():
        print(f"{name:<18}{bucket['total_seconds'] * 1e3:>12.2f}"
              f"{bucket['regret_seconds'] * 1e3:>13.2f}"
              f"{bucket['speedup_vs_oracle']:>10.2f}x"
              f"{bucket['speedup_vs_static']:>10.2f}x")
    if args.per_request:
        print()
        header = (f"{'#':>4}  {'kind':<8}{'features':<24}{'best plan':<24}"
                  f"{'best (ms)':>10}")
        print(header)
        print("-" * len(header))
        for entry in report["per_request"]:
            features = entry["features"]
            shape = (f"n={features['positions']} b={features['library_size']}"
                     + (f" lanes={features['lanes']}"
                        if features.get("lanes", 1) > 1 else ""))
            best_seconds = entry["measured_seconds"][entry["best"]]
            print(f"{entry['index']:>4}  {entry['kind']:<8}{shape:<24}"
                  f"{entry['best']:<24}"
                  f"{best_seconds * 1e3:>10.3f}")
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"\nwrote report -> {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "buffer":
        return _cmd_buffer(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "edit":
        return _cmd_edit(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "replay":
        return _cmd_replay(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
