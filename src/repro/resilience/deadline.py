"""Per-request wall-clock deadlines, checked cooperatively.

A :class:`Deadline` is a monotonic wall budget created at admission
time (one per request).  It is *threaded* through the execution layers
ambiently: :func:`deadline_scope` installs it in a thread-local slot,
and every interpreter loop — the compiled schedule executor
(:func:`repro.core.dp._execute_schedule`), the batch-axis lane loop
(:func:`repro.core.stores.batch_axis.solve_group`), the partitioned
residual replay and the incremental dirty-path interpreter — polls
:func:`active_deadline` once at entry and then checks expiry only at
instruction-range boundaries (``OP_FINAL`` instructions, one per tree
node), so the per-instruction cost with no deadline installed is a
single ``is not None`` test.

Deadlines never change results: a solve either returns its
bit-identical answer in time or raises
:class:`~repro.errors.DeadlineExceeded` (HTTP 504 at the server).
Worker processes do not inherit the thread-local; instead the parent
bounds its *wait* on worker results by ``remaining()`` (see
:mod:`repro.resilience.supervisor`), which bounds the request all the
same.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "active_deadline",
    "deadline_scope",
    "reset_active_deadline",
]


class Deadline:
    """A wall-clock budget with a fixed expiry instant.

    Args:
        budget_seconds: Seconds from *now* until expiry; must be > 0.
        clock: Monotonic time source (injectable so tests don't sleep).
    """

    __slots__ = ("budget", "_clock", "_expires_at")

    def __init__(
        self,
        budget_seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_seconds <= 0:
            raise ValueError(
                f"deadline budget must be > 0 seconds, got {budget_seconds}"
            )
        self.budget = float(budget_seconds)
        self._clock = clock
        self._expires_at = clock() + budget_seconds

    @classmethod
    def from_ms(cls, budget_ms: float, **kwargs) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(budget_ms / 1e3, **kwargs)

    def remaining(self) -> float:
        """Seconds until expiry; negative once expired."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget has run out."""
        if self._clock() >= self._expires_at:
            raise DeadlineExceeded(site, self.budget)

    def __repr__(self) -> str:
        return (
            f"Deadline(budget={self.budget:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )


_local = threading.local()


def active_deadline() -> Optional[Deadline]:
    """The deadline installed on this thread, or ``None``."""
    return getattr(_local, "deadline", None)


def reset_active_deadline() -> None:
    """Forget any deadline installed on this thread.

    Worker-process entry points call this: under the fork start method
    a child forked while the parent thread held a ``deadline_scope``
    inherits that thread-local, and a request-scoped budget must never
    outlive its request inside a pooled worker.
    """
    _local.deadline = None


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as this thread's active deadline.

    ``None`` keeps whatever deadline is already active (so nesting an
    unbounded call inside a bounded one stays bounded).  The previous
    deadline is restored on exit.
    """
    previous = getattr(_local, "deadline", None)
    if deadline is not None:
        _local.deadline = deadline
    try:
        yield deadline if deadline is not None else previous
    finally:
        _local.deadline = previous
