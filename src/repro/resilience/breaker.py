"""Circuit breakers for execution strategies.

A :class:`CircuitBreaker` guards one strategy axis (``"parallel"``,
``"batch_axis"``).  It is a classic three-state machine:

* **closed** — traffic flows; consecutive failures are counted and the
  count resets on any success.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  :meth:`allow` answers ``False`` so callers skip the strategy (the
  bit-identical serial plan is always available) until
  ``reset_seconds`` of cool-down have passed.
* **half-open** — after the cool-down one *probe* call is admitted;
  success closes the breaker, failure re-opens it and restarts the
  cool-down.

:class:`BreakerBoard` holds one breaker per axis and renders the
``/stats`` / deep-healthz view.  Callers consult the board by masking
the ``supports_parallel`` / ``supports_batch`` capability flags they
pass to :meth:`repro.routing.router.Router.route`, so a tripped axis
simply disappears from the candidate plans — routing itself stays
deterministic and model-driven.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["CircuitBreaker", "BreakerBoard", "STRATEGY_AXES"]

#: The strategy axes guarded by breakers (capability-flag names at the
#: route() call sites).
STRATEGY_AXES = ("parallel", "batch_axis")

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class CircuitBreaker:
    """A three-state breaker for one strategy axis.

    Args:
        name: Axis label, used in stats output.
        failure_threshold: Consecutive failures that trip the breaker.
        reset_seconds: Cool-down before a half-open probe is admitted.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0
        self.failures = 0
        self.successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Lock held.  An open breaker whose cool-down elapsed reads as
        # half-open; the transition is realized by the next allow().
        if self._state == _OPEN and (
            self._clock() - self._opened_at >= self.reset_seconds
        ):
            return _HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a call may use this strategy right now.

        In half-open state exactly one caller gets ``True`` (the probe)
        until :meth:`record_success` / :meth:`record_failure` settles it.
        """
        with self._lock:
            state = self._effective_state()
            if state == _CLOSED:
                return True
            if state == _HALF_OPEN:
                if self._probe_in_flight:
                    return False
                self._state = _HALF_OPEN
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._state = _CLOSED
            self._probe_in_flight = False

    def cancel_probe(self) -> None:
        """Return an unused half-open probe token.

        Callers consult :meth:`allow` before *routing*; when the router
        then declines the strategy anyway, the probe was never
        exercised and must be returned, or the breaker would stay
        half-open with its one token lost.  A no-op in other states.
        """
        with self._lock:
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._probe_in_flight = False
            if self._state == _HALF_OPEN:
                # Failed probe: re-open and restart the cool-down.
                self._state = _OPEN
                self._opened_at = self._clock()
                self.trips += 1
                return
            self._consecutive_failures += 1
            if (
                self._state == _CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = _OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state(),
                "trips": self.trips,
                "failures": self.failures,
                "successes": self.successes,
                "consecutive_failures": self._consecutive_failures,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"


class BreakerBoard:
    """One breaker per strategy axis, with an aggregate stats view."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        axes: tuple = STRATEGY_AXES,
    ) -> None:
        self._breakers: Dict[str, CircuitBreaker] = {
            axis: CircuitBreaker(
                axis,
                failure_threshold=failure_threshold,
                reset_seconds=reset_seconds,
                clock=clock,
            )
            for axis in axes
        }

    def breaker(self, axis: str) -> CircuitBreaker:
        return self._breakers[axis]

    def allow(self, axis: str) -> bool:
        breaker = self._breakers.get(axis)
        return True if breaker is None else breaker.allow()

    def cancel(self, axis: str) -> None:
        breaker = self._breakers.get(axis)
        if breaker is not None:
            breaker.cancel_probe()

    def record(self, axis: str, ok: bool) -> None:
        breaker = self._breakers.get(axis)
        if breaker is None:
            return
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())

    def stats(self) -> dict:
        return {axis: b.stats() for axis, b in self._breakers.items()}
