"""Resilience substrate: deadlines, supervision, breakers, fault injection.

Four small, dependency-free modules that every execution layer leans on:

* :mod:`~repro.resilience.deadline` — per-request wall budgets checked
  cooperatively at instruction-range boundaries; typed
  :class:`~repro.errors.DeadlineExceeded` (HTTP 504).
* :mod:`~repro.resilience.supervisor` — retry / respawn / degrade loop
  with capped exponential backoff and deterministic jitter; degraded
  requests fall back to the bit-identical in-process plan.
* :mod:`~repro.resilience.breaker` — per-strategy-axis circuit
  breakers (closed / open / half-open) consulted by masking the
  capability flags passed to ``Router.route()``.
* :mod:`~repro.resilience.faults` — seeded, deterministic fault
  injection at named sites (:data:`~repro.resilience.faults.FAULT_SITES`)
  powering the chaos suite and ``bench_resilience.py``.

See ``docs/resilience.md`` for the full design.
"""

from repro.errors import (
    DeadlineExceeded,
    FaultInjectedError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.resilience.breaker import STRATEGY_AXES, BreakerBoard, CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    active_deadline,
    deadline_scope,
    reset_active_deadline,
)
from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_fault_plan,
    clear_fault_plan,
    inject,
    install_fault_plan,
    should_corrupt,
)
from repro.resilience.supervisor import (
    SUPERVISABLE_ERRORS,
    BackoffPolicy,
    Supervisor,
    is_supervisable,
)

__all__ = [
    "BackoffPolicy",
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FAULT_SITES",
    "FaultInjectedError",
    "FaultPlan",
    "FaultRule",
    "STRATEGY_AXES",
    "SUPERVISABLE_ERRORS",
    "Supervisor",
    "WorkerCrashError",
    "WorkerHangError",
    "active_deadline",
    "active_fault_plan",
    "clear_fault_plan",
    "deadline_scope",
    "inject",
    "install_fault_plan",
    "is_supervisable",
    "reset_active_deadline",
    "should_corrupt",
]
