"""Supervised execution: retry, respawn, degrade — never hang.

The :class:`Supervisor` runs an *attempt* callable under a simple
policy: on a **supervisable** failure (worker crash, broken pool, hung
task timeout, injected fault) it respawns the resource (caller-supplied
``respawn`` hook, e.g. terminate + recreate a process pool), sleeps a
capped exponential backoff with deterministic jitter, and retries; when
retries are exhausted it invokes the caller's ``fallback`` — for this
codebase always the *bit-identical in-process plan* — instead of
failing the request.  Genuine algorithm errors and
:class:`~repro.errors.DeadlineExceeded` are never supervisable: they
propagate immediately.

Backoff jitter is drawn from a seeded stream so resilience tests and
``bench_resilience.py`` replay identically.
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, TypeVar

from repro.errors import (
    DeadlineExceeded,
    FaultInjectedError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.obs.metrics import default_registry
from repro.obs.spans import active_tracer
from repro.resilience.deadline import Deadline

__all__ = [
    "BackoffPolicy",
    "SUPERVISABLE_ERRORS",
    "Supervisor",
    "is_supervisable",
]

T = TypeVar("T")

#: Failures the supervisor may retry: dead or hung workers, broken
#: pools, torn pipes, and injected faults.  ``OSError`` covers
#: ``BrokenPipeError`` / ``ConnectionResetError`` from pool plumbing.
SUPERVISABLE_ERRORS = (
    BrokenProcessPool,
    multiprocessing.TimeoutError,
    FuturesTimeoutError,
    TimeoutError,
    EOFError,
    OSError,
    FaultInjectedError,
    WorkerCrashError,
    WorkerHangError,
)


def is_supervisable(exc: BaseException) -> bool:
    """Whether ``exc`` is a fault the supervisor may retry.

    :class:`DeadlineExceeded` is explicitly excluded even though a hung
    worker surfaces as a timeout — once the *request* deadline is gone,
    retrying cannot help.
    """
    if isinstance(exc, DeadlineExceeded):
        return False
    return isinstance(exc, SUPERVISABLE_ERRORS)


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(cap, base * factor**attempt)`` scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from a stream seeded at
    construction, so a given policy instance replays the same delays.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 1.0,
        jitter: float = 0.25,
        seed: int = 2005,
    ) -> None:
        if base < 0 or cap < 0 or not 0 <= jitter < 1:
            raise ValueError("invalid backoff parameters")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self._stream = random.Random(seed)
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float:
        raw = min(self.cap, self.base * (self.factor ** max(0, attempt)))
        if self.jitter == 0.0:
            return raw
        with self._lock:
            scale = 1.0 + self.jitter * (2.0 * self._stream.random() - 1.0)
        return raw * scale


class Supervisor:
    """Retry/respawn/degrade loop around a fallible attempt.

    One instance per supervised resource (e.g. per :class:`SolverPool`);
    counters aggregate across calls and feed the ``/stats``
    ``resilience`` block.
    """

    def __init__(
        self,
        max_retries: int = 2,
        backoff: Optional[BackoffPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = int(max_retries)
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._sleep = sleep
        self._lock = threading.Lock()
        self.retries = 0
        self.respawns = 0
        self.fallbacks = 0
        self.supervised_failures = 0

    def _count(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)
        default_registry().counter(
            "repro_supervisor_events_total",
            "Supervisor events across all supervised resources.",
        ).inc(event=field)

    def run(
        self,
        attempt: Callable[[], T],
        respawn: Optional[Callable[[], None]] = None,
        fallback: Optional[Callable[[], T]] = None,
        deadline: Optional[Deadline] = None,
        on_failure: Optional[Callable[[BaseException], None]] = None,
    ) -> T:
        """Run ``attempt`` with supervision.

        Retries supervisable failures up to ``max_retries`` times,
        calling ``respawn`` and sleeping a backoff (clipped to the
        deadline's remaining budget) between attempts.  When retries
        are exhausted, runs ``fallback`` if given, else re-raises the
        last failure.  ``on_failure`` observes every supervisable
        failure (used to feed circuit breakers).
        """
        last: Optional[BaseException] = None
        for attempt_index in range(self.max_retries + 1):
            if deadline is not None:
                deadline.check("supervisor.retry")
            try:
                return attempt()
            except BaseException as exc:  # noqa: BLE001 - reclassified below
                if not is_supervisable(exc):
                    raise
                last = exc
                self._count("supervised_failures")
                if on_failure is not None:
                    on_failure(exc)
            if attempt_index >= self.max_retries:
                break
            tracer = active_tracer()
            retry_handle = (
                tracer.begin(
                    "supervisor.retry", attempt=attempt_index,
                    error=type(last).__name__,
                )
                if tracer is not None
                else None
            )
            if respawn is not None:
                respawn()
                self._count("respawns")
            pause = self.backoff.delay(attempt_index)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    break
                pause = min(pause, remaining)
            if pause > 0:
                self._sleep(pause)
            if retry_handle is not None:
                tracer.end(retry_handle)
            self._count("retries")
        if fallback is not None:
            self._count("fallbacks")
            return fallback()
        assert last is not None
        raise last

    def stats(self) -> dict:
        with self._lock:
            return {
                "retries": self.retries,
                "respawns": self.respawns,
                "fallbacks": self.fallbacks,
                "supervised_failures": self.supervised_failures,
            }
