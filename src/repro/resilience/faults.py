"""Deterministic, seeded fault injection at named sites.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s — (site, kind,
rate) triples — plus a seed.  Each site draws from its own seeded
``random.Random`` stream, so a plan replays the same fault sequence at
each site for a given seed, independent of what other sites do.  Plans
are inert unless installed: production code calls :func:`inject` at the
registered sites (see :data:`FAULT_SITES`), which is a no-``None``-check
no-op when no plan is active.

Kinds:

* ``"crash"``  — ``os._exit(17)``: the abrupt worker death the
  supervisor's per-task timeout must detect (a dead worker cannot
  raise).
* ``"hang"``   — ``time.sleep(rule.seconds)``: a stuck task, caught by
  the same timeout.
* ``"error"``  — raise :class:`~repro.errors.FaultInjectedError`: a
  transient failure (the pickle-failure simulation for parent-side
  dispatch sites), retried by the supervisor.
* ``"corrupt"``— never raises; :func:`should_corrupt` reports the draw
  and the caller tampers with its own payload (the result-cache
  corruption the server's digest verification must catch).

Activation: :func:`install_fault_plan` (tests, benchmarks) or the
``REPRO_FAULTS`` environment variable holding the plan JSON — worker
processes inherit the module global on fork and re-read the variable on
spawn, so one installation covers the whole process tree when the plan
is installed before the pool starts.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjectedError

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "FaultInjectedError",
    "active_fault_plan",
    "clear_fault_plan",
    "inject",
    "install_fault_plan",
    "should_corrupt",
]

ENV_VAR = "REPRO_FAULTS"

#: The registered injection sites (name -> where it fires).  Tests and
#: ``docs/resilience.md`` enumerate this registry; adding a site means
#: adding its ``inject``/``should_corrupt`` call and a row here.
FAULT_SITES: Tuple[Tuple[str, str], ...] = (
    ("worker.task",
     "pool worker entry for a batch task (core.batch._solve_task)"),
    ("worker.partition",
     "pool worker entry for a partition cut (parallel.worker._solve_partition)"),
    ("batch.dispatch",
     "parent-side multi-process batch dispatch (SolverPool supervised map)"),
    ("parallel.dispatch",
     "parent-side partition dispatch (parallel.solver.solve_partitioned)"),
    ("batch.group",
     "inline batch-axis group execution (SolverPool._solve_inline)"),
    ("cache.payload",
     "result-cache payload storage (service.server; kind 'corrupt' only)"),
)

_VALID_KINDS = ("crash", "hang", "error", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``kind`` at ``site`` with ``rate``.

    Attributes:
        site: A registered site name (:data:`FAULT_SITES`).
        kind: ``"crash"`` / ``"hang"`` / ``"error"`` / ``"corrupt"``.
        rate: Probability per visit, drawn from the site's seeded
            stream (``1.0`` fires deterministically on every visit).
        seconds: Sleep length for ``"hang"``.
        limit: Maximum number of fires for this rule (``None`` =
            unlimited) — lets a test inject exactly one crash.
    """

    site: str
    kind: str
    rate: float = 1.0
    seconds: float = 30.0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"fault kind must be one of {_VALID_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"fault rate must be in (0, 1], got {self.rate}")

    def to_dict(self) -> dict:
        data = {"site": self.site, "kind": self.kind, "rate": self.rate}
        if self.kind == "hang":
            data["seconds"] = self.seconds
        if self.limit is not None:
            data["limit"] = self.limit
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            site=data["site"],
            kind=data["kind"],
            rate=data.get("rate", 1.0),
            seconds=data.get("seconds", 30.0),
            limit=data.get("limit"),
        )


class FaultPlan:
    """A seeded set of fault rules with per-site deterministic streams.

    Thread-safe; per-process (worker processes draw from their own
    inherited copy).  ``fired`` counts fires per ``site:kind``.
    """

    def __init__(self, rules: List[FaultRule], seed: int = 2005) -> None:
        self.seed = int(seed)
        self.rules = list(rules)
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._streams: Dict[str, random.Random] = {}
        self._fires: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _stream(self, site: str) -> random.Random:
        stream = self._streams.get(site)
        if stream is None:
            stream = random.Random(f"{self.seed}:{site}")
            self._streams[site] = stream
        return stream

    def draw(self, site: str, kinds: Tuple[str, ...]) -> Optional[FaultRule]:
        """The rule that fires at this visit of ``site``, if any.

        One uniform draw per matching rule, in rule order, from the
        site's seeded stream — so the fire sequence at a site is a pure
        function of (seed, visit count), whatever other sites do.
        """
        rules = self._by_site.get(site)
        if not rules:
            return None
        with self._lock:
            stream = self._stream(site)
            for rule in rules:
                if rule.kind not in kinds:
                    continue
                roll = stream.random()
                key = f"{site}:{rule.kind}"
                if rule.limit is not None and self._fires.get(key, 0) >= rule.limit:
                    continue
                if roll < rule.rate:
                    self._fires[key] = self._fires.get(key, 0) + 1
                    self.fired[key] = self.fired.get(key, 0) + 1
                    return rule
        return None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            [FaultRule.from_dict(entry) for entry in data.get("rules", [])],
            seed=data.get("seed", 2005),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"


# The active plan: None = no faults, _UNSET = env not consulted yet.
_UNSET = object()
_plan: object = _UNSET
_plan_lock = threading.Lock()


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, loading ``REPRO_FAULTS`` on first access."""
    global _plan
    plan = _plan
    if plan is _UNSET:
        with _plan_lock:
            if _plan is _UNSET:
                text = os.environ.get(ENV_VAR)
                _plan = FaultPlan.from_json(text) if text else None
            plan = _plan
    return plan  # type: ignore[return-value]


def install_fault_plan(
    plan: Optional[FaultPlan], export_env: bool = False
) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide; returns the previous plan.

    ``export_env=True`` additionally writes the plan JSON to
    ``REPRO_FAULTS`` so *spawned* (not just forked) worker processes
    pick it up; ``plan=None`` clears both.
    """
    global _plan
    with _plan_lock:
        previous = None if _plan is _UNSET else _plan
        _plan = plan
        if export_env:
            if plan is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = json.dumps(plan.to_dict())
    return previous  # type: ignore[return-value]


def clear_fault_plan() -> None:
    """Remove any installed plan (and the env export)."""
    install_fault_plan(None, export_env=True)


def inject(site: str) -> None:
    """Fire the active plan's crash/hang/error rules at ``site``.

    A no-op (one ``is None`` test after the first call) when no plan is
    installed.  ``crash`` exits the process abruptly; ``hang`` sleeps;
    ``error`` raises :class:`FaultInjectedError`.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    rule = plan.draw(site, ("crash", "hang", "error"))
    if rule is None:
        return
    if rule.kind == "crash":
        os._exit(17)
    if rule.kind == "hang":
        time.sleep(rule.seconds)
        return
    raise FaultInjectedError(site)


def should_corrupt(site: str) -> bool:
    """Whether a ``corrupt`` rule fires at this visit of ``site``."""
    plan = active_fault_plan()
    if plan is None:
        return False
    return plan.draw(site, ("corrupt",)) is not None
