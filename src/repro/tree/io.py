"""JSON serialization for routing trees and buffer libraries.

The interchange format is deliberately simple: a dict with a ``nodes``
list (pre-order, so parents always precede children), an optional
``driver``, and a format version.  It exists so workloads can be saved,
diffed and reloaded deterministically; it is not an industry format, but
the structure mirrors what a SPEF/DEF importer would produce.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from repro.errors import TreeError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.node import Driver, NodeKind
from repro.tree.routing_tree import RoutingTree

FORMAT_VERSION = 1


def tree_to_dict(tree: RoutingTree) -> Dict[str, Any]:
    """Serialize ``tree`` (including its driver) to plain dicts."""
    nodes = []
    for node_id in tree.preorder():
        node = tree.node(node_id)
        entry: Dict[str, Any] = {
            "id": node.node_id,
            "kind": node.kind.value,
            "name": node.name,
        }
        if node.position is not None:
            entry["position"] = list(node.position)
        if node.kind is NodeKind.SINK:
            entry["capacitance"] = node.capacitance
            entry["required_arrival"] = node.required_arrival
            if node.polarity != 1:
                entry["polarity"] = node.polarity
        if node.kind is NodeKind.INTERNAL:
            entry["buffer_position"] = node.is_buffer_position
            if node.allowed_buffers is not None:
                entry["allowed_buffers"] = sorted(node.allowed_buffers)
        if node_id != tree.root_id:
            edge = tree.edge_to(node_id)
            entry["edge"] = {
                "parent": edge.parent,
                "resistance": edge.resistance,
                "capacitance": edge.capacitance,
                "length": edge.length,
            }
        nodes.append(entry)

    data: Dict[str, Any] = {"format_version": FORMAT_VERSION, "nodes": nodes}
    if tree.driver is not None:
        data["driver"] = {
            "resistance": tree.driver.resistance,
            "intrinsic_delay": tree.driver.intrinsic_delay,
            "name": tree.driver.name,
        }
    return data


def tree_from_dict(
    data: Dict[str, Any], with_id_map: bool = False
) -> Union[RoutingTree, Tuple[RoutingTree, Dict[Any, int]]]:
    """Rebuild a tree from :func:`tree_to_dict` output.

    Node ids are re-assigned sequentially but the pre-order layout of
    the format guarantees the same topology and electrical data.

    Args:
        data: The serialized tree.
        with_id_map: Also return ``{serialized id: new node id}``, so a
            caller answering in terms of the *serialized* ids (the HTTP
            serving layer does) can translate back.  Ids in a file are
            arbitrary labels; re-assignment means two files describing
            the same tree load identically, but it also means in-memory
            ids need this map to be reported against the file's ids.

    Returns:
        The tree, or ``(tree, id_map)`` when ``with_id_map`` is true.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TreeError(f"unsupported tree format version: {version!r}")

    driver = None
    if "driver" in data:
        d = data["driver"]
        driver = Driver(
            resistance=d["resistance"],
            intrinsic_delay=d.get("intrinsic_delay", 0.0),
            name=d.get("name", "driver"),
        )

    nodes = data["nodes"]
    if not nodes or nodes[0]["kind"] != NodeKind.SOURCE.value:
        raise TreeError("first serialized node must be the source")

    tree = RoutingTree.with_source(driver=driver, name=nodes[0].get("name", "src"))
    id_map = {nodes[0]["id"]: tree.root_id}

    for entry in nodes[1:]:
        if entry.get("id") in id_map:
            raise TreeError(f"duplicate serialized node id {entry['id']!r}")
        edge = entry.get("edge")
        if edge is None:
            raise TreeError(f"non-root node {entry.get('id')} lacks an edge")
        if edge["parent"] not in id_map:
            raise TreeError(
                f"node {entry.get('id')}: parent {edge['parent']!r} not seen "
                "yet (nodes must be serialized parents-first)"
            )
        parent = id_map[edge["parent"]]
        position = tuple(entry["position"]) if "position" in entry else None
        kind = entry["kind"]
        if kind == NodeKind.SINK.value:
            new_id = tree.add_sink(
                parent,
                edge["resistance"],
                edge["capacitance"],
                capacitance=entry["capacitance"],
                required_arrival=entry["required_arrival"],
                name=entry.get("name", ""),
                length=edge.get("length", 0.0),
                position=position,
                polarity=entry.get("polarity", 1),
            )
        elif kind == NodeKind.INTERNAL.value:
            new_id = tree.add_internal(
                parent,
                edge["resistance"],
                edge["capacitance"],
                buffer_position=entry.get("buffer_position", False),
                allowed_buffers=entry.get("allowed_buffers"),
                name=entry.get("name", ""),
                length=edge.get("length", 0.0),
                position=position,
            )
        else:
            raise TreeError(f"unknown node kind {kind!r}")
        id_map[entry["id"]] = new_id

    tree.validate()
    if with_id_map:
        return tree, id_map
    return tree


def library_to_dict(library: BufferLibrary) -> Dict[str, Any]:
    """Serialize a buffer library."""
    return {
        "format_version": FORMAT_VERSION,
        "buffers": [
            {
                "name": b.name,
                "driving_resistance": b.driving_resistance,
                "input_capacitance": b.input_capacitance,
                "intrinsic_delay": b.intrinsic_delay,
                "cost": b.cost,
                "inverting": b.inverting,
                "max_load": b.max_load,
            }
            for b in library.buffers
        ],
    }


def library_from_dict(data: Dict[str, Any]) -> BufferLibrary:
    """Rebuild a buffer library from :func:`library_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TreeError(f"unsupported library format version: {version!r}")
    return BufferLibrary(
        BufferType(
            name=entry["name"],
            driving_resistance=entry["driving_resistance"],
            input_capacitance=entry["input_capacitance"],
            intrinsic_delay=entry["intrinsic_delay"],
            cost=entry.get("cost", 1.0),
            inverting=entry.get("inverting", False),
            max_load=entry.get("max_load"),
        )
        for entry in data["buffers"]
    )


def tree_to_json(tree: RoutingTree, indent: Union[int, None] = None) -> str:
    """Serialize ``tree`` to a JSON string with deterministic key order.

    ``sort_keys`` makes the text a function of the tree alone, so saved
    nets diff cleanly and byte-equal files imply equal trees.  (Equal
    trees up to naming/ordering are a weaker, solver-level equivalence —
    that is :func:`repro.service.canon.canonicalize`'s job, not this
    format's.)
    """
    return json.dumps(tree_to_dict(tree), indent=indent, sort_keys=True)


def tree_from_json(text: str) -> RoutingTree:
    """Rebuild a tree from :func:`tree_to_json` output."""
    return tree_from_dict(json.loads(text))


def library_to_json(library: BufferLibrary, indent: Union[int, None] = None) -> str:
    """Serialize a buffer library to a JSON string (deterministic keys)."""
    return json.dumps(library_to_dict(library), indent=indent, sort_keys=True)


def library_from_json(text: str) -> BufferLibrary:
    """Rebuild a buffer library from :func:`library_to_json` output."""
    return library_from_dict(json.loads(text))


def save_tree(tree: RoutingTree, path: Union[str, Path]) -> None:
    """Write ``tree`` as JSON to ``path``."""
    Path(path).write_text(tree_to_json(tree, indent=2))


def load_tree(path: Union[str, Path]) -> RoutingTree:
    """Read a tree previously written by :func:`save_tree`."""
    return tree_from_json(Path(path).read_text())
