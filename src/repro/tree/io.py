"""JSON serialization for routing trees and buffer libraries.

The interchange format is deliberately simple: a dict with a ``nodes``
list (pre-order, so parents always precede children), an optional
``driver``, and a format version.  It exists so workloads can be saved,
diffed and reloaded deterministically; it is not an industry format, but
the structure mirrors what a SPEF/DEF importer would produce.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import TreeError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.node import Driver, NodeKind
from repro.tree.routing_tree import RoutingTree

FORMAT_VERSION = 1


def tree_to_dict(tree: RoutingTree) -> Dict[str, Any]:
    """Serialize ``tree`` (including its driver) to plain dicts."""
    nodes = []
    for node_id in tree.preorder():
        node = tree.node(node_id)
        entry: Dict[str, Any] = {
            "id": node.node_id,
            "kind": node.kind.value,
            "name": node.name,
        }
        if node.position is not None:
            entry["position"] = list(node.position)
        if node.kind is NodeKind.SINK:
            entry["capacitance"] = node.capacitance
            entry["required_arrival"] = node.required_arrival
            if node.polarity != 1:
                entry["polarity"] = node.polarity
        if node.kind is NodeKind.INTERNAL:
            entry["buffer_position"] = node.is_buffer_position
            if node.allowed_buffers is not None:
                entry["allowed_buffers"] = sorted(node.allowed_buffers)
        if node_id != tree.root_id:
            edge = tree.edge_to(node_id)
            entry["edge"] = {
                "parent": edge.parent,
                "resistance": edge.resistance,
                "capacitance": edge.capacitance,
                "length": edge.length,
            }
        nodes.append(entry)

    data: Dict[str, Any] = {"format_version": FORMAT_VERSION, "nodes": nodes}
    if tree.driver is not None:
        data["driver"] = {
            "resistance": tree.driver.resistance,
            "intrinsic_delay": tree.driver.intrinsic_delay,
            "name": tree.driver.name,
        }
    return data


def tree_from_dict(data: Dict[str, Any]) -> RoutingTree:
    """Rebuild a tree from :func:`tree_to_dict` output.

    Node ids are re-assigned sequentially but the pre-order layout of
    the format guarantees the same topology and electrical data.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TreeError(f"unsupported tree format version: {version!r}")

    driver = None
    if "driver" in data:
        d = data["driver"]
        driver = Driver(
            resistance=d["resistance"],
            intrinsic_delay=d.get("intrinsic_delay", 0.0),
            name=d.get("name", "driver"),
        )

    nodes = data["nodes"]
    if not nodes or nodes[0]["kind"] != NodeKind.SOURCE.value:
        raise TreeError("first serialized node must be the source")

    tree = RoutingTree.with_source(driver=driver, name=nodes[0].get("name", "src"))
    id_map = {nodes[0]["id"]: tree.root_id}

    for entry in nodes[1:]:
        edge = entry.get("edge")
        if edge is None:
            raise TreeError(f"non-root node {entry.get('id')} lacks an edge")
        parent = id_map[edge["parent"]]
        position = tuple(entry["position"]) if "position" in entry else None
        kind = entry["kind"]
        if kind == NodeKind.SINK.value:
            new_id = tree.add_sink(
                parent,
                edge["resistance"],
                edge["capacitance"],
                capacitance=entry["capacitance"],
                required_arrival=entry["required_arrival"],
                name=entry.get("name", ""),
                length=edge.get("length", 0.0),
                position=position,
                polarity=entry.get("polarity", 1),
            )
        elif kind == NodeKind.INTERNAL.value:
            new_id = tree.add_internal(
                parent,
                edge["resistance"],
                edge["capacitance"],
                buffer_position=entry.get("buffer_position", False),
                allowed_buffers=entry.get("allowed_buffers"),
                name=entry.get("name", ""),
                length=edge.get("length", 0.0),
                position=position,
            )
        else:
            raise TreeError(f"unknown node kind {kind!r}")
        id_map[entry["id"]] = new_id

    tree.validate()
    return tree


def library_to_dict(library: BufferLibrary) -> Dict[str, Any]:
    """Serialize a buffer library."""
    return {
        "format_version": FORMAT_VERSION,
        "buffers": [
            {
                "name": b.name,
                "driving_resistance": b.driving_resistance,
                "input_capacitance": b.input_capacitance,
                "intrinsic_delay": b.intrinsic_delay,
                "cost": b.cost,
                "inverting": b.inverting,
                "max_load": b.max_load,
            }
            for b in library.buffers
        ],
    }


def library_from_dict(data: Dict[str, Any]) -> BufferLibrary:
    """Rebuild a buffer library from :func:`library_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TreeError(f"unsupported library format version: {version!r}")
    return BufferLibrary(
        BufferType(
            name=entry["name"],
            driving_resistance=entry["driving_resistance"],
            input_capacitance=entry["input_capacitance"],
            intrinsic_delay=entry["intrinsic_delay"],
            cost=entry.get("cost", 1.0),
            inverting=entry.get("inverting", False),
            max_load=entry.get("max_load"),
        )
        for entry in data["buffers"]
    )


def save_tree(tree: RoutingTree, path: Union[str, Path]) -> None:
    """Write ``tree`` as JSON to ``path``."""
    Path(path).write_text(json.dumps(tree_to_dict(tree), indent=2))


def load_tree(path: Union[str, Path]) -> RoutingTree:
    """Read a tree previously written by :func:`save_tree`."""
    return tree_from_dict(json.loads(Path(path).read_text()))
