"""Prim-based rectilinear Steiner-ish topology builder.

The recursive-bisection builder (:func:`repro.tree.builders.random_tree_net`)
yields balanced topologies; real routers produce greedier trees.  This
builder grows the tree Prim-style: sinks attach one at a time to the
closest point already in the tree, via an L-shaped (one-bend) route
whose bend becomes a Steiner vertex.  The result has the long trunks
and stubby branches typical of congestion-free maze routing, giving the
algorithms a structurally different workload than the bisection trees.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import TreeError
from repro.tree.builders import PAPER_SINK_CAP_RANGE, RatSpec, _resolve_rat
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.units import TSMC180_WIRE_CAP_PER_UM, TSMC180_WIRE_RES_PER_UM


def prim_steiner_net(
    num_sinks: int,
    seed: int,
    die_size: float = 10_000.0,
    sink_capacitance_range: Tuple[float, float] = PAPER_SINK_CAP_RANGE,
    required_arrival: RatSpec = 0.0,
    driver: Optional[Driver] = None,
    res_per_um: float = TSMC180_WIRE_RES_PER_UM,
    cap_per_um: float = TSMC180_WIRE_CAP_PER_UM,
) -> RoutingTree:
    """Grow a rectilinear Steiner-like net by nearest-point attachment.

    Pins are placed uniformly at random; the source sits at the die
    centre-left edge.  Each sink (in random order) connects to the
    nearest vertex already in the tree with an L route: first the
    horizontal leg to a bend vertex, then the vertical leg to the pin
    (degenerate legs are skipped).  Bend and attachment vertices are
    buffer positions.

    Args:
        num_sinks: Number of pins (>= 1).
        seed: RNG seed (topology and electrical data).
        die_size: Region side, micrometres.
        sink_capacitance_range: Uniform sink-load window.
        required_arrival: Scalar or (lo, hi) window, seconds.
        driver: Optional source driver.
        res_per_um / cap_per_um: Wire constants.
    """
    if num_sinks < 1:
        raise TreeError(f"num_sinks must be >= 1, got {num_sinks}")
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=driver)

    pins = [
        (rng.uniform(0.0, die_size), rng.uniform(0.0, die_size))
        for _ in range(num_sinks)
    ]
    # Vertices available as attachment points: node id -> position.
    attachable: Dict[int, Tuple[float, float]] = {
        tree.root_id: (0.0, die_size / 2.0)
    }

    def wire(length: float) -> Tuple[float, float]:
        return res_per_um * length, cap_per_um * length

    order = list(range(num_sinks))
    rng.shuffle(order)
    for pin_index in order:
        px, py = pins[pin_index]
        host_id, (hx, hy) = min(
            attachable.items(),
            key=lambda item: abs(item[1][0] - px) + abs(item[1][1] - py),
        )
        attach = host_id
        horizontal = abs(px - hx)
        vertical = abs(py - hy)
        if horizontal > 0.0 and vertical > 0.0:
            edge_r, edge_c = wire(horizontal)
            attach = tree.add_internal(
                attach, edge_r, edge_c, buffer_position=True,
                position=(px, hy), length=horizontal,
            )
            attachable[attach] = (px, hy)
            leg = vertical
        else:
            leg = horizontal + vertical  # one of them is zero
        edge_r, edge_c = wire(leg)
        sink = tree.add_sink(
            attach, edge_r, edge_c,
            capacitance=rng.uniform(*sink_capacitance_range),
            required_arrival=_resolve_rat(required_arrival, rng),
            name=f"s{pin_index}",
            position=(px, py),
            length=leg,
        )
        # Future pins may tap the new sink's *position* but not the sink
        # vertex itself (sinks are leaves); expose the bend instead.
        if attach != host_id:
            attachable[attach] = tree.node(attach).position

    tree.validate()
    return tree
