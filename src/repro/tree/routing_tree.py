"""The routing-tree container used by every algorithm in the library."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NodeNotFoundError, TreeError, TreeStructureError
from repro.tree.node import Driver, Node, NodeKind


@dataclass(frozen=True)
class Edge:
    """A wire from ``parent`` to ``child`` with lumped parasitics.

    Attributes:
        parent: Upstream node id.
        child: Downstream node id.
        resistance: Lumped wire resistance in ohms.
        capacitance: Lumped wire capacitance in farads.
        length: Optional physical length in micrometres (builders set it;
            algorithms never read it).
    """

    parent: int
    child: int
    resistance: float
    capacitance: float
    length: float = 0.0

    def __post_init__(self) -> None:
        if self.resistance < 0.0 or self.capacitance < 0.0:
            raise TreeError(
                f"edge {self.parent}->{self.child}: parasitics must be >= 0 "
                f"(R={self.resistance}, C={self.capacitance})"
            )


#: Lazily bound :func:`repro.core.schedule.invalidate_schedule` (the
#: import is deferred to break the module cycle, then cached here).
_invalidate_schedule = None


class RoutingTree:
    """A rooted RC routing tree (paper Section 2).

    The tree is built incrementally: create it with
    :meth:`RoutingTree.with_source`, then hang sinks and internal vertices
    off existing nodes with :meth:`add_sink` / :meth:`add_internal`.  Node
    ids are assigned sequentially by the tree; id 0 is always the source.

    The optional ``driver`` models the source gate; algorithms use it to
    turn the root candidate list into a single slack number.
    """

    def __init__(self, driver: Optional[Driver] = None) -> None:
        self._nodes: Dict[int, Node] = {}
        self._edges: Dict[int, Edge] = {}  # keyed by child id
        self._children: Dict[int, List[int]] = {}
        self._next_id = 0
        self._driver = driver

    @property
    def driver(self) -> Optional[Driver]:
        """The source driver (assignable; swapping it invalidates any
        cached compiled schedule, see :meth:`_mutated`)."""
        return self._driver

    @driver.setter
    def driver(self, driver: Optional[Driver]) -> None:
        self._driver = driver
        self._mutated()

    def _mutated(self) -> None:
        """Drop any compiled schedule cached against this tree.

        Every mutation funnels through here: a
        :class:`~repro.core.schedule.CompiledNet` embeds wire
        parasitics, sink payloads and the driver, so serving a cached
        schedule after an in-place edit would solve the pre-edit net.
        (``matches_tree`` re-checks sinks and the driver on lookup, but
        wire edits are invisible to it — eager invalidation closes that
        hole.)  Lazy import: :mod:`repro.core.schedule` imports this
        module.
        """
        global _invalidate_schedule
        if _invalidate_schedule is None:
            from repro.core.schedule import invalidate_schedule

            _invalidate_schedule = invalidate_schedule
        _invalidate_schedule(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def with_source(cls, driver: Optional[Driver] = None, name: str = "src") -> "RoutingTree":
        """Create a tree containing only the source vertex (id 0)."""
        tree = cls(driver=driver)
        tree._add_node(Node(node_id=0, kind=NodeKind.SOURCE, name=name))
        return tree

    def _add_node(self, node: Node) -> int:
        if node.node_id != self._next_id:
            raise TreeStructureError(
                f"internal error: expected node id {self._next_id}, got {node.node_id}"
            )
        self._nodes[node.node_id] = node
        self._children[node.node_id] = []
        self._next_id += 1
        return node.node_id

    def _attach(self, parent: int, edge_resistance: float, edge_capacitance: float,
                node: Node, length: float) -> int:
        if parent not in self._nodes:
            raise NodeNotFoundError(parent)
        if self._nodes[parent].is_sink:
            raise TreeStructureError(
                f"cannot attach node under sink {parent}: sinks are leaves"
            )
        # Build (and thereby validate) the edge *before* registering the
        # node: a rejected attach must leave the tree untouched — no
        # dangling vertex — which is what lets the incremental edit
        # surface promise "the net is left untouched" on failure.
        edge = Edge(
            parent=parent,
            child=node.node_id,
            resistance=edge_resistance,
            capacitance=edge_capacitance,
            length=length,
        )
        node_id = self._add_node(node)
        self._edges[node_id] = edge
        self._children[parent].append(node_id)
        self._mutated()
        return node_id

    def add_sink(
        self,
        parent: int,
        edge_resistance: float,
        edge_capacitance: float,
        capacitance: float,
        required_arrival: float,
        name: str = "",
        length: float = 0.0,
        position: Optional[Tuple[float, float]] = None,
        polarity: int = 1,
    ) -> int:
        """Attach a sink under ``parent``; returns the new node id.

        ``polarity`` is +1 (default) or -1 for sinks that need the
        inverted signal (see :mod:`repro.core.polarity`).
        """
        node = Node(
            node_id=self._next_id,
            kind=NodeKind.SINK,
            capacitance=capacitance,
            required_arrival=required_arrival,
            name=name or f"sink{self._next_id}",
            position=position,
            polarity=polarity,
        )
        return self._attach(parent, edge_resistance, edge_capacitance, node, length)

    def add_internal(
        self,
        parent: int,
        edge_resistance: float,
        edge_capacitance: float,
        buffer_position: bool = True,
        allowed_buffers: Optional[Iterable[str]] = None,
        name: str = "",
        length: float = 0.0,
        position: Optional[Tuple[float, float]] = None,
    ) -> int:
        """Attach an internal vertex under ``parent``; returns the new id.

        ``buffer_position=False`` makes a pure Steiner point.
        ``allowed_buffers`` restricts which buffer types may be inserted
        (the paper's ``f`` function); ``None`` allows the whole library.
        """
        allowed: Optional[FrozenSet[str]] = (
            frozenset(allowed_buffers) if allowed_buffers is not None else None
        )
        node = Node(
            node_id=self._next_id,
            kind=NodeKind.INTERNAL,
            is_buffer_position=buffer_position,
            allowed_buffers=allowed,
            name=name or f"v{self._next_id}",
            position=position,
        )
        return self._attach(parent, edge_resistance, edge_capacitance, node, length)

    # ------------------------------------------------------------------
    # In-place edits (the ECO surface; see repro.incremental.edits)
    # ------------------------------------------------------------------

    def set_sink(
        self,
        node_id: int,
        capacitance: Optional[float] = None,
        required_arrival: Optional[float] = None,
        polarity: Optional[int] = None,
    ) -> None:
        """Update a sink's electrical payload in place.

        Only the passed fields change.  The node object is rebuilt so
        :class:`~repro.tree.node.Node`'s validation re-runs (negative
        capacitance, bad polarity), and any cached compiled schedule is
        invalidated.

        Raises:
            TreeError: ``node_id`` is not a sink, or a value is invalid.
        """
        node = self.node(node_id)
        if not node.is_sink:
            raise TreeError(f"node {node_id} is not a sink")
        self._nodes[node_id] = replace(
            node,
            capacitance=(
                node.capacitance if capacitance is None else capacitance
            ),
            required_arrival=(
                node.required_arrival
                if required_arrival is None
                else required_arrival
            ),
            polarity=node.polarity if polarity is None else polarity,
        )
        self._mutated()

    def set_edge(
        self,
        child: int,
        resistance: Optional[float] = None,
        capacitance: Optional[float] = None,
        length: Optional[float] = None,
    ) -> None:
        """Re-parasitize the wire reaching ``child`` in place.

        Models the ECO moves "re-length this segment" and "re-route this
        segment through a different layer": the tree topology is
        untouched, only the lumped ``R``/``C`` (and optional physical
        length) of one existing edge change.

        Raises:
            TreeError: Negative parasitics (edge validation re-runs).
            NodeNotFoundError: ``child`` has no incoming edge.
        """
        edge = self.edge_to(child)
        self._edges[child] = Edge(
            parent=edge.parent,
            child=child,
            resistance=edge.resistance if resistance is None else resistance,
            capacitance=(
                edge.capacitance if capacitance is None else capacitance
            ),
            length=edge.length if length is None else length,
        )
        self._mutated()

    def split_edge(
        self,
        child: int,
        fraction: float = 0.5,
        buffer_position: bool = True,
        allowed_buffers: Optional[Iterable[str]] = None,
        name: str = "",
    ) -> int:
        """Insert an internal vertex in the middle of the edge to ``child``.

        The classic "add a buffer position" ECO: the edge splits at
        ``fraction`` of its electrical extent — the upstream half gets
        ``R * fraction`` / ``C * fraction``, the downstream half the
        exact remainder (``R - R * fraction``), so total parasitics are
        conserved bit-for-bit.  Returns the new vertex's id.

        Raises:
            TreeError: ``fraction`` outside ``(0, 1)``.
            NodeNotFoundError: ``child`` has no incoming edge.
        """
        if not 0.0 < fraction < 1.0:
            raise TreeError(
                f"split fraction must be inside (0, 1), got {fraction}"
            )
        edge = self.edge_to(child)
        r_up = edge.resistance * fraction
        c_up = edge.capacitance * fraction
        len_up = edge.length * fraction
        allowed: Optional[FrozenSet[str]] = (
            frozenset(allowed_buffers) if allowed_buffers is not None else None
        )
        new_id = self._add_node(Node(
            node_id=self._next_id,
            kind=NodeKind.INTERNAL,
            is_buffer_position=buffer_position,
            allowed_buffers=allowed,
            name=name or f"v{self._next_id}",
        ))
        self._children[new_id] = [child]
        self._edges[new_id] = Edge(
            parent=edge.parent, child=new_id,
            resistance=r_up, capacitance=c_up, length=len_up,
        )
        self._edges[child] = Edge(
            parent=new_id, child=child,
            resistance=edge.resistance - r_up,
            capacitance=edge.capacitance - c_up,
            length=edge.length - len_up,
        )
        # The new vertex takes child's slot in the parent's child list,
        # preserving sibling order (and therefore merge order).
        siblings = self._children[edge.parent]
        siblings[siblings.index(child)] = new_id
        self._mutated()
        return new_id

    def remove_subtree(self, node_id: int) -> List[int]:
        """Delete ``node_id`` and everything under it; returns the ids.

        The parent must keep at least one other child, so the remaining
        tree still satisfies "every leaf is a sink" without cascading
        deletions.  Removed ids are never reused (``_next_id`` only
        grows).

        Raises:
            TreeError: Removing the root, or the parent would become a
                childless internal vertex.
        """
        if node_id == self.root_id:
            raise TreeError("cannot remove the source vertex")
        parent = self.edge_to(node_id).parent
        if len(self._children[parent]) < 2:
            raise TreeError(
                f"removing node {node_id} would leave vertex {parent} "
                "childless; remove a larger subtree instead"
            )
        removed: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            removed.append(current)
            stack.extend(self._children.pop(current))
            del self._nodes[current]
            del self._edges[current]
        self._children[parent].remove(node_id)
        self._mutated()
        return removed

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def root_id(self) -> int:
        """The source vertex id (always 0)."""
        return 0

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_sinks(self) -> int:
        """The paper's ``m``."""
        return sum(1 for node in self._nodes.values() if node.is_sink)

    @property
    def num_buffer_positions(self) -> int:
        """The paper's ``n``."""
        return sum(1 for node in self._nodes.values() if node.is_buffer_position)

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def edge_to(self, child: int) -> Edge:
        """The wire from ``child``'s parent down to ``child``."""
        try:
            return self._edges[child]
        except KeyError:
            raise NodeNotFoundError(child) from None

    def parent_of(self, node_id: int) -> Optional[int]:
        """Parent id, or ``None`` for the root."""
        if node_id == self.root_id:
            if node_id not in self._nodes:
                raise NodeNotFoundError(node_id)
            return None
        return self.edge_to(node_id).parent

    def children_of(self, node_id: int) -> Sequence[int]:
        try:
            return tuple(self._children[node_id])
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def nodes(self) -> Iterable[Node]:
        """All nodes in id order."""
        return (self._nodes[i] for i in sorted(self._nodes))

    def sinks(self) -> List[Node]:
        return [node for node in self.nodes() if node.is_sink]

    def buffer_positions(self) -> List[Node]:
        return [node for node in self.nodes() if node.is_buffer_position]

    def total_wire_capacitance(self) -> float:
        return sum(edge.capacitance for edge in self._edges.values())

    def total_wire_length(self) -> float:
        return sum(edge.length for edge in self._edges.values())

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def postorder(self) -> List[int]:
        """Node ids in post-order (children before parents), iteratively.

        Nets can be tens of thousands of vertices deep (a segmented 2-pin
        line is a path), so recursion is avoided throughout the library.
        """
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(self.root_id, False)]
        while stack:
            node_id, expanded = stack.pop()
            if expanded:
                order.append(node_id)
                continue
            stack.append((node_id, True))
            for child in reversed(self._children[node_id]):
                stack.append((child, False))
        return order

    def preorder(self) -> List[int]:
        """Node ids in pre-order (parents before children)."""
        order: List[int] = []
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            order.append(node_id)
            for child in reversed(self._children[node_id]):
                stack.append(child)
        return order

    def depth(self) -> int:
        """Maximum number of edges from the root to any leaf."""
        depths = {self.root_id: 0}
        best = 0
        for node_id in self.preorder():
            if node_id == self.root_id:
                continue
            depths[node_id] = depths[self.edge_to(node_id).parent] + 1
            best = max(best, depths[node_id])
        return best

    def path_to_root(self, node_id: int) -> List[int]:
        """Node ids from ``node_id`` up to and including the root."""
        path = [node_id]
        while path[-1] != self.root_id:
            path.append(self.edge_to(path[-1]).parent)
        return path

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TreeStructureError`.

        * node 0 exists, is the unique source and the unique root;
        * every non-root node has exactly one incoming edge;
        * every leaf is a sink and every sink is a leaf;
        * every node is reachable from the root.
        """
        if self.root_id not in self._nodes:
            raise TreeStructureError("tree has no source (node 0)")
        sources = [n for n in self._nodes.values() if n.is_source]
        if len(sources) != 1 or sources[0].node_id != self.root_id:
            raise TreeStructureError("exactly one source at node id 0 is required")
        for node_id in self._nodes:
            if node_id != self.root_id and node_id not in self._edges:
                raise TreeStructureError(f"node {node_id} has no incoming edge")
        reachable = set(self.preorder())
        if reachable != set(self._nodes):
            missing = sorted(set(self._nodes) - reachable)
            raise TreeStructureError(f"nodes unreachable from root: {missing}")
        for node in self._nodes.values():
            is_leaf = not self._children[node.node_id]
            if is_leaf and not node.is_sink:
                raise TreeStructureError(
                    f"leaf node {node.node_id} ({node.kind.value}) is not a sink"
                )
            if node.is_sink and not is_leaf:
                raise TreeStructureError(f"sink {node.node_id} has children")
        if self.num_sinks == 0:
            raise TreeStructureError("tree has no sinks")

    def __repr__(self) -> str:
        return (
            f"RoutingTree(nodes={self.num_nodes}, sinks={self.num_sinks}, "
            f"buffer_positions={self.num_buffer_positions})"
        )
