"""Vertex and driver models for routing trees."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.errors import TreeError


class NodeKind(enum.Enum):
    """The role of a vertex in the routing tree (paper Section 2)."""

    #: The net's driver pin; always the root and unique.
    SOURCE = "source"
    #: A load pin with sink capacitance and required arrival time.
    SINK = "sink"
    #: An internal vertex: a candidate buffer position or a Steiner point.
    INTERNAL = "internal"


@dataclass(frozen=True)
class Driver:
    """The source driver under the same linear delay model as buffers.

    The slack reported by every algorithm is measured at the *output* of
    this driver: ``slack = max over candidates (Q - K_d - R_d * C)``.

    Attributes:
        resistance: Driver output resistance in ohms.
        intrinsic_delay: Driver intrinsic delay in seconds.
        name: Optional label for reports.
    """

    resistance: float
    intrinsic_delay: float = 0.0
    name: str = "driver"

    def __post_init__(self) -> None:
        if self.resistance < 0.0:
            raise TreeError(f"driver resistance must be >= 0, got {self.resistance}")
        if self.intrinsic_delay < 0.0:
            raise TreeError(
                f"driver intrinsic delay must be >= 0, got {self.intrinsic_delay}"
            )

    def delay(self, downstream_capacitance: float) -> float:
        """Driver delay when loaded with ``downstream_capacitance``."""
        return self.intrinsic_delay + self.resistance * downstream_capacitance


@dataclass
class Node:
    """A vertex of the routing tree.

    Attributes:
        node_id: Integer id, unique within a tree and assigned by the tree.
        kind: Source, sink or internal.
        capacitance: Sink load capacitance in farads (sinks only).
        required_arrival: Required arrival time in seconds (sinks only).
        is_buffer_position: Whether a buffer may be inserted here
            (internal vertices only; Steiner branch points may be
            non-insertable).
        allowed_buffers: The paper's function ``f``: the set of buffer
            type *names* permitted at this vertex, or ``None`` to allow
            the whole library.
        position: Optional (x, y) placement in micrometres, used by
            builders and examples; the algorithms never read it.
        name: Optional human-readable label.
        polarity: For sinks: the signal polarity the pin requires,
            ``+1`` (default, same as the source) or ``-1`` (inverted).
            Only the polarity-aware extension
            (:mod:`repro.core.polarity`) reads it; the DATE-2005
            algorithms assume every sink is positive.
    """

    node_id: int
    kind: NodeKind
    capacitance: float = 0.0
    required_arrival: float = 0.0
    is_buffer_position: bool = False
    allowed_buffers: Optional[FrozenSet[str]] = None
    position: Optional[Tuple[float, float]] = None
    name: str = ""
    polarity: int = 1

    def __post_init__(self) -> None:
        if self.kind is NodeKind.SINK:
            if self.capacitance < 0.0:
                raise TreeError(
                    f"sink {self.node_id}: capacitance must be >= 0, "
                    f"got {self.capacitance}"
                )
            if self.is_buffer_position:
                raise TreeError(f"sink {self.node_id} cannot be a buffer position")
        elif self.kind is NodeKind.SOURCE:
            if self.is_buffer_position:
                raise TreeError("the source cannot be a buffer position")
        if self.allowed_buffers is not None and not self.is_buffer_position:
            raise TreeError(
                f"node {self.node_id}: allowed_buffers set on a "
                "non-buffer-position vertex"
            )
        if self.polarity not in (1, -1):
            raise TreeError(
                f"node {self.node_id}: polarity must be +1 or -1, "
                f"got {self.polarity}"
            )
        if self.polarity == -1 and self.kind is not NodeKind.SINK:
            raise TreeError(
                f"node {self.node_id}: only sinks carry a polarity requirement"
            )

    @property
    def is_sink(self) -> bool:
        return self.kind is NodeKind.SINK

    @property
    def is_source(self) -> bool:
        return self.kind is NodeKind.SOURCE

    def permits(self, buffer_name: str) -> bool:
        """Whether buffer type ``buffer_name`` may be inserted here."""
        if not self.is_buffer_position:
            return False
        return self.allowed_buffers is None or buffer_name in self.allowed_buffers
