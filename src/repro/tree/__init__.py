"""Routing trees: data structure, builders, wire segmenting, serialization.

A :class:`~repro.tree.routing_tree.RoutingTree` is the net model from the
paper's Section 2: a rooted tree ``T = (V, E)`` whose root is the source,
whose leaves are sinks (each with a load capacitance and a required
arrival time), and whose internal vertices may be candidate buffer
positions.  Each edge carries lumped wire resistance and capacitance.
"""

from repro.tree.node import Node, NodeKind, Driver
from repro.tree.routing_tree import RoutingTree, Edge
from repro.tree.builders import (
    two_pin_net,
    caterpillar_net,
    balanced_tree_net,
    random_tree_net,
    star_net,
)
from repro.tree.clock import h_tree_net
from repro.tree.steiner import prim_steiner_net
from repro.tree.segmenting import segment_tree, max_segment_length_for_positions
from repro.tree.io import tree_to_dict, tree_from_dict, save_tree, load_tree
from repro.tree.blockages import Blockage, apply_blockages, blockage_coverage
from repro.tree.spef import read_spef, write_spef

__all__ = [
    "Node",
    "NodeKind",
    "Driver",
    "RoutingTree",
    "Edge",
    "two_pin_net",
    "caterpillar_net",
    "balanced_tree_net",
    "random_tree_net",
    "star_net",
    "h_tree_net",
    "prim_steiner_net",
    "segment_tree",
    "max_segment_length_for_positions",
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
    "Blockage",
    "apply_blockages",
    "blockage_coverage",
    "read_spef",
    "write_spef",
]
