"""Wire segmenting (Alpert & Devgan, DAC 1997).

Buffer-insertion quality depends on how many candidate positions the
wires offer: van Ginneken-family algorithms only consider the given
positions.  Alpert and Devgan showed that splitting each wire into
segments bounded by a maximum length recovers nearly all of the
continuous-insertion quality.  The paper's experiments use exactly this
mechanism to scale ``n`` (e.g. the m = 1944 net is segmented to
n = 1943 ... 66k positions for Figure 4).

:func:`segment_tree` rebuilds a tree with every edge longer than
``max_segment_length`` split into equal pieces whose internal endpoints
are candidate buffer positions.  Parasitics are distributed
proportionally, so the total wire R and C (and therefore the unbuffered
Elmore delay) are preserved.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.errors import TreeError
from repro.tree.node import NodeKind
from repro.tree.routing_tree import RoutingTree


def max_segment_length_for_positions(tree: RoutingTree, target_positions: int) -> float:
    """A segment length that yields roughly ``target_positions`` positions.

    Splitting every edge into pieces of length ``L`` creates about
    ``total_wirelength / L`` new vertices, so ``L = wirelength / target``
    is the natural choice.  The estimate ignores rounding on individual
    edges; callers that need an exact ``n`` should iterate (the
    experiment harness does).

    Args:
        tree: The unsegmented net; edges must carry ``length`` metadata.
        target_positions: Desired number of buffer positions (> 0).
    """
    if target_positions <= 0:
        raise TreeError(f"target_positions must be > 0, got {target_positions}")
    total_length = tree.total_wire_length()
    if total_length <= 0.0:
        raise TreeError("tree has no wire length metadata; cannot segment")
    existing = tree.num_buffer_positions
    wanted_new = max(target_positions - existing, 1)
    return total_length / wanted_new


def segment_tree(
    tree: RoutingTree,
    max_segment_length: float,
    buffer_positions: bool = True,
) -> RoutingTree:
    """Return a copy of ``tree`` with long edges split into segments.

    Each edge of length ``L > max_segment_length`` becomes
    ``ceil(L / max_segment_length)`` equal segments joined by new
    internal vertices (buffer positions unless ``buffer_positions`` is
    false).  Edge resistance and capacitance are divided evenly among the
    segments.  Edges without length metadata (length 0) are never split.

    The returned tree is a fresh object; node ids are re-assigned but
    node names, sink electrical data and the driver are preserved.
    """
    if max_segment_length <= 0.0:
        raise TreeError(
            f"max_segment_length must be > 0, got {max_segment_length}"
        )

    out = RoutingTree.with_source(
        driver=tree.driver, name=tree.node(tree.root_id).name
    )
    id_map: Dict[int, int] = {tree.root_id: out.root_id}

    for node_id in tree.preorder():
        if node_id == tree.root_id:
            continue
        node = tree.node(node_id)
        edge = tree.edge_to(node_id)
        parent_new = id_map[edge.parent]

        pieces = 1
        if edge.length > max_segment_length:
            pieces = math.ceil(edge.length / max_segment_length)
        seg_r = edge.resistance / pieces
        seg_c = edge.capacitance / pieces
        seg_len = edge.length / pieces

        # Interpolate placement for the new intermediate vertices so
        # geometric post-processing (e.g. blockages) still applies.
        # Straight-line interpolation approximates the actual route.
        parent_pos = tree.node(edge.parent).position
        child_pos = node.position
        interpolate = parent_pos is not None and child_pos is not None

        attach = parent_new
        for piece in range(pieces - 1):
            position = None
            if interpolate:
                t = (piece + 1) / pieces
                position = (
                    parent_pos[0] + t * (child_pos[0] - parent_pos[0]),
                    parent_pos[1] + t * (child_pos[1] - parent_pos[1]),
                )
            attach = out.add_internal(
                attach,
                seg_r,
                seg_c,
                buffer_position=buffer_positions,
                length=seg_len,
                position=position,
            )

        if node.kind is NodeKind.SINK:
            new_id = out.add_sink(
                attach,
                seg_r,
                seg_c,
                capacitance=node.capacitance,
                required_arrival=node.required_arrival,
                name=node.name,
                length=seg_len,
                position=node.position,
                polarity=node.polarity,
            )
        else:
            new_id = out.add_internal(
                attach,
                seg_r,
                seg_c,
                buffer_position=node.is_buffer_position,
                allowed_buffers=node.allowed_buffers,
                name=node.name,
                length=seg_len,
                position=node.position,
            )
        id_map[node_id] = new_id

    out.validate()
    return out


def predicted_position_count(
    edge_lengths: list, existing_positions: int, max_segment_length: float
) -> int:
    """The buffer-position count :func:`segment_tree` would produce.

    Splitting an edge of length ``L > max_segment_length`` into
    ``ceil(L / max_segment_length)`` pieces creates ``pieces - 1`` new
    internal vertices, each a buffer position — the exact arithmetic
    :func:`segment_tree` applies, so the prediction matches the built
    tree vertex for vertex.
    """
    new = 0
    for length in edge_lengths:
        if length > max_segment_length:
            new += math.ceil(length / max_segment_length) - 1
    return existing_positions + new


def segment_to_position_count(
    tree: RoutingTree,
    target_positions: int,
    tolerance: float = 0.05,
    max_iterations: int = 60,
) -> RoutingTree:
    """Segment ``tree`` until it has approximately ``target_positions``.

    Binary-searches the segment length against
    :func:`predicted_position_count` — pure arithmetic over the edge
    lengths collected once, so the search costs O(E) per iteration —
    and builds the tree a single time at the best length found.  (The
    previous implementation rebuilt the full tree every iteration,
    which at 10^6 positions meant thirty million-node constructions
    per net.)  Used by the experiment harness to hit the paper's ``n``
    values.
    """
    if target_positions <= tree.num_buffer_positions:
        return segment_tree(tree, float("inf"))

    edge_lengths = [
        tree.edge_to(node_id).length
        for node_id in tree.preorder()
        if node_id != tree.root_id
    ]
    existing = tree.num_buffer_positions

    length = max_segment_length_for_positions(tree, target_positions)
    lo: Optional[float] = None
    hi: Optional[float] = None
    best_length = length
    best_err = float("inf")
    for _ in range(max_iterations):
        count = predicted_position_count(edge_lengths, existing, length)
        err = abs(count - target_positions) / target_positions
        if err < best_err:
            best_length, best_err = length, err
        if err <= tolerance:
            break
        if count < target_positions:
            hi = length
            length = length / 2 if lo is None else (lo + length) / 2
        else:
            lo = length
            length = length * 2 if hi is None else (length + hi) / 2
    return segment_tree(tree, best_length)
