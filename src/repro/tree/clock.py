"""H-tree clock-distribution topology builder.

The H-tree is the canonical symmetric clock network: each level draws an
"H" whose four corners host the next level, giving ``4**levels`` leaf
taps with exactly equal source-to-leaf wirelength.  Buffered H-trees are
a classic consumer of buffer-insertion algorithms (every branch point
and segment midpoint is a natural buffer position), and symmetry gives
the tests a strong invariant: every sink's delay must come out equal.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TreeError
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.units import TSMC180_WIRE_CAP_PER_UM, TSMC180_WIRE_RES_PER_UM, fF


def h_tree_net(
    levels: int,
    span: float = 8000.0,
    sink_capacitance: float = fF(10.0),
    required_arrival: float = 0.0,
    driver: Optional[Driver] = None,
    res_per_um: float = TSMC180_WIRE_RES_PER_UM,
    cap_per_um: float = TSMC180_WIRE_CAP_PER_UM,
) -> RoutingTree:
    """A ``levels``-deep H-tree with ``4**levels`` identical sinks.

    The source sits at the die centre.  Level ``i`` draws a horizontal
    bar of length ``span / 2**i`` and two vertical half-bars; bar
    midpoints and corners are insertable internal vertices.

    Args:
        levels: H recursion depth (>= 1); 1 gives 4 sinks.
        span: Width of the top-level H in micrometres.
        sink_capacitance: Load of each leaf tap.
        required_arrival: Common required arrival time.
        driver: Optional source driver.
        res_per_um / cap_per_um: Wire constants.
    """
    if levels < 1:
        raise TreeError(f"levels must be >= 1, got {levels}")
    if span <= 0.0:
        raise TreeError(f"span must be positive, got {span}")

    tree = RoutingTree.with_source(driver=driver)

    def wire(length: float):
        return res_per_um * length, cap_per_um * length

    # Work queue: (parent node id, centre position, half-width, level).
    stack = [(tree.root_id, (0.0, 0.0), span / 2.0, 1)]
    while stack:
        parent, (cx, cy), half, level = stack.pop()
        edge_r, edge_c = wire(half)
        is_leaf_level = level == levels
        for dx in (-half, half):
            # Horizontal arm from centre to the H corner column.
            arm = tree.add_internal(
                parent, edge_r, edge_c, buffer_position=True,
                position=(cx + dx, cy), length=half,
            )
            vert_r, vert_c = wire(half / 2.0)
            for dy in (-half / 2.0, half / 2.0):
                corner = (cx + dx, cy + dy)
                if is_leaf_level:
                    tree.add_sink(
                        arm, vert_r, vert_c,
                        capacitance=sink_capacitance,
                        required_arrival=required_arrival,
                        position=corner, length=half / 2.0,
                    )
                else:
                    child = tree.add_internal(
                        arm, vert_r, vert_c, buffer_position=True,
                        position=corner, length=half / 2.0,
                    )
                    stack.append((child, corner, half / 4.0, level + 1))

    tree.validate()
    return tree
