"""Buffer blockages: geometric restrictions on buffer locations.

The paper's reference [15] (Zhou, Wong, Liu & Aziz) studies buffer
insertion "with restrictions on buffer locations": macros, IP blocks
and memory arrays are routable *over* but not *through* — wires may
cross them, buffers may not land on them.  In the van Ginneken model
this only changes which internal vertices are insertable, so the
algorithms need no modification; this module provides the geometry
layer that applies rectangular blockages to a placed tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import TreeError
from repro.tree.node import NodeKind
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class Blockage:
    """An axis-aligned rectangle where buffers may not be placed.

    Attributes:
        x_min, y_min, x_max, y_max: Corners in micrometres (inclusive).
        name: Optional label for reports.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise TreeError(
                f"blockage {self.name or '(unnamed)'}: max corner must not "
                "be below min corner"
            )

    def contains(self, point: Tuple[float, float]) -> bool:
        """Whether ``point`` lies inside (or on the edge of) the rect."""
        x, y = point
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    @property
    def area(self) -> float:
        return (self.x_max - self.x_min) * (self.y_max - self.y_min)


def apply_blockages(
    tree: RoutingTree, blockages: Iterable[Blockage]
) -> Tuple[RoutingTree, int]:
    """A copy of ``tree`` with buffer positions inside blockages removed.

    Vertices without placement metadata are conservatively kept (no
    geometry, no restriction).  Sinks and pure Steiner points are
    unaffected; the tree topology and parasitics are unchanged, so the
    unbuffered timing is identical.

    Returns:
        ``(restricted_tree, num_positions_removed)``.
    """
    rects: List[Blockage] = list(blockages)

    out = RoutingTree.with_source(
        driver=tree.driver, name=tree.node(tree.root_id).name
    )
    id_map = {tree.root_id: out.root_id}
    removed = 0
    for node_id in tree.preorder():
        if node_id == tree.root_id:
            continue
        node = tree.node(node_id)
        edge = tree.edge_to(node_id)
        parent_new = id_map[edge.parent]
        if node.kind is NodeKind.SINK:
            new_id = out.add_sink(
                parent_new, edge.resistance, edge.capacitance,
                capacitance=node.capacitance,
                required_arrival=node.required_arrival,
                name=node.name, length=edge.length,
                position=node.position, polarity=node.polarity,
            )
        else:
            insertable = node.is_buffer_position
            if (
                insertable
                and node.position is not None
                and any(rect.contains(node.position) for rect in rects)
            ):
                insertable = False
                removed += 1
            new_id = out.add_internal(
                parent_new, edge.resistance, edge.capacitance,
                buffer_position=insertable,
                allowed_buffers=node.allowed_buffers if insertable else None,
                name=node.name, length=edge.length, position=node.position,
            )
        id_map[node_id] = new_id
    out.validate()
    return out, removed


def blockage_coverage(tree: RoutingTree, blockages: Iterable[Blockage]) -> float:
    """Fraction of placed buffer positions falling inside blockages.

    A quick workload statistic: how constrained an instance is.
    Positions without placement metadata are ignored.
    """
    rects = list(blockages)
    placed = [
        node for node in tree.buffer_positions() if node.position is not None
    ]
    if not placed:
        return 0.0
    blocked = sum(
        1 for node in placed
        if any(rect.contains(node.position) for rect in rects)
    )
    return blocked / len(placed)
