"""Net topology builders.

Every builder returns a validated :class:`~repro.tree.routing_tree.RoutingTree`
whose edge parasitics come from per-micrometre wire constants (defaults:
the TSMC 180 nm values quoted in the paper, 0.076 ohm/um and 0.118 fF/um).

Buffer positions are created in two ways:

* builders mark internal vertices (Steiner points, spine taps) as
  insertable, and
* :func:`repro.tree.segmenting.segment_tree` splits long wires into
  segments whose endpoints are insertable — this is how the paper's
  experiments scale ``n`` independently of the sink count ``m``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import TreeError
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.units import (
    TSMC180_WIRE_CAP_PER_UM,
    TSMC180_WIRE_RES_PER_UM,
    fF,
    ps,
)

#: Sink capacitance range quoted in Section 4 of the paper (2-41 fF).
PAPER_SINK_CAP_RANGE = (fF(2.0), fF(41.0))

RatSpec = Union[float, Tuple[float, float]]


def _resolve_rat(rat: RatSpec, rng: random.Random) -> float:
    if isinstance(rat, tuple):
        lo, hi = rat
        return rng.uniform(lo, hi)
    return float(rat)


def _wire(length: float, res_per_um: float, cap_per_um: float) -> Tuple[float, float]:
    return res_per_um * length, cap_per_um * length


def two_pin_net(
    length: float,
    sink_capacitance: float = fF(10.0),
    required_arrival: float = 0.0,
    driver: Optional[Driver] = None,
    num_segments: int = 1,
    res_per_um: float = TSMC180_WIRE_RES_PER_UM,
    cap_per_um: float = TSMC180_WIRE_CAP_PER_UM,
) -> RoutingTree:
    """A single source-to-sink line of ``length`` micrometres.

    The line is divided into ``num_segments`` equal wire segments whose
    internal endpoints are candidate buffer positions, so the net has
    ``num_segments - 1`` buffer positions.

    Args:
        length: Total line length in micrometres.
        sink_capacitance: Load at the far end, farads.
        required_arrival: Sink required arrival time, seconds.
        driver: Optional source driver.
        num_segments: Number of equal wire segments (>= 1).
        res_per_um: Wire resistance per micrometre.
        cap_per_um: Wire capacitance per micrometre.
    """
    if length <= 0.0:
        raise TreeError(f"line length must be positive, got {length}")
    if num_segments < 1:
        raise TreeError(f"num_segments must be >= 1, got {num_segments}")

    tree = RoutingTree.with_source(driver=driver)
    seg_len = length / num_segments
    seg_r, seg_c = _wire(seg_len, res_per_um, cap_per_um)
    parent = tree.root_id
    for i in range(num_segments - 1):
        parent = tree.add_internal(
            parent,
            seg_r,
            seg_c,
            buffer_position=True,
            length=seg_len,
            position=((i + 1) * seg_len, 0.0),
        )
    tree.add_sink(
        parent,
        seg_r,
        seg_c,
        capacitance=sink_capacitance,
        required_arrival=required_arrival,
        length=seg_len,
        position=(length, 0.0),
    )
    tree.validate()
    return tree


def star_net(
    num_sinks: int,
    arm_length: float,
    sink_capacitance: float = fF(10.0),
    required_arrival: RatSpec = 0.0,
    driver: Optional[Driver] = None,
    seed: int = 0,
    res_per_um: float = TSMC180_WIRE_RES_PER_UM,
    cap_per_um: float = TSMC180_WIRE_CAP_PER_UM,
) -> RoutingTree:
    """``num_sinks`` sinks, each on its own arm straight from the source."""
    if num_sinks < 1:
        raise TreeError(f"num_sinks must be >= 1, got {num_sinks}")
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=driver)
    arm_r, arm_c = _wire(arm_length, res_per_um, cap_per_um)
    for i in range(num_sinks):
        tree.add_sink(
            tree.root_id,
            arm_r,
            arm_c,
            capacitance=sink_capacitance,
            required_arrival=_resolve_rat(required_arrival, rng),
            name=f"s{i}",
            length=arm_length,
        )
    tree.validate()
    return tree


def caterpillar_net(
    num_sinks: int,
    spine_segment: float = 200.0,
    rib_length: float = 50.0,
    sink_capacitance: RatSpec = fF(10.0),
    required_arrival: RatSpec = 0.0,
    driver: Optional[Driver] = None,
    seed: int = 0,
    res_per_um: float = TSMC180_WIRE_RES_PER_UM,
    cap_per_um: float = TSMC180_WIRE_CAP_PER_UM,
) -> RoutingTree:
    """A spine of buffer positions with one sink rib per spine vertex.

    This is the canonical "bus tap" topology: a long horizontal trunk
    where each trunk vertex both continues the trunk and feeds a sink.
    """
    if num_sinks < 1:
        raise TreeError(f"num_sinks must be >= 1, got {num_sinks}")
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=driver)
    spine_r, spine_c = _wire(spine_segment, res_per_um, cap_per_um)
    rib_r, rib_c = _wire(rib_length, res_per_um, cap_per_um)

    spine = tree.root_id
    for i in range(num_sinks):
        spine = tree.add_internal(
            spine,
            spine_r,
            spine_c,
            buffer_position=True,
            name=f"tap{i}",
            length=spine_segment,
            position=((i + 1) * spine_segment, 0.0),
        )
        if i == num_sinks - 1:
            # The last tap would otherwise leave the spine tip a non-sink
            # leaf; terminate the spine with the final sink instead.
            tree.add_sink(
                spine,
                rib_r,
                rib_c,
                capacitance=_resolve_rat(sink_capacitance, rng),
                required_arrival=_resolve_rat(required_arrival, rng),
                name=f"s{i}",
                length=rib_length,
            )
        else:
            tree.add_sink(
                spine,
                rib_r,
                rib_c,
                capacitance=_resolve_rat(sink_capacitance, rng),
                required_arrival=_resolve_rat(required_arrival, rng),
                name=f"s{i}",
                length=rib_length,
                position=((i + 1) * spine_segment, -rib_length),
            )
    tree.validate()
    return tree


def balanced_tree_net(
    depth: int,
    branching: int = 2,
    edge_length: float = 200.0,
    sink_capacitance: RatSpec = fF(10.0),
    required_arrival: RatSpec = 0.0,
    driver: Optional[Driver] = None,
    seed: int = 0,
    res_per_um: float = TSMC180_WIRE_RES_PER_UM,
    cap_per_um: float = TSMC180_WIRE_CAP_PER_UM,
) -> RoutingTree:
    """A perfectly balanced tree with ``branching ** depth`` sinks.

    Internal vertices are buffer positions, mimicking a clock-tree-like
    symmetric net.  ``depth`` counts internal levels; ``depth=0`` is a
    single source-to-sink wire.
    """
    if depth < 0:
        raise TreeError(f"depth must be >= 0, got {depth}")
    if branching < 1:
        raise TreeError(f"branching must be >= 1, got {branching}")
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=driver)
    edge_r, edge_c = _wire(edge_length, res_per_um, cap_per_um)

    frontier = [tree.root_id]
    for _ in range(depth):
        next_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                next_frontier.append(
                    tree.add_internal(
                        parent,
                        edge_r,
                        edge_c,
                        buffer_position=True,
                        length=edge_length,
                    )
                )
        frontier = next_frontier
    for parent in frontier:
        tree.add_sink(
            parent,
            edge_r,
            edge_c,
            capacitance=_resolve_rat(sink_capacitance, rng),
            required_arrival=_resolve_rat(required_arrival, rng),
            length=edge_length,
        )
    tree.validate()
    return tree


def random_tree_net(
    num_sinks: int,
    seed: int,
    die_size: float = 10_000.0,
    sink_capacitance_range: Tuple[float, float] = PAPER_SINK_CAP_RANGE,
    required_arrival: RatSpec = 0.0,
    driver: Optional[Driver] = None,
    steiner_buffer_positions: bool = True,
    res_per_um: float = TSMC180_WIRE_RES_PER_UM,
    cap_per_um: float = TSMC180_WIRE_CAP_PER_UM,
) -> RoutingTree:
    """A random multi-pin net resembling the paper's industrial cases.

    ``num_sinks`` pins are placed uniformly in a ``die_size`` x
    ``die_size`` micrometre region and connected by a topology built with
    recursive bisection (alternating x/y median splits), which yields the
    balanced Steiner-ish trees typical of timing-driven routers.  Edge
    lengths are Manhattan distances; parasitics follow the per-um wire
    constants.  Sink capacitances are drawn uniformly from
    ``sink_capacitance_range`` (paper: 2-41 fF).

    The source sits at the region's lower-left corner.  Steiner vertices
    are buffer positions when ``steiner_buffer_positions`` is true; use
    :func:`repro.tree.segmenting.segment_tree` afterwards to reach a
    target ``n``.
    """
    if num_sinks < 1:
        raise TreeError(f"num_sinks must be >= 1, got {num_sinks}")
    rng = random.Random(seed)
    points = [
        (rng.uniform(0.0, die_size), rng.uniform(0.0, die_size))
        for _ in range(num_sinks)
    ]
    caps = [rng.uniform(*sink_capacitance_range) for _ in range(num_sinks)]
    rats = [_resolve_rat(required_arrival, rng) for _ in range(num_sinks)]

    tree = RoutingTree.with_source(driver=driver)

    def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def centroid(indices: Sequence[int]) -> Tuple[float, float]:
        xs = sum(points[i][0] for i in indices) / len(indices)
        ys = sum(points[i][1] for i in indices) / len(indices)
        return xs, ys

    # Iterative recursive-bisection topology construction.  Each work item
    # is (parent_node_id, parent_position, sink_indices, split_axis).
    stack: List[Tuple[int, Tuple[float, float], List[int], int]] = [
        (tree.root_id, (0.0, 0.0), list(range(num_sinks)), 0)
    ]
    while stack:
        parent_id, parent_pos, indices, axis = stack.pop()
        if len(indices) == 1:
            i = indices[0]
            length = manhattan(parent_pos, points[i])
            edge_r, edge_c = _wire(length, res_per_um, cap_per_um)
            tree.add_sink(
                parent_id,
                edge_r,
                edge_c,
                capacitance=caps[i],
                required_arrival=rats[i],
                name=f"s{i}",
                length=length,
                position=points[i],
            )
            continue
        here = centroid(indices)
        length = manhattan(parent_pos, here)
        edge_r, edge_c = _wire(length, res_per_um, cap_per_um)
        steiner = tree.add_internal(
            parent_id,
            edge_r,
            edge_c,
            buffer_position=steiner_buffer_positions,
            length=length,
            position=here,
        )
        ordered = sorted(indices, key=lambda i: points[i][axis])
        half = len(ordered) // 2
        stack.append((steiner, here, ordered[:half], 1 - axis))
        stack.append((steiner, here, ordered[half:], 1 - axis))

    tree.validate()
    return tree
