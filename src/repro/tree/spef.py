"""A pragmatic SPEF subset: export/import nets as parasitic netlists.

SPEF (IEEE 1481) is the industry format for extracted parasitics.  This
module writes a routing tree as one ``*D_NET`` with ``*CONN``/``*CAP``/
``*RES`` sections and reads such files back, so instances can move
between this library and standard tooling.

Subset and conventions (documented, deliberately simple):

* One net per file; the driver pin is the single ``*P`` (port) entry,
  sinks are ``*I`` entries with their pin loads (``*L``).
* Edge capacitance is lumped at the *downstream* node (L-model in the
  file).  The reader reassembles it as the edge's lumped capacitance,
  and the library's timing then applies its usual pi split — so a
  write/read round trip reproduces the original tree exactly.
* Node naming encodes insertability: internal vertices named ``n<k>``
  are candidate buffer positions, ``s<k>`` are Steiner-only.
* Required arrival times are not part of SPEF; they are carried in
  ``// rat <pin> <seconds>`` comment lines the reader understands (and
  other tools ignore).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import TreeError
from repro.tree.node import Driver, NodeKind
from repro.tree.routing_tree import RoutingTree

_HEADER_LINES = [
    '*SPEF "IEEE 1481-1998"',
    '*DESIGN "repro"',
    '*T_UNIT 1 S',
    '*C_UNIT 1 F',
    '*R_UNIT 1 OHM',
    '*L_UNIT 1 HENRY',
]


def _node_label(tree: RoutingTree, node_id: int) -> str:
    node = tree.node(node_id)
    if node.kind is NodeKind.SOURCE:
        return "driver"
    if node.kind is NodeKind.SINK:
        return node.name or f"sink{node_id}"
    prefix = "n" if node.is_buffer_position else "s"
    return f"{prefix}{node_id}"


def write_spef(tree: RoutingTree, path: Union[str, Path]) -> None:
    """Write ``tree`` as a single-net SPEF file at ``path``."""
    labels = {node_id: _node_label(tree, node_id) for node_id in
              (n.node_id for n in tree.nodes())}
    if len(set(labels.values())) != len(labels):
        raise TreeError("node labels are not unique; rename sinks")

    lines: List[str] = list(_HEADER_LINES)
    if tree.driver is not None:
        lines.append(f"// driver {tree.driver.resistance!r} "
                     f"{tree.driver.intrinsic_delay!r}")
    for sink in tree.sinks():
        if sink.required_arrival != 0.0:
            lines.append(f"// rat {labels[sink.node_id]} "
                         f"{sink.required_arrival!r}")
        if sink.polarity == -1:
            lines.append(f"// polarity {labels[sink.node_id]} -1")

    total_cap = tree.total_wire_capacitance() + sum(
        s.capacitance for s in tree.sinks()
    )
    lines.append(f"*D_NET net0 {total_cap!r}")

    lines.append("*CONN")
    lines.append("*P driver O")
    for sink in tree.sinks():
        lines.append(f"*I {labels[sink.node_id]} I *L {sink.capacitance!r}")

    lines.append("*CAP")
    cap_index = 1
    for node_id in tree.preorder():
        if node_id == tree.root_id:
            continue
        edge = tree.edge_to(node_id)
        if edge.capacitance != 0.0:
            lines.append(
                f"{cap_index} {labels[node_id]} {edge.capacitance!r}"
            )
            cap_index += 1

    lines.append("*RES")
    res_index = 1
    for node_id in tree.preorder():
        if node_id == tree.root_id:
            continue
        edge = tree.edge_to(node_id)
        lines.append(
            f"{res_index} {labels[edge.parent]} {labels[node_id]} "
            f"{edge.resistance!r}"
        )
        res_index += 1

    lines.append("*END")
    Path(path).write_text("\n".join(lines) + "\n")


def read_spef(path: Union[str, Path]) -> RoutingTree:
    """Read a file written by :func:`write_spef` back into a tree.

    Only the documented subset is understood; unknown directives raise
    :class:`TreeError` (silent misparses of timing data are worse than
    loud failures).
    """
    text = Path(path).read_text()
    rats: Dict[str, float] = {}
    polarities: Dict[str, int] = {}
    loads: Dict[str, float] = {}
    caps: Dict[str, float] = {}
    resistors: List[Tuple[str, str, float]] = []
    driver: Optional[Driver] = None

    section = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("//"):
            parts = line[2:].split()
            if parts and parts[0] == "rat":
                rats[parts[1]] = float(parts[2])
            elif parts and parts[0] == "polarity":
                polarities[parts[1]] = int(parts[2])
            elif parts and parts[0] == "driver":
                driver = Driver(resistance=float(parts[1]),
                                intrinsic_delay=float(parts[2]))
            continue
        if line.startswith("*"):
            directive = line.split()[0]
            if directive in ("*SPEF", "*DESIGN", "*T_UNIT", "*C_UNIT",
                             "*R_UNIT", "*L_UNIT", "*D_NET", "*END"):
                section = None
                continue
            if directive == "*CONN":
                section = "conn"
                continue
            if directive == "*CAP":
                section = "cap"
                continue
            if directive == "*RES":
                section = "res"
                continue
            if directive in ("*P", "*I") and section == "conn":
                parts = line.split()
                if directive == "*I":
                    if "*L" not in parts:
                        raise TreeError(f"sink pin without load: {line!r}")
                    loads[parts[1]] = float(parts[parts.index("*L") + 1])
                continue
            raise TreeError(f"unsupported SPEF directive: {line!r}")
        parts = line.split()
        if section == "cap":
            if len(parts) != 3:
                raise TreeError(f"malformed *CAP entry: {line!r}")
            caps[parts[1]] = float(parts[2])
        elif section == "res":
            if len(parts) != 4:
                raise TreeError(f"malformed *RES entry: {line!r}")
            resistors.append((parts[1], parts[2], float(parts[3])))
        else:
            raise TreeError(f"unexpected line outside sections: {line!r}")

    if not resistors:
        raise TreeError("no *RES entries: cannot reconstruct topology")

    children: Dict[str, List[Tuple[str, float]]] = {}
    for parent, child, resistance in resistors:
        children.setdefault(parent, []).append((child, resistance))

    tree = RoutingTree.with_source(driver=driver)
    id_of = {"driver": tree.root_id}
    stack = ["driver"]
    seen = {"driver"}
    while stack:
        label = stack.pop()
        for child_label, resistance in children.get(label, []):
            if child_label in seen:
                raise TreeError(f"node {child_label!r} has two drivers")
            seen.add(child_label)
            capacitance = caps.get(child_label, 0.0)
            if child_label in loads:
                new_id = tree.add_sink(
                    id_of[label], resistance, capacitance,
                    capacitance=loads[child_label],
                    required_arrival=rats.get(child_label, 0.0),
                    name=child_label,
                    polarity=polarities.get(child_label, 1),
                )
            else:
                new_id = tree.add_internal(
                    id_of[label], resistance, capacitance,
                    buffer_position=child_label.startswith("n"),
                    name=child_label,
                )
            id_of[child_label] = new_id
            stack.append(child_label)

    tree.validate()
    return tree
