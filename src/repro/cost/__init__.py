"""Cost-bounded buffer insertion (the paper's "reduce buffer cost" note).

The DATE-2005 paper closes with "Our algorithm can also be applied to
reduce buffer cost.  We leave the details to the journal version" — the
direction developed in Shi, Li & Alpert (ASP-DAC 2004).  This package
implements that extension: the dynamic program is stratified by
accumulated buffer cost, keeping one nonredundant (Q, C) list per cost
level, which yields

* the full slack-vs-cost Pareto frontier
  (:func:`~repro.cost.min_cost.slack_cost_frontier`), and
* the cheapest buffering meeting a slack target
  (:func:`~repro.cost.min_cost.minimize_cost`).

Costs are small non-negative integers (default: 1 per buffer, i.e.
minimize the buffer count); pass ``cost_fn`` to weight by area or power.
"""

from repro.cost.min_cost import (
    CostResult,
    FrontierPoint,
    minimize_cost,
    slack_cost_frontier,
)

__all__ = ["CostResult", "FrontierPoint", "minimize_cost", "slack_cost_frontier"]
