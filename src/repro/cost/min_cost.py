"""Cost-stratified dynamic program: slack-vs-cost Pareto optimization.

The maximum-slack DP keeps one nonredundant (Q, C) list per subtree.
Here each subtree instead keeps ``levels[w]`` — the nonredundant list of
candidates whose inserted buffers cost exactly ``w`` — so the root ends
up with the best achievable slack at every cost, from which both the
Pareto frontier and the minimum cost for a slack target fall out.

Operations per level mirror the unit-cost DP:

* *wire*: applied to every level independently;
* *buffer* at a position: level ``w``'s hull spawns buffered candidates
  into level ``w + cost(B_i)`` (the paper's O(k + b) hull walk is reused
  per level);
* *merge*: levels add, ``levels[w] = nonredundant union over
  w_l + w_r = w`` of the pairwise branch merges.

A cross-level prune removes candidates dominated by a *cheaper* level —
they can never appear on the frontier — keeping level lists small.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.buffer_ops import BufferPlan, generate_fast, insert_candidates
from repro.core.candidate import (
    Candidate,
    CandidateList,
    SinkDecision,
    best_candidate_for_driver,
    reconstruct_assignment,
)
from repro.core.dp import build_plans
from repro.core.merge import merge_branches
from repro.core.wire_ops import add_wire
from repro.errors import AlgorithmError, InfeasibleError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: One subtree's state: cost level -> nonredundant candidate list.
CostLevels = Dict[int, CandidateList]

CostFn = Callable[[BufferType], int]


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto point: the best slack achievable at exactly this cost.

    Attributes:
        cost: Total buffer cost (integer units).
        slack: Optimal slack among bufferings of that cost.
        assignment: A buffering achieving it.
    """

    cost: int
    slack: float
    assignment: Dict[int, BufferType]

    @property
    def num_buffers(self) -> int:
        return len(self.assignment)


@dataclass(frozen=True)
class CostResult:
    """Result of :func:`minimize_cost`.

    Attributes:
        slack: Slack of the chosen buffering (>= the target).
        cost: Its total cost — minimal among bufferings meeting the
            target.
        assignment: The chosen buffering.
        frontier: The full Pareto frontier (ascending cost, ascending
            slack) for reporting.
    """

    slack: float
    cost: int
    assignment: Dict[int, BufferType]
    frontier: Tuple[FrontierPoint, ...]


def _default_cost(buffer: BufferType) -> int:
    return 1


def _prune_across_levels(levels: CostLevels) -> CostLevels:
    """Drop candidates dominated by any strictly cheaper level.

    A candidate at cost ``w`` dominated by one at cost ``< w`` is useless
    for every objective considered here (any upstream completion of the
    dominator is at least as good and cheaper).  ``cheaper`` maintains
    the running nonredundant union of levels already processed; each
    candidate checks it with one bisect.
    """
    pruned: CostLevels = {}
    cheaper: CandidateList = []
    cheaper_cs: List[float] = []
    for cost in sorted(levels):
        survivors: CandidateList = []
        for candidate in levels[cost]:
            # Best q among cheaper candidates with c <= candidate.c: the
            # union is sorted with q increasing in c, so it is the last
            # entry at or before candidate.c.
            index = bisect.bisect_right(cheaper_cs, candidate.c) - 1
            if index >= 0 and cheaper[index].q >= candidate.q:
                continue
            survivors.append(candidate)
        if survivors:
            pruned[cost] = survivors
            cheaper = insert_candidates(cheaper, survivors)
            cheaper_cs = [c.c for c in cheaper]
    return pruned


def _run_cost_dp(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver],
    cost_fn: CostFn,
    max_cost: Optional[int],
) -> Tuple[Dict[int, Candidate], Optional[Driver]]:
    """Run the stratified DP; returns the best root candidate per cost."""
    tree.validate()
    driver = driver if driver is not None else tree.driver

    plans = build_plans(tree, library)
    buffer_costs: Dict[str, int] = {}
    for buffer in library.buffers:
        cost = cost_fn(buffer)
        if not isinstance(cost, int) or cost < 0:
            raise AlgorithmError(
                f"cost_fn must return non-negative ints; got {cost!r} "
                f"for buffer {buffer.name!r}"
            )
        buffer_costs[buffer.name] = cost

    states: Dict[int, CostLevels] = {}
    for node_id in tree.postorder():
        node = tree.node(node_id)
        if node.is_sink:
            levels: CostLevels = {
                0: [
                    Candidate(
                        q=node.required_arrival,
                        c=node.capacitance,
                        decision=SinkDecision(node_id),
                    )
                ]
            }
        else:
            branch_states: List[CostLevels] = []
            for child in tree.children_of(node_id):
                edge = tree.edge_to(child)
                child_levels = states.pop(child)
                branch_states.append(
                    {
                        w: add_wire(lst, edge.resistance, edge.capacitance)
                        for w, lst in child_levels.items()
                    }
                )
            levels = branch_states[0]
            for other in branch_states[1:]:
                combined: CostLevels = {}
                for wl, left in levels.items():
                    for wr, right in other.items():
                        w = wl + wr
                        if max_cost is not None and w > max_cost:
                            continue
                        merged = merge_branches(list(left), list(right))
                        if w in combined:
                            combined[w] = insert_candidates(combined[w], merged)
                        else:
                            combined[w] = merged
                levels = combined

            plan = plans.get(node_id)
            if plan is not None:
                additions: CostLevels = {}
                for w, lst in levels.items():
                    new_candidates = generate_fast(lst, plan)
                    for candidate in new_candidates:
                        assert candidate.decision.buffer is not None
                        w_new = w + buffer_costs[candidate.decision.buffer.name]
                        if max_cost is not None and w_new > max_cost:
                            continue
                        additions.setdefault(w_new, []).append(candidate)
                for w_new, extra in additions.items():
                    extra.sort(key=lambda cand: cand.c)
                    if w_new in levels:
                        levels[w_new] = insert_candidates(levels[w_new], extra)
                    else:
                        levels[w_new] = insert_candidates([], extra)

            levels = _prune_across_levels(levels)

        states[node_id] = levels

    root_levels = states[tree.root_id]
    resistance = driver.resistance if driver is not None else 0.0
    best_per_cost: Dict[int, Candidate] = {}
    for cost in sorted(root_levels):
        best = best_candidate_for_driver(root_levels[cost], resistance)
        if best is not None:
            best_per_cost[cost] = best
    return best_per_cost, driver


def slack_cost_frontier(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver] = None,
    cost_fn: Optional[CostFn] = None,
    max_cost: Optional[int] = None,
) -> List[FrontierPoint]:
    """The Pareto frontier of slack versus total buffer cost.

    Args:
        tree: A validated routing tree.
        library: The buffer library.
        driver: Source driver (defaults to ``tree.driver``).
        cost_fn: Integer cost per buffer type; default counts buffers.
        max_cost: Optional cap on total cost (bounds work and memory).

    Returns:
        Points with strictly increasing cost and strictly increasing
        slack; the first point is the unbuffered solution (cost 0) unless
        it is off-frontier, and the last achieves the unconstrained
        optimum of :func:`repro.core.api.insert_buffers`.
    """
    cost_fn = cost_fn if cost_fn is not None else _default_cost
    best_per_cost, driver = _run_cost_dp(tree, library, driver, cost_fn, max_cost)

    frontier: List[FrontierPoint] = []
    best_slack = float("-inf")
    for cost in sorted(best_per_cost):
        candidate = best_per_cost[cost]
        slack = candidate.q - (driver.delay(candidate.c) if driver else 0.0)
        if slack > best_slack:
            best_slack = slack
            frontier.append(
                FrontierPoint(
                    cost=cost,
                    slack=slack,
                    assignment=reconstruct_assignment(candidate.decision),
                )
            )
    return frontier


def minimize_cost(
    tree: RoutingTree,
    library: BufferLibrary,
    slack_target: float,
    driver: Optional[Driver] = None,
    cost_fn: Optional[CostFn] = None,
    max_cost: Optional[int] = None,
) -> CostResult:
    """The cheapest buffering whose slack meets ``slack_target``.

    Raises:
        InfeasibleError: If no buffering (within ``max_cost``) reaches
            the target; the message reports the best achievable slack.
    """
    frontier = slack_cost_frontier(tree, library, driver, cost_fn, max_cost)
    for point in frontier:
        if point.slack >= slack_target:
            return CostResult(
                slack=point.slack,
                cost=point.cost,
                assignment=point.assignment,
                frontier=tuple(frontier),
            )
    best = frontier[-1].slack if frontier else float("-inf")
    raise InfeasibleError(
        f"slack target {slack_target:.3e}s unreachable; best achievable "
        f"is {best:.3e}s" + (f" within cost {max_cost}" if max_cost else "")
    )
