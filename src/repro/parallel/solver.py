"""Partitioned solve orchestration: dispatch cuts, splice, finish.

:func:`solve_partitioned` is the entry point behind
``SolverPool(parallel=...)``, ``repro buffer --jobs`` and the serving
layer's large-``/solve`` routing.  The flow:

1. plan cuts over the compiled schedule
   (:func:`~repro.parallel.partition.plan_partitions`); a non-viable
   plan (chain-shaped net, low coverage, one worker) falls back to the
   ordinary serial solve — same result, a report that says why;
2. extract each cut
   (:meth:`~repro.core.schedule.CompiledNet.subschedule`) and solve the
   extracts concurrently (a shared :class:`~repro.core.batch.SolverPool`
   process pool, a transient pool, or inline for ``jobs=1`` testing);
3. replay the **residual** instruction stream in the calling process,
   splicing each returned frontier at its cut's start instruction
   (:func:`~repro.incremental.engine.splice_snapshot`) and jumping the
   cut's range — the incremental engine's dirty-path interpreter with
   cuts in place of cache hits;
4. finish through :func:`repro.core.dp._finish` exactly like a scratch
   solve.

**Why the result is bit-identical.**  Every instruction of the parent
schedule is executed exactly once, on the same inputs, in the same
order as the scratch solve: the workers execute the cut ranges (the
extracts are verbatim slices with rebased payload indices), the parent
executes the rest, and splicing copies the captured ``(q, c)`` floats
unchanged.  Since every operation is deterministic and the merge fold
order is preserved by the instruction stream itself, the same IEEE-754
operations see the same operands — the same argument that carried the
compiled interpreter, the SoA kernels and the incremental engine, each
gated by a randomized parity corpus (here ``tests/test_parallel.py``).
``DPStats`` compose the same way the incremental engine's do: a cut
contributes its snapshot's ``peak``/``generated`` scalars at the splice
point, which is precisely its contribution to the scratch accounting.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.schedule import OP_FINAL, OP_MERGE, OP_SINK, OP_WIRE, CompiledNet
from repro.core.solution import BufferingResult
from repro.errors import AlgorithmError, DeadlineExceeded, WorkerCrashError
from repro.library.library import BufferLibrary
from repro.obs.profiler import instrument_ops
from repro.obs.spans import active_tracer, current_request_id
from repro.resilience.deadline import Deadline, active_deadline, deadline_scope
from repro.resilience.faults import inject as _inject_fault
from repro.parallel.partition import PartitionPlan, plan_partitions
from repro.parallel.worker import _solve_partition, solve_subschedule
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: Instruction-count floor for ``parallel="auto"`` (roughly twice the
#: buffer-position count).  Calibrated against the measured hand-off
#: overhead — partition planning is one O(n) pass and each partition
#: costs a subschedule pickle plus a snapshot unpickle, together a few
#: hundred milliseconds of fixed cost at this size, against multi-second
#: serial solves (see ``benchmarks/bench_parallel.py``); below it the
#: overhead eats the win.
DEFAULT_PARALLEL_THRESHOLD = 50_000


def solve_partitioned(
    net: Union[RoutingTree, CompiledNet],
    library: BufferLibrary,
    algorithm: str = "fast",
    driver: Optional[Driver] = None,
    backend: str = "auto",
    jobs: Optional[int] = None,
    options: Optional[dict] = None,
    pool=None,
    plan: Optional[PartitionPlan] = None,
    report: Optional[dict] = None,
    deadline: Optional[Deadline] = None,
) -> BufferingResult:
    """Solve one net across workers; bit-identical to the serial solve.

    Args:
        net: A routing tree or a *locally compiled*
            :class:`CompiledNet` (partitioning needs the subtree range
            maps, which do not survive pickling).
        library / algorithm / driver / backend / options: The usual
            solve context (see :func:`repro.core.api.insert_buffers`).
            When ``pool`` is given, these must match the pool's context
            — the workers already hold it.
        jobs: Worker count for cut planning and the transient pool;
            defaults to ``pool.jobs`` or ``os.cpu_count()``.  ``1``
            solves the partitions inline (no processes) — the same
            splice path, which is what the parity tests exercise
            cheaply.
        pool: A :class:`~repro.core.batch.SolverPool` whose persistent
            worker pool dispatches the partitions; ``None`` spins up a
            transient pool for this call (``jobs > 1`` only).
        plan: Reuse a precomputed partition plan.
        report: Optional dict the solve fills with observability data:
            ``engaged``, ``reason``, ``partitions``, ``cut_depths``,
            ``coverage``, ``residual_fraction``, ``plan_seconds``,
            ``dispatch_seconds``, ``worker_busy_seconds``,
            ``pool_utilization``, ``workers``.
        deadline: Optional wall budget
            (:class:`repro.resilience.Deadline`); bounds worker waits
            and the residual replay, never changes a completed result.

    Raises:
        AlgorithmError: Bad context, or a compiled net without range
            maps.
        WorkerCrashError: The transient worker pool broke (a worker
            died abruptly); ``.cuts`` names the cut node ids that were
            in flight.  Supervised callers (``SolverPool``) catch this
            and degrade to the serial plan.
        DeadlineExceeded: The deadline expired mid-solve.
    """
    from repro.core.batch import SolverPool, _init_worker, _resolve_jobs
    from repro.core.registry import get_algorithm
    from repro.core.stores import get_store_backend, resolve_backend

    if deadline is not None:
        with deadline_scope(deadline):
            return solve_partitioned(
                net, library, algorithm=algorithm, driver=driver,
                backend=backend, jobs=jobs, options=options, pool=pool,
                plan=plan, report=report,
            )

    get_algorithm(algorithm).validate_options(options or {})
    backend = resolve_backend(backend)
    get_store_backend(backend)
    options = dict(options or {})
    if pool is not None:
        jobs = pool.jobs if jobs is None else jobs
    jobs = _resolve_jobs(jobs)

    if isinstance(net, CompiledNet):
        compiled = net
    else:
        from repro.core.schedule import (
            auto_compile_enabled,
            cache_schedule,
            cached_schedule,
            compile_net,
        )

        compiled = cached_schedule(net, library)
        if compiled is None:
            if auto_compile_enabled():
                compiled = cache_schedule(net, library)
            else:
                compiled = compile_net(net, library)

    if report is None:
        report = {}
    report.update(
        engaged=False, reason=None, partitions=0, cut_depths=[],
        coverage=0.0, residual_fraction=1.0, workers=jobs,
        total_instructions=len(compiled.ops), plan_seconds=0.0,
        dispatch_seconds=0.0, worker_busy_seconds=0.0,
        pool_utilization=0.0,
    )

    plan_started = time.perf_counter()
    if plan is None:
        if not compiled.final_of_node:
            plan = PartitionPlan([], len(compiled.ops), 0, jobs, 1.0)
            plan.reason = (
                "no subtree range maps (unpickled schedule); "
                "recompile locally to partition"
            )
        else:
            plan = plan_partitions(compiled, jobs)
    report["plan_seconds"] = time.perf_counter() - plan_started

    if not plan.viable:
        report["reason"] = plan.reason
        return _serial_fallback(
            compiled, library, algorithm, driver, backend, options
        )

    report.update(
        engaged=True,
        partitions=len(plan.cuts),
        cut_depths=[cut.depth for cut in plan.cuts],
        coverage=plan.coverage,
        residual_fraction=plan.residual_fraction,
    )

    started = time.perf_counter()
    # Largest partitions first: the pool schedules greedily, so the
    # longest solve starts earliest and bounds the makespan.
    order = sorted(
        range(len(plan.cuts)),
        key=lambda index: plan.cuts[index].size,
        reverse=True,
    )
    # The observability context rides in the task tuple exactly as
    # REPRO_FAULTS ships fault plans: the worker re-installs the
    # request id (log/span correlation) and, when the parent is
    # tracing, collects its own spans to be re-parented below.
    tracer = active_tracer()
    request_id = current_request_id()
    obs = (
        (request_id, tracer is not None)
        if request_id is not None or tracer is not None
        else None
    )
    tasks = [
        (index, plan.cuts[index].node_id,
         compiled.subschedule(plan.cuts[index].node_id), obs)
        for index in order
    ]

    _inject_fault("parallel.dispatch")
    dispatch_handle = (
        tracer.begin("dispatch", partitions=len(tasks), jobs=jobs)
        if tracer is not None
        else None
    )
    dispatch_started = time.perf_counter()
    if pool is not None and jobs > 1:
        raw = pool._map_partition_tasks(tasks)
    elif jobs > 1:
        raw = _dispatch_transient(
            tasks, jobs, library, algorithm, driver, backend, options,
            _init_worker,
        )
    else:
        raw = [
            (index, solve_subschedule(
                sub, root_id, library, algorithm, backend, options
            ), 0.0, None)
            for index, root_id, sub, _ in tasks
        ]
    dispatch_seconds = time.perf_counter() - dispatch_started
    if dispatch_handle is not None:
        tracer.end(dispatch_handle)

    snapshots: List[Optional[object]] = [None] * len(plan.cuts)
    busy = 0.0
    for index, snapshot, seconds, spans in raw:
        snapshots[index] = snapshot
        busy += seconds
        if spans and tracer is not None:
            # Worker clocks are not comparable to ours: re-base the
            # worker's epoch-relative spans at the dispatch instant.
            tracer.adopt(spans, at=dispatch_started, tid=f"worker-{index}")
    report["dispatch_seconds"] = dispatch_seconds
    report["worker_busy_seconds"] = busy
    if jobs > 1 and dispatch_seconds > 0:
        report["pool_utilization"] = busy / (jobs * dispatch_seconds)

    return _execute_residual(
        compiled, plan, snapshots, library, algorithm, backend, options,
        driver, started,
    )


def _dispatch_transient(
    tasks: List[tuple],
    jobs: int,
    library: BufferLibrary,
    algorithm: str,
    driver: Optional[Driver],
    backend: str,
    options: dict,
    init_worker,
) -> List[tuple]:
    """Solve the cut extracts on a transient worker pool.

    Uses :class:`~concurrent.futures.ProcessPoolExecutor` rather than
    ``multiprocessing.Pool`` because only the former *raises* on abrupt
    worker death (``os._exit``): a broken ``multiprocessing.Pool``
    silently repopulates its workers and the in-flight ``map`` blocks
    forever.  A broken pool surfaces as a typed
    :class:`~repro.errors.WorkerCrashError` carrying the in-flight cut
    node ids; an ambient deadline bounds each wait.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeoutError
    from concurrent.futures.process import BrokenProcessPool

    cut_ids = tuple(task[1] for task in tasks)
    deadline = active_deadline()
    executor = ProcessPoolExecutor(
        max_workers=jobs,
        initializer=init_worker,
        initargs=(library, algorithm, driver, backend, options),
    )
    try:
        futures = [executor.submit(_solve_partition, task) for task in tasks]
        raw = []
        for future in futures:
            timeout = None
            if deadline is not None:
                timeout = max(deadline.remaining(), 0.0)
            raw.append(future.result(timeout=timeout))
        return raw
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            f"worker pool broke during partitioned dispatch "
            f"({len(tasks)} cuts in flight): {exc}",
            cuts=cut_ids,
        ) from exc
    except FuturesTimeoutError as exc:
        # Workers may be hung: kill them so shutdown below cannot block.
        for process in list(getattr(executor, "_processes", {}).values()):
            process.terminate()
        assert deadline is not None
        raise DeadlineExceeded("parallel.dispatch", deadline.budget) from exc
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _serial_fallback(
    compiled: CompiledNet,
    library: BufferLibrary,
    algorithm: str,
    driver: Optional[Driver],
    backend: str,
    options: dict,
) -> BufferingResult:
    from repro.core.api import insert_buffers

    return insert_buffers(
        compiled, library, algorithm=algorithm, driver=driver,
        backend=backend, **options,
    )


def _execute_residual(
    compiled: CompiledNet,
    plan: PartitionPlan,
    snapshots: Sequence[object],
    library: BufferLibrary,
    algorithm: str,
    backend: str,
    options: dict,
    driver: Optional[Driver],
    started: float,
) -> BufferingResult:
    """Replay the glue between cuts, splicing worker frontiers in.

    The incremental engine's dirty-path loop
    (:meth:`repro.incremental.engine.IncrementalSolver.resolve`) with
    cut snapshots in the role of cache hits.  Stats are scalar here:
    merges fold every per-slot aggregate into slot 0 by the end, so
    ``max`` over sampled peaks and ``sum`` over generation counts give
    exactly the scratch solve's ``peaks[0]``/``gens[0]``.
    """
    from repro.core.dp import _finish, _resolve_ops
    from repro.core.registry import get_algorithm
    from repro.incremental.engine import splice_snapshot

    strategy = get_algorithm(algorithm)
    add_buffer = strategy.add_buffer_op(backend, library, **options)
    label = strategy.stats_label(**options)
    factory = compiled.factory(backend) if backend != "object" else None
    sink_op, wire_op, merge_op, best_op, release = _resolve_ops(
        backend, None, None, factory=factory
    )
    sink_op, wire_op, merge_op, add_buffer, end_range = instrument_ops(
        sink_op, wire_op, merge_op, add_buffer
    )
    steps, wire_r, wire_c, sink_node, sink_q, sink_c = compiled.runtime()
    plans = compiled.plans()
    splice_at: Dict[int, Tuple[object, int]] = {
        cut.start: (snapshots[index], cut.final)
        for index, cut in enumerate(plan.cuts)
    }
    resolved_driver = driver if driver is not None else compiled.driver

    tracer = active_tracer()
    residual_handle = (
        tracer.begin("parallel.residual", cuts=len(plan.cuts))
        if tracer is not None
        else None
    )
    stack: List[object] = []
    push = stack.append
    pop = stack.pop
    peak = 0
    generated = 0
    i = 0
    total = len(steps)
    current = None
    deadline = active_deadline()
    while i < total:
        hit = splice_at.get(i)
        if hit is not None:
            snapshot, final = hit
            if tracer is not None:
                splice_handle = tracer.begin(
                    "splice", size=len(snapshot.q)
                )
                push(splice_snapshot(snapshot, factory))
                tracer.end(splice_handle)
            else:
                push(splice_snapshot(snapshot, factory))
            if snapshot.peak > peak:
                peak = snapshot.peak
            generated += snapshot.generated
            i = final + 1
            continue
        op, arg = steps[i]
        code = op & 3
        if code == OP_WIRE:
            top = stack[-1]
            current = wire_op(top, wire_r[arg], wire_c[arg])
            if current is not top:
                release(top)
                stack[-1] = current
        elif code == OP_SINK:
            current = sink_op(sink_node[arg], sink_q[arg], sink_c[arg])
            push(current)
            generated += 1
        elif code == OP_MERGE:
            right = pop()
            left = pop()
            current = merge_op(left, right)
            generated += len(current)
            if current is not left:
                release(left)
            if current is not right:
                release(right)
            push(current)
        else:  # OP_BUFFER
            top = stack[-1]
            before = len(top)
            current = add_buffer(top, plans[arg])
            generated += max(len(current) - before, 0)
            if current is not top:
                release(top)
                stack[-1] = current
        if op & OP_FINAL:
            length = len(current)
            if length > peak:
                peak = length
            if deadline is not None:
                deadline.check("parallel.residual")
            if end_range is not None:
                end_range(length)
        i += 1

    assert len(stack) == 1, "residual must reduce to the root list"
    if residual_handle is not None:
        tracer.end(residual_handle)
    result = _finish(
        stack[0], best_op, release, resolved_driver, label,
        compiled.num_buffer_positions, library, peak, generated,
        started, backend,
    )
    if factory is not None:
        factory.end_solve()
    return result
