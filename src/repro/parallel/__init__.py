"""Partitioned parallel solving of single large nets.

The paper's DP is compositional: a subtree's candidate frontier depends
only on that subtree.  The incremental engine already exploits this for
*reuse* (digest-keyed :class:`~repro.incremental.subtree_cache.FrontierSnapshot`
memoization); this package extends it to *parallelism*:

1. :func:`~repro.parallel.partition.plan_partitions` cuts a compiled
   schedule at balanced subtree boundaries chosen from the postorder
   instruction layout;
2. each cut's :meth:`~repro.core.schedule.CompiledNet.subschedule`
   extract is solved concurrently on a process pool, returning a
   picklable frontier snapshot (never an assignment);
3. :func:`~repro.parallel.solver.solve_partitioned` replays the
   residual instruction stream in the parent, splicing each returned
   frontier at its cut exactly like the incremental engine — so the
   final result is bit-identical to the scratch solve.

See ``docs/architecture.md`` ("Partitioned parallel solve") for the
cut-selection policy, the hand-off protocol and the parity argument.
"""

from repro.parallel.partition import Cut, PartitionPlan, plan_partitions
from repro.parallel.solver import (
    DEFAULT_PARALLEL_THRESHOLD,
    solve_partitioned,
)

__all__ = [
    "Cut",
    "PartitionPlan",
    "plan_partitions",
    "solve_partitioned",
    "DEFAULT_PARALLEL_THRESHOLD",
]
