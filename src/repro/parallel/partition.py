"""Balanced cut selection over a compiled schedule's postorder layout.

Postorder flattening makes every subtree a contiguous instruction range
``[start_of_node[v], final_of_node[v]]``, so a *cut* is simply a node
whose range is (a) big enough to amortize the hand-off overhead and
(b) small enough that several cuts load-balance across workers.  The
planner descends from the root and emits a cut the moment a subtree
fits under the balance target — the classic greedy tree-partitioning
policy, here driven entirely by instruction counts (the honest proxy
for solve work the schedule already carries).

Everything between the cuts — the merge/wire glue above them plus any
subtree too small to be worth shipping — is the **residual** that the
parent process replays itself, splicing each cut's returned frontier at
its start instruction (:mod:`repro.parallel.solver`).

A plan is only *viable* when enough of the work actually moved into
cuts: a degenerate chain (the Figure 4 trunk) nests every subtree
inside the next, so at most one cut of target size exists and coverage
collapses — the planner reports that and the solver falls back to the
ordinary serial path.  Chain-shaped DPs are inherently sequential;
partitioning cannot help them and must not pretend to.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.schedule import CompiledNet
from repro.errors import AlgorithmError

#: Subtrees below this many instructions stay in the residual: the
#: pickle + dispatch + splice overhead of a partition is fixed, so tiny
#: extracts cost more than they save.
MIN_CUT_INSTRUCTIONS = 64

#: Cuts targeted per worker.  More than one lets the pool load-balance
#: unequal subtrees; the value bounds splice overhead at a few dozen
#: snapshots per solve.
CUTS_PER_WORKER = 3

#: Minimum fraction of the instruction stream the cuts must cover for
#: the plan to be worth dispatching (below it the serial residual
#: dominates and Amdahl wins).
MIN_COVERAGE = 0.5


class Cut:
    """One partition: a subtree shipped to a worker.

    Attributes:
        node_id: The subtree root (parent-tree node id).
        start / final: Its inclusive instruction range in the parent
            schedule.
        size: ``final - start + 1``.
        depth: Tree depth of the cut node below the root (reported in
            ``/stats`` — deep cuts mean the planner had to descend far
            to find balance).
    """

    __slots__ = ("node_id", "start", "final", "size", "depth")

    def __init__(
        self, node_id: int, start: int, final: int, depth: int
    ) -> None:
        self.node_id = node_id
        self.start = start
        self.final = final
        self.size = final - start + 1
        self.depth = depth

    def __repr__(self) -> str:
        return (
            f"Cut(node={self.node_id}, range=[{self.start}, {self.final}], "
            f"depth={self.depth})"
        )


class PartitionPlan:
    """The planner's verdict: cuts plus the viability bookkeeping.

    Attributes:
        cuts: Selected partitions in ascending ``start`` order (the
            order the residual replay encounters them).
        total_instructions: Parent schedule length.
        covered_instructions: Instructions inside cuts; the remainder is
            the serial residual.
        target: The balance target each cut was sized against.
        workers: The worker count the plan was built for.
        viable: Whether dispatching this plan can plausibly win.
        reason: Why not, when ``viable`` is false.
    """

    __slots__ = ("cuts", "total_instructions", "covered_instructions",
                 "target", "workers", "viable", "reason")

    def __init__(
        self,
        cuts: List[Cut],
        total_instructions: int,
        target: int,
        workers: int,
        min_coverage: float,
    ) -> None:
        self.cuts = cuts
        self.total_instructions = total_instructions
        self.covered_instructions = sum(cut.size for cut in cuts)
        self.target = target
        self.workers = workers
        if len(cuts) < 2:
            self.viable = False
            self.reason = (
                "fewer than two cuts: the schedule nests like a chain "
                "(sequential DP), nothing to run concurrently"
            )
        elif self.coverage < min_coverage:
            self.viable = False
            self.reason = (
                f"cut coverage {self.coverage:.2f} below "
                f"{min_coverage:.2f}: the serial residual would dominate"
            )
        else:
            self.viable = True
            self.reason = None

    @property
    def coverage(self) -> float:
        if not self.total_instructions:
            return 0.0
        return self.covered_instructions / self.total_instructions

    @property
    def residual_fraction(self) -> float:
        return 1.0 - self.coverage

    def __repr__(self) -> str:
        return (
            f"PartitionPlan(cuts={len(self.cuts)}, "
            f"coverage={self.coverage:.2f}, viable={self.viable})"
        )


def _interval_index(
    compiled: CompiledNet,
) -> Tuple[int, Dict[int, List[Tuple[int, int]]]]:
    """``(root_node, start -> [(final, node), ...] ascending by final)``.

    Built in one O(n) pass: ``final_of_node`` was filled in emission
    order during :func:`~repro.core.schedule.compile_net`, so iterating
    its items yields nodes in ascending final index — postorder — and
    each bucket list comes out already sorted.  Nodes sharing a start
    form a nesting chain (ancestors of the range's leftmost sink), so
    "the child of ``v`` starting at ``i``" is the bucket entry with the
    largest final still inside ``v``'s range — a bisect, not a scan.
    """
    final_of_node = compiled.final_of_node
    if not final_of_node:
        raise AlgorithmError(
            "compiled net has no subtree range maps (it was unpickled); "
            "partition planning needs a locally compiled schedule"
        )
    start_of_node = compiled.start_of_node
    buckets: Dict[int, List[Tuple[int, int]]] = {}
    root = -1
    for node, final in final_of_node.items():
        buckets.setdefault(start_of_node[node], []).append((final, node))
        root = node  # last in emission order == the root
    return root, buckets


def _children(
    buckets: Dict[int, List[Tuple[int, int]]], start: int, final: int
) -> List[Tuple[int, int, int]]:
    """Direct children of the subtree ``[start, final]`` as
    ``(node, start, final)``, left to right.

    Walks the range child by child: a child starts at ``start``; after
    its range comes 1–2 glue instructions (its WIRE, plus a MERGE from
    the second child on) and then the next child.  Positions carrying
    glue have no bucket entry inside the range, so the inner scan
    skips at most two instructions per child.
    """
    from bisect import bisect_left

    children: List[Tuple[int, int, int]] = []
    i = start
    while i < final:
        bucket = buckets.get(i)
        if bucket is not None:
            # Largest final strictly inside the parent's range: entries
            # at this start are nested, ancestors last.
            at = bisect_left(bucket, (final, -1)) - 1
            if at >= 0:
                child_final, child_node = bucket[at]
                children.append((child_node, i, child_final))
                i = child_final + 1
                continue
        i += 1
    return children


def plan_partitions(
    compiled: CompiledNet,
    workers: int,
    cuts_per_worker: int = CUTS_PER_WORKER,
    min_instructions: int = MIN_CUT_INSTRUCTIONS,
    min_coverage: float = MIN_COVERAGE,
) -> PartitionPlan:
    """Choose balanced cut points for ``workers`` concurrent solvers.

    Top-down greedy descent: starting at the root, any subtree at most
    ``total / (workers * cuts_per_worker)`` instructions becomes a cut
    (if it clears ``min_instructions``), otherwise its children are
    examined.  Cuts are therefore disjoint by construction and the
    descent only touches O(cuts · branching) nodes beyond the one-pass
    interval index.

    The returned plan may be non-viable (see
    :class:`PartitionPlan.reason`); callers must check before
    dispatching.  ``workers < 2`` is answered with a non-viable plan
    immediately.
    """
    total = len(compiled.ops)
    target = max(
        total // (max(workers, 1) * max(cuts_per_worker, 1)),
        min_instructions,
    )
    if workers < 2 or total == 0:
        plan = PartitionPlan([], total, target, workers, min_coverage)
        plan.reason = "fewer than two workers: nothing to parallelize"
        return plan

    root, buckets = _interval_index(compiled)
    cuts: List[Cut] = []
    # Iterative descent (cut subtrees can sit a million levels deep on
    # near-chain shapes; recursion is not an option).
    pending: List[Tuple[int, int, int, int]] = [
        (root, 0, compiled.final_of_node[root], 0)
    ]
    while pending:
        node, start, final, depth = pending.pop()
        for child, child_start, child_final in _children(
            buckets, start, final
        ):
            size = child_final - child_start + 1
            if size <= target:
                if size >= min_instructions:
                    cuts.append(
                        Cut(child, child_start, child_final, depth + 1)
                    )
                # Under min_instructions: leave it in the residual.
            else:
                pending.append((child, child_start, child_final, depth + 1))

    cuts.sort(key=lambda cut: cut.start)
    return PartitionPlan(cuts, total, target, workers, min_coverage)
