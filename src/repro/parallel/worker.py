"""Worker-side partition solving: subschedule in, frontier snapshot out.

A partition task ships a :meth:`~repro.core.schedule.CompiledNet.subschedule`
extract to a worker of the shared :class:`~repro.core.batch.SolverPool`
process pool (same pool, same ``_init_worker`` context — library,
algorithm, driver, backend, options live in the worker already).  The
worker runs the ordinary schedule interpreter over the extract and
returns the *frontier* — a picklable
:class:`~repro.incremental.subtree_cache.FrontierSnapshot` in the
parent tree's node ids — never an assignment: the cut's frontier is an
intermediate value of the parent's DP, and only the parent, after
splicing every frontier and replaying the residual glue, can score the
root against the driver.

Solve state (store factory, add-buffer op) is cached per worker process
and reused across tasks, exactly like the per-net factories of the
batch path: the SoA scratch arena and provenance tape stay warm for the
next partition.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.core.schedule import CompiledNet
from repro.incremental.subtree_cache import FrontierSnapshot, capture_frontier
from repro.resilience.faults import inject as _inject_fault

#: Per-process solve state: ``(context identity, add_buffer, factory)``.
#: The context dict is installed once per worker by ``_init_worker``,
#: so identity comparison is enough to detect a stale cache (only the
#: inline path, which passes explicit arguments, bypasses it).
_STATE: Optional[tuple] = None


def solve_subschedule(
    sub: CompiledNet,
    root_id: int,
    library,
    algorithm: str,
    backend: str,
    options: dict,
    factory=None,
) -> FrontierSnapshot:
    """Run ``sub`` to completion and freeze its root frontier.

    The same interpreter, operations and accounting as a scratch solve
    of the extract (:func:`repro.core.dp._execute_schedule` with the
    algorithm's ``add_buffer_op``), so the captured ``(q, c)`` columns,
    ``peak`` and ``generated`` are bit-for-bit what the parent's own
    execution of those instructions would have produced.

    Args:
        sub: The extracted subschedule (node ids preserved).
        root_id: The cut node's id (recorded on the snapshot).
        library / algorithm / backend / options: The solve context;
            ``backend`` must be resolved (not ``"auto"``).
        factory: Optional store factory to reuse; defaults to a
            per-call factory from the backend registry for non-object
            backends.
    """
    from repro.core.dp import _execute_schedule, _resolve_ops
    from repro.core.registry import get_algorithm

    add_buffer = get_algorithm(algorithm).add_buffer_op(
        backend, library, **options
    )
    if backend != "object" and factory is None:
        from repro.core.stores import get_store_backend

        factory = get_store_backend(backend)()
    sink_op, wire_op, merge_op, _best_op, release = _resolve_ops(
        backend, None, None, factory=factory
    )
    root, peak, generated = _execute_schedule(
        sub, sub.plans(), sink_op, wire_op, merge_op, add_buffer, release
    )
    snapshot = capture_frontier(
        root, factory, root_id, peak, generated, portable=True
    )
    if factory is not None:
        release(root)
        factory.end_solve()
    return snapshot


def _worker_state():
    """The (cached) per-process solve callables for the pool context."""
    global _STATE
    from repro.core import batch

    context = batch._WORKER_CONTEXT
    assert context is not None, "partition task on an uninitialized worker"
    if _STATE is None or _STATE[0] is not context:
        backend = context["backend"]
        factory = None
        if backend != "object":
            from repro.core.stores import get_store_backend

            factory = get_store_backend(backend)()
        _STATE = (context, factory)
    return context, _STATE[1]


def _solve_partition(
    task: Tuple[int, int, CompiledNet, Optional[tuple]]
) -> Tuple[int, FrontierSnapshot, float, Optional[list]]:
    """One pool task: ``(index, cut node id, subschedule, obs context)``.

    ``obs`` is ``None`` or ``(request_id, collect_spans)`` — the
    observability context the parent threads through the task tuple,
    the same channel ``REPRO_FAULTS`` uses for fault plans.  The
    request id is re-installed here so worker-side spans and JSON log
    lines correlate with the originating request; when the parent is
    tracing, the worker collects its own spans and returns them
    epoch-relative for the parent to re-parent
    (:meth:`repro.obs.spans.Tracer.adopt`).

    Returns ``(partition index, snapshot, busy seconds, spans)`` — the
    busy time feeds the pool-utilization figure in the solve report.
    """
    part_index, root_id, sub, obs = task
    request_id, collect_spans = obs if obs is not None else (None, False)
    # Forked executor workers can inherit the parent thread's ambient
    # deadline and tracer; the parent bounds its wait and collects its
    # own spans instead, so drop both here.
    from repro.obs.spans import Tracer, request_scope, reset_active_tracer, trace_scope
    from repro.resilience.deadline import reset_active_deadline

    reset_active_deadline()
    reset_active_tracer()
    _inject_fault("worker.partition")
    context, factory = _worker_state()
    tracer = (
        Tracer(request_id=request_id or "untraced")
        if collect_spans
        else None
    )
    started = time.perf_counter()
    with request_scope(request_id), trace_scope(tracer):
        if tracer is not None:
            with tracer.span(
                "worker.partition", root=root_id,
                instructions=len(sub.ops),
            ):
                snapshot = solve_subschedule(
                    sub, root_id, context["library"], context["algorithm"],
                    context["backend"], context["options"], factory=factory,
                )
        else:
            snapshot = solve_subschedule(
                sub, root_id, context["library"], context["algorithm"],
                context["backend"], context["options"], factory=factory,
            )
    elapsed = time.perf_counter() - started
    spans = tracer.export_relative() if tracer is not None else None
    return part_index, snapshot, elapsed, spans
