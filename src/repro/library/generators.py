"""Synthetic buffer libraries matching the paper's Section 4 parameters.

The paper evaluates libraries of size 8, 16, 32 and 64 built from a
TSMC 180 nm design kit, with

* driving resistance between 180 and 7000 ohms,
* input capacitance between 0.7 and 23 fF,
* intrinsic delay between 29 and 36.4 ps.

Real libraries trade resistance against capacitance: a stronger buffer
(lower R, wider transistors) has a larger input capacitance.  The
generators below reproduce that trade-off so candidate-list dynamics
(hull sizes, pruning rates) behave like the paper's experiments.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import LibraryError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.units import fF, ps

#: Parameter ranges quoted in Section 4 of the paper.
PAPER_RESISTANCE_RANGE = (180.0, 7000.0)
PAPER_CAPACITANCE_RANGE = (fF(0.7), fF(23.0))
PAPER_INTRINSIC_RANGE = (ps(29.0), ps(36.4))


def paper_library(size: int, jitter: float = 0.0, seed: Optional[int] = None) -> BufferLibrary:
    """A library of ``size`` buffers spanning the paper's parameter ranges.

    Buffers form a geometric strength ladder: driving resistance sweeps
    7000 ohms down to 180 ohms geometrically while input capacitance
    sweeps 0.7 fF up to 23 fF, matching the physical R*C ~ constant
    scaling of a sized inverter chain.  Intrinsic delay grows mildly with
    drive strength across the 29-36.4 ps range.

    Args:
        size: Number of buffer types (the paper uses 8, 16, 32, 64).
        jitter: Optional relative perturbation (e.g. ``0.05`` for 5%)
            applied to every parameter, so that large libraries are not
            perfectly collinear in (R, C).  Requires ``seed`` when > 0
            for reproducibility (a fresh RNG is always used).
        seed: Seed for the jitter RNG.

    Returns:
        A validated :class:`BufferLibrary` of exactly ``size`` types.
    """
    if size < 1:
        raise LibraryError(f"library size must be >= 1, got {size}")
    if jitter < 0.0 or jitter >= 1.0:
        raise LibraryError(f"jitter must be in [0, 1), got {jitter}")

    rng = random.Random(seed)
    r_hi, r_lo = PAPER_RESISTANCE_RANGE[1], PAPER_RESISTANCE_RANGE[0]
    c_lo, c_hi = PAPER_CAPACITANCE_RANGE
    k_lo, k_hi = PAPER_INTRINSIC_RANGE

    buffers = []
    for i in range(size):
        # t runs 0 -> 1 from the weakest to the strongest buffer.
        t = i / (size - 1) if size > 1 else 0.5
        resistance = r_hi * (r_lo / r_hi) ** t
        capacitance = c_lo * (c_hi / c_lo) ** t
        intrinsic = k_lo + (k_hi - k_lo) * t
        if jitter > 0.0:
            resistance *= 1.0 + rng.uniform(-jitter, jitter)
            capacitance *= 1.0 + rng.uniform(-jitter, jitter)
            intrinsic *= 1.0 + rng.uniform(-jitter, jitter)
        buffers.append(
            BufferType(
                name=f"BUF_X{i}",
                driving_resistance=resistance,
                input_capacitance=capacitance,
                intrinsic_delay=intrinsic,
                # Abstract cost grows with drive strength (area proxy).
                cost=float(2 ** (4.0 * t)),
            )
        )
    return BufferLibrary(buffers)


def geometric_library(
    size: int,
    resistance_range: tuple = PAPER_RESISTANCE_RANGE,
    capacitance_range: tuple = PAPER_CAPACITANCE_RANGE,
    intrinsic_range: tuple = PAPER_INTRINSIC_RANGE,
    name_prefix: str = "BUF",
) -> BufferLibrary:
    """A geometric strength ladder over caller-supplied parameter ranges.

    Like :func:`paper_library` but fully parameterized and jitter-free.
    Resistance sweeps from the top of ``resistance_range`` down to its
    bottom; capacitance and intrinsic delay sweep upward.
    """
    if size < 1:
        raise LibraryError(f"library size must be >= 1, got {size}")
    r_lo, r_hi = resistance_range
    c_lo, c_hi = capacitance_range
    k_lo, k_hi = intrinsic_range
    if r_lo <= 0 or r_hi < r_lo:
        raise LibraryError(f"bad resistance range {resistance_range}")
    if c_lo <= 0 or c_hi < c_lo:
        raise LibraryError(f"bad capacitance range {capacitance_range}")

    buffers = []
    for i in range(size):
        t = i / (size - 1) if size > 1 else 0.5
        buffers.append(
            BufferType(
                name=f"{name_prefix}_X{i}",
                driving_resistance=r_hi * (r_lo / r_hi) ** t,
                input_capacitance=c_lo * (c_hi / c_lo) ** t,
                intrinsic_delay=k_lo + (k_hi - k_lo) * t,
                cost=float(2 ** (4.0 * t)),
            )
        )
    return BufferLibrary(buffers)


def uniform_random_library(size: int, seed: int) -> BufferLibrary:
    """A library with parameters drawn independently and uniformly.

    Unlike :func:`paper_library` there is no R-vs-C correlation, so many
    buffers are dominated.  This stresses pruning logic in tests; it is
    not meant to model a real design kit.

    Args:
        size: Number of buffer types.
        seed: RNG seed (mandatory: this generator exists for tests and
            experiments, which must be reproducible).
    """
    if size < 1:
        raise LibraryError(f"library size must be >= 1, got {size}")
    rng = random.Random(seed)
    r_lo, r_hi = PAPER_RESISTANCE_RANGE
    c_lo, c_hi = PAPER_CAPACITANCE_RANGE
    k_lo, k_hi = PAPER_INTRINSIC_RANGE
    buffers = []
    for i in range(size):
        # Log-uniform in R and C keeps small values well represented.
        buffers.append(
            BufferType(
                name=f"RND_X{i}",
                driving_resistance=math.exp(
                    rng.uniform(math.log(r_lo), math.log(r_hi))
                ),
                input_capacitance=math.exp(
                    rng.uniform(math.log(c_lo), math.log(c_hi))
                ),
                intrinsic_delay=rng.uniform(k_lo, k_hi),
                cost=rng.uniform(0.5, 16.0),
            )
        )
    return BufferLibrary(buffers)


def mixed_paper_library(
    size: int,
    inverter_fraction: float = 0.5,
    jitter: float = 0.0,
    seed: Optional[int] = None,
) -> BufferLibrary:
    """A paper-range library mixing buffers and inverters.

    Every second position on the strength ladder (by default) is an
    inverter; inverters get a small electrical edge (90% of the R and K
    of the equally-sized buffer) reflecting that an inverter is one
    stage, not two.  Used by the polarity-aware extension's tests and
    examples.

    Args:
        size: Total number of cells.
        inverter_fraction: Fraction of cells that invert, in [0, 1].
        jitter: As in :func:`paper_library`.
        seed: RNG seed for the jitter.
    """
    if not 0.0 <= inverter_fraction <= 1.0:
        raise LibraryError(
            f"inverter_fraction must be in [0, 1], got {inverter_fraction}"
        )
    base = paper_library(size, jitter=jitter, seed=seed)
    num_inverters = round(size * inverter_fraction)
    # Spread inverters evenly across the strength ladder.
    inverter_slots = set()
    if num_inverters:
        step = size / num_inverters
        inverter_slots = {int(i * step) for i in range(num_inverters)}
    cells = []
    for i, cell in enumerate(base.buffers):
        if i in inverter_slots:
            cells.append(
                BufferType(
                    name=f"INV_X{i}",
                    driving_resistance=cell.driving_resistance * 0.9,
                    input_capacitance=cell.input_capacitance,
                    intrinsic_delay=cell.intrinsic_delay * 0.9,
                    cost=cell.cost * 0.8,
                    inverting=True,
                )
            )
        else:
            cells.append(cell)
    return BufferLibrary(cells)
