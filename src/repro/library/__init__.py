"""Buffer libraries: buffer types, library containers, synthesis, clustering.

A :class:`~repro.library.buffer_type.BufferType` models a (non-inverting)
repeater with the linear delay model the paper uses: inserting buffer type
``B_i`` driving downstream capacitance ``C`` costs ``K_i + R_i * C`` and
presents input capacitance ``C_i`` upstream.

:class:`~repro.library.library.BufferLibrary` is an immutable, validated
collection of buffer types with the two sorted views the O(bn^2) algorithm
needs (by non-increasing driving resistance and by non-decreasing input
capacitance), both precomputed once per library.
"""

from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.library.generators import (
    paper_library,
    geometric_library,
    mixed_paper_library,
    uniform_random_library,
)
from repro.library.clustering import cluster_library

__all__ = [
    "BufferType",
    "BufferLibrary",
    "paper_library",
    "geometric_library",
    "mixed_paper_library",
    "uniform_random_library",
    "cluster_library",
]
