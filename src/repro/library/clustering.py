"""Buffer-library clustering (Alpert, Gandham, Neves & Quay, ICCAD 2000).

The paper's introduction motivates the O(bn^2) algorithm by noting that
the previous workaround for huge libraries was to *cluster* the library
down to a few representatives, which "is often degraded accordingly" in
solution quality.  This module implements that baseline so the trade-off
can be measured (``benchmarks/bench_clustering.py``).

The clustering is a k-means in a normalized feature space of
``(log R, log C, K)``: log scales because both parameters span more than
an order of magnitude, and each dimension is standardized so no single
parameter dominates the distance.  Each cluster is represented by the
member closest to the centroid (a real library cell, never an average
that does not exist in the design kit).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.errors import LibraryError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary


def _features(buffers: Sequence[BufferType]) -> List[List[float]]:
    """Standardized (log R, log C, K) feature vectors."""
    raw = [
        [
            math.log(b.driving_resistance),
            math.log(b.input_capacitance) if b.input_capacitance > 0 else -60.0,
            b.intrinsic_delay,
        ]
        for b in buffers
    ]
    dims = len(raw[0])
    means = [sum(row[d] for row in raw) / len(raw) for d in range(dims)]
    stds = []
    for d in range(dims):
        var = sum((row[d] - means[d]) ** 2 for row in raw) / len(raw)
        stds.append(math.sqrt(var) or 1.0)
    return [
        [(row[d] - means[d]) / stds[d] for d in range(dims)] for row in raw
    ]


def _squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def cluster_library(
    library: BufferLibrary,
    target_size: int,
    seed: int = 0,
    iterations: int = 50,
) -> BufferLibrary:
    """Reduce ``library`` to ``target_size`` representative buffers.

    Args:
        library: The full library.
        target_size: Desired number of representatives, ``1 <= target
            <= len(library)``.
        seed: RNG seed for k-means++ style initialization.
        iterations: Maximum Lloyd iterations.

    Returns:
        A new :class:`BufferLibrary` whose members are a subset of
        ``library`` (real cells, one per cluster).
    """
    if not 1 <= target_size <= library.size:
        raise LibraryError(
            f"target size must be in [1, {library.size}], got {target_size}"
        )
    if target_size == library.size:
        return BufferLibrary(library.buffers)

    buffers = list(library.buffers)
    points = _features(buffers)
    rng = random.Random(seed)

    # k-means++ initialization: spread the initial centroids out.
    centroids = [list(points[rng.randrange(len(points))])]
    while len(centroids) < target_size:
        weights = [
            min(_squared_distance(p, c) for c in centroids) for p in points
        ]
        total = sum(weights)
        if total == 0.0:
            # All remaining points coincide with a centroid; pick any.
            centroids.append(list(points[rng.randrange(len(points))]))
            continue
        pick = rng.uniform(0.0, total)
        acc = 0.0
        for p, w in zip(points, weights):
            acc += w
            if acc >= pick:
                centroids.append(list(p))
                break

    assignment = [0] * len(points)
    for _ in range(iterations):
        changed = False
        for i, p in enumerate(points):
            best = min(
                range(len(centroids)),
                key=lambda c: _squared_distance(p, centroids[c]),
            )
            if best != assignment[i]:
                assignment[i] = best
                changed = True
        for c in range(len(centroids)):
            members = [points[i] for i in range(len(points)) if assignment[i] == c]
            if members:
                centroids[c] = [
                    sum(m[d] for m in members) / len(members)
                    for d in range(len(members[0]))
                ]
        if not changed:
            break

    representatives: List[BufferType] = []
    for c in range(len(centroids)):
        member_ids = [i for i in range(len(points)) if assignment[i] == c]
        if not member_ids:
            continue
        closest = min(
            member_ids, key=lambda i: _squared_distance(points[i], centroids[c])
        )
        representatives.append(buffers[closest])

    # Empty clusters can leave us short; top up with the buffers farthest
    # from any chosen representative so coverage stays broad.
    chosen = {b.name for b in representatives}
    while len(representatives) < target_size:
        remaining = [i for i, b in enumerate(buffers) if b.name not in chosen]
        rep_points = [points[i] for i, b in enumerate(buffers) if b.name in chosen]
        farthest = max(
            remaining,
            key=lambda i: min(_squared_distance(points[i], rp) for rp in rep_points),
        )
        representatives.append(buffers[farthest])
        chosen.add(buffers[farthest].name)

    return BufferLibrary(representatives)
