"""Immutable buffer-library container with precomputed sorted views."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import LibraryError
from repro.library.buffer_type import BufferType


class BufferLibrary:
    """An immutable collection of :class:`BufferType` objects.

    The O(bn^2) algorithm needs the library in two orders:

    * non-increasing driving resistance (the order in which the monotone
      hull walk visits buffer types, Lemma 1), and
    * non-decreasing input capacitance (the order in which new buffered
      candidates are merged back into the candidate list, Theorem 2).

    Both orders are computed once at construction so per-node work never
    sorts anything.

    Args:
        buffers: The buffer types. Names must be unique and at least one
            buffer is required.
    """

    def __init__(self, buffers: Iterable[BufferType]) -> None:
        self._buffers: Tuple[BufferType, ...] = tuple(buffers)
        if not self._buffers:
            raise LibraryError("a buffer library must contain at least one buffer")
        names = [b.name for b in self._buffers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise LibraryError(f"duplicate buffer names in library: {dupes}")

        # Non-increasing R; ties broken by non-decreasing C so the hull
        # walk never has to move its pointer backwards on a tie.
        self._by_resistance_desc: Tuple[BufferType, ...] = tuple(
            sorted(
                self._buffers,
                key=lambda b: (-b.driving_resistance, b.input_capacitance),
            )
        )
        self._by_capacitance_asc: Tuple[BufferType, ...] = tuple(
            sorted(self._buffers, key=lambda b: b.input_capacitance)
        )

    @property
    def size(self) -> int:
        """Number of buffer types, the paper's ``b``."""
        return len(self._buffers)

    @property
    def buffers(self) -> Tuple[BufferType, ...]:
        """The buffer types in construction order."""
        return self._buffers

    @property
    def by_resistance_desc(self) -> Tuple[BufferType, ...]:
        """Buffer types sorted by non-increasing driving resistance."""
        return self._by_resistance_desc

    @property
    def by_capacitance_asc(self) -> Tuple[BufferType, ...]:
        """Buffer types sorted by non-decreasing input capacitance."""
        return self._by_capacitance_asc

    def __len__(self) -> int:
        return len(self._buffers)

    def __iter__(self) -> Iterator[BufferType]:
        return iter(self._buffers)

    def __getitem__(self, index: int) -> BufferType:
        return self._buffers[index]

    def __contains__(self, buffer: object) -> bool:
        return buffer in self._buffers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BufferLibrary):
            return NotImplemented
        return self._buffers == other._buffers

    def __hash__(self) -> int:
        return hash(self._buffers)

    def __repr__(self) -> str:
        return f"BufferLibrary({list(self._buffers)!r})"

    def get(self, name: str) -> BufferType:
        """Return the buffer type called ``name``.

        Raises:
            LibraryError: If no buffer has that name.
        """
        for buffer in self._buffers:
            if buffer.name == name:
                return buffer
        raise LibraryError(f"no buffer named {name!r} in library")

    def subset(self, names: Sequence[str]) -> "BufferLibrary":
        """Return a new library restricted to the given buffer names."""
        return BufferLibrary([self.get(name) for name in names])

    def without_dominated(self) -> "BufferLibrary":
        """Return a library with dominated buffer types removed.

        Buffer ``x`` is dominated when another buffer is no worse in all
        of driving resistance, input capacitance and intrinsic delay (and
        strictly better in at least one, or earlier in library order on an
        exact tie).  Dominated buffers can be dropped without changing the
        optimal slack; doing so shrinks ``b``.
        """
        kept: List[BufferType] = []
        for i, candidate in enumerate(self._buffers):
            dominated = False
            for j, other in enumerate(self._buffers):
                if i == j:
                    continue
                if other.dominates(candidate) and not (
                    candidate.dominates(other) and i < j
                ):
                    dominated = True
                    break
            if not dominated:
                kept.append(candidate)
        return BufferLibrary(kept)

    def resistance_range(self) -> Tuple[float, float]:
        """(min, max) driving resistance over the library, ohms."""
        resistances = [b.driving_resistance for b in self._buffers]
        return min(resistances), max(resistances)

    def capacitance_range(self) -> Tuple[float, float]:
        """(min, max) input capacitance over the library, farads."""
        capacitances = [b.input_capacitance for b in self._buffers]
        return min(capacitances), max(capacitances)
