"""A single buffer type under the linear delay model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import LibraryError
from repro.units import to_fF, to_ps


@dataclass(frozen=True)
class BufferType:
    """A buffer (or inverter) characterized by the linear delay model.

    Inserting this buffer in front of a subtree with downstream
    capacitance ``C_down`` adds delay ``intrinsic_delay +
    driving_resistance * C_down`` and presents ``input_capacitance``
    to the upstream net.

    Attributes:
        name: Human-readable identifier, unique within a library.
        driving_resistance: Output resistance ``R_b`` in ohms.
        input_capacitance: Input pin capacitance ``C_b`` in farads.
        intrinsic_delay: Intrinsic delay ``K_b`` in seconds.
        cost: Abstract cost (area, power, ...) used only by the
            cost-bounded extension; the DATE-2005 objective ignores it.
        inverting: Whether the cell inverts the signal.  The DATE-2005
            algorithms treat all cells as non-inverting; the
            polarity-aware extension (:mod:`repro.core.polarity`)
            honours this flag and sink polarities.
        max_load: Optional maximum capacitance the cell may drive
            (farads); ``None`` means unconstrained.  Honoured by every
            algorithm: candidates exceeding it are never buffered with
            this cell.
    """

    name: str
    driving_resistance: float
    input_capacitance: float
    intrinsic_delay: float
    cost: float = field(default=1.0)
    inverting: bool = field(default=False)
    max_load: Optional[float] = field(default=None)

    def __post_init__(self) -> None:
        if self.driving_resistance <= 0.0:
            raise LibraryError(
                f"buffer {self.name!r}: driving resistance must be positive, "
                f"got {self.driving_resistance}"
            )
        if self.input_capacitance < 0.0:
            raise LibraryError(
                f"buffer {self.name!r}: input capacitance must be non-negative, "
                f"got {self.input_capacitance}"
            )
        if self.intrinsic_delay < 0.0:
            raise LibraryError(
                f"buffer {self.name!r}: intrinsic delay must be non-negative, "
                f"got {self.intrinsic_delay}"
            )
        if self.cost < 0.0:
            raise LibraryError(
                f"buffer {self.name!r}: cost must be non-negative, got {self.cost}"
            )
        if self.max_load is not None and self.max_load <= 0.0:
            raise LibraryError(
                f"buffer {self.name!r}: max_load must be positive or None, "
                f"got {self.max_load}"
            )

    def delay(self, downstream_capacitance: float) -> float:
        """Buffer delay driving ``downstream_capacitance`` (farads), seconds."""
        return self.intrinsic_delay + self.driving_resistance * downstream_capacitance

    def dominates(self, other: "BufferType") -> bool:
        """True if this buffer is at least as good as ``other`` in R, C, K
        and load limit, with the same polarity behaviour.

        A dominated buffer can never appear in an optimal solution that
        its dominator could not match, so libraries may drop it.
        Cost is intentionally ignored: with the cost extension a cheaper
        but electrically worse buffer can still be useful.
        """
        if self.inverting != other.inverting:
            return False
        # self must be able to drive every load other can.
        if self.max_load is not None and (
            other.max_load is None or self.max_load < other.max_load
        ):
            return False
        return (
            self.driving_resistance <= other.driving_resistance
            and self.input_capacitance <= other.input_capacitance
            and self.intrinsic_delay <= other.intrinsic_delay
        )

    def __str__(self) -> str:
        kind = "INV" if self.inverting else "BUF"
        return (
            f"{self.name}[{kind}](R={self.driving_resistance:.0f}ohm, "
            f"C={to_fF(self.input_capacitance):.2f}fF, "
            f"K={to_ps(self.intrinsic_delay):.1f}ps)"
        )
