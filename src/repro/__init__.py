"""Optimal buffer insertion with b buffer types in O(b n^2) time.

A complete reproduction of Li & Shi, "An O(bn^2) Time Algorithm for
Optimal Buffer Insertion with b Buffer Types" (DATE 2005), including the
O(b^2 n^2) baseline of Lillis, Cheng & Lin, van Ginneken's classic
single-type algorithm, and all substrates: RC routing trees, Elmore
timing, buffer libraries, wire segmenting and workload generators.

Quickstart::

    from repro import (
        Driver, BufferLibrary, insert_buffers, paper_library, two_pin_net,
    )
    from repro.units import fF, ps

    net = two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(900.0),
                      driver=Driver(resistance=180.0),
                      num_segments=32)
    library = paper_library(16)
    result = insert_buffers(net, library)           # the O(bn^2) algorithm
    print(result.slack, result.num_buffers)
"""

from repro.core import (
    BufferingResult,
    CompiledNet,
    DPStats,
    InsertionAlgorithm,
    algorithm_names,
    available_algorithms,
    compile_net,
    get_algorithm,
    insert_buffers,
    insert_buffers_brute_force,
    insert_buffers_fast,
    insert_buffers_lillis,
    insert_buffers_van_ginneken,
    insert_buffers_with_inverters,
    register_algorithm,
    register_store_backend,
    solve_many,
    SolverPool,
    store_backend_names,
    verify_polarities,
)
from repro.library import (
    BufferLibrary,
    BufferType,
    cluster_library,
    geometric_library,
    mixed_paper_library,
    paper_library,
    uniform_random_library,
)
from repro.timing import (
    TimingReport,
    evaluate_assignment,
    evaluate_slack,
    elmore_delays,
    unbuffered_slack,
)
from repro.tree import (
    Driver,
    RoutingTree,
    balanced_tree_net,
    caterpillar_net,
    h_tree_net,
    load_tree,
    prim_steiner_net,
    random_tree_net,
    save_tree,
    segment_tree,
    star_net,
    two_pin_net,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BufferingResult",
    "DPStats",
    "InsertionAlgorithm",
    "register_algorithm",
    "get_algorithm",
    "algorithm_names",
    "available_algorithms",
    "register_store_backend",
    "store_backend_names",
    "solve_many",
    "SolverPool",
    "CompiledNet",
    "compile_net",
    "insert_buffers",
    "insert_buffers_fast",
    "insert_buffers_lillis",
    "insert_buffers_van_ginneken",
    "insert_buffers_brute_force",
    "insert_buffers_with_inverters",
    "verify_polarities",
    # library
    "BufferType",
    "BufferLibrary",
    "paper_library",
    "geometric_library",
    "mixed_paper_library",
    "uniform_random_library",
    "cluster_library",
    # timing
    "TimingReport",
    "evaluate_assignment",
    "evaluate_slack",
    "elmore_delays",
    "unbuffered_slack",
    # tree
    "Driver",
    "RoutingTree",
    "two_pin_net",
    "caterpillar_net",
    "balanced_tree_net",
    "random_tree_net",
    "star_net",
    "h_tree_net",
    "prim_steiner_net",
    "segment_tree",
    "save_tree",
    "load_tree",
]
