"""Human-readable reports: net summaries, solution tables, tree sketches.

Everything here is plain-text formatting over the public data model —
no algorithmic logic — so the CLI and examples can present results
without each reinventing table code.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.core.solution import BufferingResult
from repro.timing.buffered import TimingReport, evaluate_assignment
from repro.timing.elmore import unbuffered_slack
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.units import to_fF, to_ps


def describe_net(tree: RoutingTree) -> str:
    """A one-paragraph summary of a routing tree."""
    lines = [
        f"nodes:            {tree.num_nodes}",
        f"sinks (m):        {tree.num_sinks}",
        f"buffer positions (n): {tree.num_buffer_positions}",
        f"tree depth:       {tree.depth()} edges",
        f"total wire cap:   {to_fF(tree.total_wire_capacitance()):.1f} fF",
    ]
    if tree.total_wire_length() > 0:
        lines.append(f"total wirelength: {tree.total_wire_length():.0f} um")
    if tree.driver is not None:
        lines.append(
            f"driver:           R={tree.driver.resistance:.0f} ohm, "
            f"K={to_ps(tree.driver.intrinsic_delay):.1f} ps"
        )
    negative = sum(1 for s in tree.sinks() if s.polarity == -1)
    if negative:
        lines.append(f"negative-polarity sinks: {negative}")
    return "\n".join(lines)


def describe_result(
    tree: RoutingTree,
    result: BufferingResult,
    driver: Optional[Driver] = None,
) -> str:
    """A solution report: slack improvement, buffers used, verification."""
    base = unbuffered_slack(tree, driver)
    lines = [
        f"algorithm:        {result.stats.algorithm}",
        f"unbuffered slack: {to_ps(base):10.1f} ps",
        f"optimized slack:  {to_ps(result.slack):10.1f} ps  "
        f"(improvement {to_ps(result.slack - base):+.1f} ps)",
        f"buffers inserted: {result.num_buffers}",
        f"driver load:      {to_fF(result.driver_load):.1f} fF",
        f"dp runtime:       {result.stats.runtime_seconds * 1e3:.1f} ms "
        f"(peak list {result.stats.peak_list_length}, "
        f"{result.stats.candidates_generated} candidates)",
    ]
    counts = result.buffer_counts_by_type()
    if counts:
        usage = ", ".join(
            f"{name} x{count}" for name, count in sorted(counts.items())
        )
        lines.append(f"usage by type:    {usage}")
    return "\n".join(lines)


def sink_slack_table(
    report: TimingReport, tree: RoutingTree, limit: int = 20
) -> str:
    """Per-sink slack table, most critical first."""
    rows = sorted(report.sink_slacks.items(), key=lambda item: item[1])
    lines = [f"{'sink':<14}{'delay (ps)':>12}{'rat (ps)':>10}{'slack (ps)':>12}"]
    lines.append("-" * len(lines[0]))
    for sink_id, slack in rows[:limit]:
        node = tree.node(sink_id)
        lines.append(
            f"{node.name or sink_id:<14}"
            f"{to_ps(report.sink_delays[sink_id]):>12.1f}"
            f"{to_ps(node.required_arrival):>10.1f}"
            f"{to_ps(slack):>12.1f}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more sinks")
    return "\n".join(lines)


def render_tree(
    tree: RoutingTree,
    result: Optional[BufferingResult] = None,
    max_nodes: int = 200,
) -> str:
    """An indented ASCII sketch of the tree, marking buffers.

    Nodes beyond ``max_nodes`` are elided (big segmented nets would
    print thousands of wire vertices).
    """
    assignment = result.assignment if result is not None else {}
    lines: List[str] = []
    stack: List[tuple] = [(tree.root_id, 0)]
    printed = 0
    while stack:
        node_id, depth = stack.pop()
        if printed >= max_nodes:
            lines.append("  ... (truncated)")
            break
        node = tree.node(node_id)
        marker = ""
        if node.is_sink:
            marker = (
                f"  sink cap={to_fF(node.capacitance):.1f}fF "
                f"rat={to_ps(node.required_arrival):.0f}ps"
            )
            if node.polarity == -1:
                marker += " (inverted)"
        elif node_id in assignment:
            marker = f"  <= {assignment[node_id].name}"
        elif node.is_buffer_position:
            marker = "  ."
        label = node.name or f"n{node_id}"
        lines.append("  " * depth + label + marker)
        printed += 1
        for child in reversed(tree.children_of(node_id)):
            stack.append((child, depth + 1))
    return "\n".join(lines)


def full_report(
    tree: RoutingTree,
    result: BufferingResult,
    driver: Optional[Driver] = None,
    sink_limit: int = 10,
) -> str:
    """Net summary + solution summary + critical-sink table."""
    timing = evaluate_assignment(tree, result.assignment, driver)
    sections = [
        "== net ==",
        describe_net(tree),
        "",
        "== solution ==",
        describe_result(tree, result, driver),
        "",
        "== critical sinks ==",
        sink_slack_table(timing, tree, limit=sink_limit),
    ]
    return "\n".join(sections)
