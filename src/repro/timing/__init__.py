"""Timing analysis: Elmore wire delay + linear buffer delay.

Two analyses live here:

* :mod:`repro.timing.elmore` — downstream capacitances and per-sink
  Elmore delays of a plain (unbuffered) RC tree.
* :mod:`repro.timing.buffered` — full staged analysis of a tree with an
  explicit buffer assignment.  This is written independently of the
  dynamic-programming candidate algebra and serves as the correctness
  oracle for every algorithm in :mod:`repro.core`: the slack predicted by
  a DP candidate must equal the slack this module measures for the
  reconstructed assignment.
"""

from repro.timing.elmore import (
    downstream_capacitance,
    elmore_delays,
    unbuffered_slack,
)
from repro.timing.buffered import (
    TimingReport,
    evaluate_assignment,
    evaluate_slack,
)
from repro.timing.slack_map import SlackMap, compute_slack_map

__all__ = [
    "downstream_capacitance",
    "elmore_delays",
    "unbuffered_slack",
    "TimingReport",
    "evaluate_assignment",
    "evaluate_slack",
    "SlackMap",
    "compute_slack_map",
]
