"""Per-node slack maps: where in the tree the timing is lost.

Standard static-timing bookkeeping specialized to one net: propagate
arrival times down from the driver and required times up from the
sinks; the difference is each node's slack, and nodes whose slack
equals the worst slack form the *critical path*.  Useful for examples,
reports and for sanity-checking solutions (the critical path must run
from the driver to the critical sink).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.library.buffer_type import BufferType
from repro.timing.buffered import _stage_capacitances
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


@dataclass(frozen=True)
class SlackMap:
    """Arrival / required / slack per node for one buffered net.

    Attributes:
        arrival: Signal arrival time at each node's driving point.
        required: Latest allowed arrival there (propagated from sinks).
        slack: ``required - arrival`` per node.
        worst_slack: ``min(slack over sinks)`` — equals the
            :class:`TimingReport` slack for the same assignment.
    """

    arrival: Mapping[int, float]
    required: Mapping[int, float]
    slack: Mapping[int, float]
    worst_slack: float

    def critical_path(self, tree: RoutingTree, tolerance: float = 1e-15) -> List[int]:
        """Node ids from the root to the critical sink.

        The path follows, at each step, the child whose slack equals
        the worst slack (within ``tolerance`` relative).
        """
        scale = max(1.0, abs(self.worst_slack))
        path = [tree.root_id]
        while True:
            children = [
                child for child in tree.children_of(path[-1])
                if abs(self.slack[child] - self.worst_slack) <= tolerance * scale
            ]
            if not children:
                break
            path.append(children[0])
        return path


def compute_slack_map(
    tree: RoutingTree,
    assignment: Optional[Mapping[int, BufferType]] = None,
    driver: Optional[Driver] = None,
) -> SlackMap:
    """Arrival/required/slack at every node under ``assignment``.

    Arrival times mirror :func:`repro.timing.buffered.evaluate_assignment`
    exactly; required times are propagated upward through the same
    stage delays, so for every node ``slack >= worst_slack`` with
    equality exactly on the critical path.
    """
    assignment = dict(assignment) if assignment else {}
    driver = driver if driver is not None else tree.driver
    cap_below, cap_presented = _stage_capacitances(tree, assignment)

    root = tree.root_id
    arrival: Dict[int, float] = {
        root: driver.delay(cap_presented[root]) if driver else 0.0
    }
    # Stage delay of the edge into each node (wire + optional buffer).
    stage_delay: Dict[int, float] = {}
    for node_id in tree.preorder():
        if node_id == root:
            continue
        edge = tree.edge_to(node_id)
        delay = edge.resistance * (
            edge.capacitance / 2.0 + cap_presented[node_id]
        )
        buffer = assignment.get(node_id)
        if buffer is not None:
            delay += buffer.delay(cap_below[node_id])
        stage_delay[node_id] = delay
        arrival[node_id] = arrival[edge.parent] + delay

    required: Dict[int, float] = {}
    for node_id in tree.postorder():
        node = tree.node(node_id)
        if node.is_sink:
            required[node_id] = node.required_arrival
        else:
            required[node_id] = min(
                required[child] - stage_delay[child]
                for child in tree.children_of(node_id)
            )

    slack = {
        node_id: required[node_id] - arrival[node_id] for node_id in arrival
    }
    worst = min(
        slack[sink.node_id] for sink in tree.sinks()
    )
    return SlackMap(
        arrival=arrival, required=required, slack=slack, worst_slack=worst
    )
