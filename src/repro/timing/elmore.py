"""Elmore delay analysis of unbuffered RC trees.

The Elmore delay of the wire from ``u`` to ``v`` with lumped resistance
``R_e`` and capacitance ``C_e`` is ``R_e * (C_e / 2 + C_down(v))`` where
``C_down(v)`` is the total capacitance hanging below ``v`` (paper Eq. for
``D(e)``): the wire's own capacitance is modelled as a pi-segment, half
on each side.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TimingError
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


def downstream_capacitance(tree: RoutingTree) -> Dict[int, float]:
    """Total capacitance below (and at) each node of an unbuffered tree.

    ``result[v]`` includes ``v``'s own sink capacitance, the wire
    capacitance of every edge below ``v`` and every sink capacitance in
    the subtree — but *not* the capacitance of the edge arriving at ``v``.
    """
    caps: Dict[int, float] = {}
    for node_id in tree.postorder():
        node = tree.node(node_id)
        total = node.capacitance if node.is_sink else 0.0
        for child in tree.children_of(node_id):
            edge = tree.edge_to(child)
            total += edge.capacitance + caps[child]
        caps[node_id] = total
    return caps


def elmore_delays(
    tree: RoutingTree, driver: Optional[Driver] = None
) -> Dict[int, float]:
    """Per-sink Elmore delay of the unbuffered tree, in seconds.

    Args:
        tree: The net.
        driver: Source driver; defaults to ``tree.driver``.  When absent
            the delay is measured from the source pin with an ideal
            (zero-resistance) driver.

    Returns:
        Mapping from sink node id to its delay from the driver input.
    """
    driver = driver if driver is not None else tree.driver
    caps = downstream_capacitance(tree)

    arrival: Dict[int, float] = {}
    arrival[tree.root_id] = driver.delay(caps[tree.root_id]) if driver else 0.0
    for node_id in tree.preorder():
        if node_id == tree.root_id:
            continue
        edge = tree.edge_to(node_id)
        wire_delay = edge.resistance * (edge.capacitance / 2.0 + caps[node_id])
        arrival[node_id] = arrival[edge.parent] + wire_delay

    return {sink.node_id: arrival[sink.node_id] for sink in tree.sinks()}


def unbuffered_slack(tree: RoutingTree, driver: Optional[Driver] = None) -> float:
    """Slack of the tree with no buffers inserted.

    ``min over sinks (required_arrival - delay)``; the baseline every
    buffering solution is compared against.
    """
    delays = elmore_delays(tree, driver)
    if not delays:
        raise TimingError("tree has no sinks")
    return min(
        tree.node(sink_id).required_arrival - delay
        for sink_id, delay in delays.items()
    )
