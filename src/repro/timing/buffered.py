"""Staged Elmore analysis of a tree with an explicit buffer assignment.

A buffer assigned to vertex ``v`` sits between the wire arriving at ``v``
and the subtree below ``v``: upstream sees only the buffer's input
capacitance, and the signal pays the buffer delay ``K + R * C_down(v)``
before continuing into the subtree.  This matches the candidate algebra
of the dynamic programs (buffering happens at the vertex, below its
incoming edge) and is implemented here from scratch — without candidate
lists — so it can act as an independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import TimingError
from repro.library.buffer_type import BufferType
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.units import to_ps


@dataclass(frozen=True)
class TimingReport:
    """Result of evaluating a buffer assignment.

    Attributes:
        slack: Worst slack over all sinks, seconds.
        sink_delays: Per-sink delay from the driver input, seconds.
        sink_slacks: Per-sink ``required_arrival - delay``.
        critical_sink: Node id of the sink with the worst slack.
        driver_load: Capacitance presented to the driver, farads.
        num_buffers: Number of buffers in the assignment.
        total_buffer_cost: Sum of assigned buffers' ``cost`` attributes.
    """

    slack: float
    sink_delays: Mapping[int, float] = field(repr=False)
    sink_slacks: Mapping[int, float] = field(repr=False)
    critical_sink: int = -1
    driver_load: float = 0.0
    num_buffers: int = 0
    total_buffer_cost: float = 0.0

    def __str__(self) -> str:
        return (
            f"TimingReport(slack={to_ps(self.slack):.2f}ps, "
            f"buffers={self.num_buffers}, critical_sink={self.critical_sink})"
        )


def _validate_assignment(
    tree: RoutingTree, assignment: Mapping[int, BufferType]
) -> None:
    for node_id, buffer in assignment.items():
        node = tree.node(node_id)
        if not node.is_buffer_position:
            raise TimingError(
                f"node {node_id} is not a buffer position; cannot assign "
                f"buffer {buffer.name!r}"
            )
        if not node.permits(buffer.name):
            raise TimingError(
                f"buffer {buffer.name!r} is not allowed at node {node_id}"
            )


def _check_load_limits(
    assignment: Mapping[int, BufferType], cap_below: Mapping[int, float]
) -> None:
    for node_id, buffer in assignment.items():
        if buffer.max_load is not None and cap_below[node_id] > buffer.max_load:
            raise TimingError(
                f"buffer {buffer.name!r} at node {node_id} drives "
                f"{cap_below[node_id]:.3e} F, above its max_load "
                f"{buffer.max_load:.3e} F"
            )


def _stage_capacitances(
    tree: RoutingTree, assignment: Mapping[int, BufferType]
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """(cap_below, cap_presented) for every node.

    ``cap_below[v]`` is the capacitance the driving point at ``v`` sees:
    the subtree below ``v`` cut at buffer inputs.  ``cap_presented[v]``
    is what ``v`` shows to the wire above it: the buffer's input
    capacitance when one is assigned at ``v``, else ``cap_below[v]``.
    """
    cap_below: Dict[int, float] = {}
    cap_presented: Dict[int, float] = {}
    for node_id in tree.postorder():
        node = tree.node(node_id)
        total = node.capacitance if node.is_sink else 0.0
        for child in tree.children_of(node_id):
            edge = tree.edge_to(child)
            total += edge.capacitance + cap_presented[child]
        cap_below[node_id] = total
        buffer = assignment.get(node_id)
        cap_presented[node_id] = (
            buffer.input_capacitance if buffer is not None else total
        )
    return cap_below, cap_presented


def evaluate_assignment(
    tree: RoutingTree,
    assignment: Optional[Mapping[int, BufferType]] = None,
    driver: Optional[Driver] = None,
    enforce_load_limits: bool = True,
) -> TimingReport:
    """Measure the timing of ``tree`` under a buffer assignment.

    Args:
        tree: The net.
        assignment: Mapping from node id to the buffer type inserted
            there.  ``None`` or ``{}`` evaluates the unbuffered net.
        driver: Source driver; defaults to ``tree.driver``; when both are
            absent an ideal driver (zero delay) is assumed.
        enforce_load_limits: Reject assignments where a buffer drives
            more than its ``max_load`` (set false to measure an illegal
            assignment anyway, e.g. for what-if analysis).

    Returns:
        A :class:`TimingReport`.

    Raises:
        TimingError: If the assignment uses a vertex that is not a legal
            buffer position, a buffer type forbidden there, or (when
            enforced) a buffer above its load limit.
    """
    assignment = dict(assignment) if assignment else {}
    driver = driver if driver is not None else tree.driver
    _validate_assignment(tree, assignment)

    cap_below, cap_presented = _stage_capacitances(tree, assignment)
    if enforce_load_limits:
        _check_load_limits(assignment, cap_below)

    # Arrival time at each node's *driving point*: after the buffer when
    # one is assigned there, after the driver at the root.
    arrival: Dict[int, float] = {}
    root = tree.root_id
    arrival[root] = driver.delay(cap_presented[root]) if driver else 0.0

    for node_id in tree.preorder():
        if node_id == root:
            continue
        edge = tree.edge_to(node_id)
        time_at_input = arrival[edge.parent] + edge.resistance * (
            edge.capacitance / 2.0 + cap_presented[node_id]
        )
        buffer = assignment.get(node_id)
        if buffer is not None:
            time_at_input += buffer.delay(cap_below[node_id])
        arrival[node_id] = time_at_input

    sink_delays: Dict[int, float] = {}
    sink_slacks: Dict[int, float] = {}
    worst_slack = float("inf")
    critical = -1
    for sink in tree.sinks():
        delay = arrival[sink.node_id]
        slack = sink.required_arrival - delay
        sink_delays[sink.node_id] = delay
        sink_slacks[sink.node_id] = slack
        if slack < worst_slack:
            worst_slack = slack
            critical = sink.node_id

    return TimingReport(
        slack=worst_slack,
        sink_delays=sink_delays,
        sink_slacks=sink_slacks,
        critical_sink=critical,
        driver_load=cap_presented[root],
        num_buffers=len(assignment),
        total_buffer_cost=sum(b.cost for b in assignment.values()),
    )


def evaluate_slack(
    tree: RoutingTree,
    assignment: Optional[Mapping[int, BufferType]] = None,
    driver: Optional[Driver] = None,
) -> float:
    """Shorthand for ``evaluate_assignment(...).slack``."""
    return evaluate_assignment(tree, assignment, driver).slack
