"""The sampling kernel profiler: per-op wall time from any strategy.

:class:`KernelProfiler` measures where kernel time goes — ``sink`` /
``wire`` / ``merge`` / ``buffer`` wall seconds and call counts, plus
peak candidate-list length — at the interpreter loop, so it works for
every execution strategy: the object and soa stores, the walk and
compiled paths, batch-axis groups, splice replays and partitioned
workers.  It replaces the object-backend-only timing wrappers that
``experiments/profiling.py`` used to build by hand (that module is now
a thin shim over this one).

It is **opt-in and ambient**: :func:`profile_scope` installs a profiler
in a thread-local slot exactly as ``deadline_scope`` installs a
deadline; each interpreter calls :func:`instrument_ops` once at entry,
which returns the op callables *unchanged* (plus a ``None`` range hook)
when no profiler is active — the instruction stream executed with
profiling off is identical to the uninstrumented one, which is what
keeps the disabled-overhead gate in ``benchmarks/bench_obs.py`` honest.

When a profiler *and* a tracer are both active, sampled instruction
ranges (1 in :attr:`KernelProfiler.sample_every`) emit
``kernel.wire`` / ``kernel.merge`` / ``kernel.buffer`` spans into the
trace, so Perfetto shows where inside the interpreter a slow range
spent its time without paying span overhead on every range.

Independent of any profiler, two **always-on** registry histograms are
fed once per solve from :class:`~repro.core.solution.DPStats`
(:func:`record_dp_stats`) and once per batch-axis group
(:func:`record_lane_count`) — one histogram observation per solve, not
per instruction.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.obs.metrics import (
    LANE_BUCKETS,
    LIST_LENGTH_BUCKETS,
    Histogram,
    default_registry,
)
from repro.obs.spans import Tracer, active_tracer

__all__ = [
    "KernelProfiler",
    "active_profiler",
    "instrument_ops",
    "profile_scope",
    "record_dp_stats",
    "record_lane_count",
    "reset_active_profiler",
]

_local = threading.local()

#: When ``True``, :func:`active_profiler`, :func:`instrument_ops` and
#: the always-on histogram feeds short-circuit to no-ops.  Only
#: ``benchmarks/bench_obs.py`` sets this, to measure the cost of the
#: observability entry checks themselves against a bypassed baseline.
_BYPASS = False

_OPS = ("sink", "wire", "merge", "buffer")


def set_bypass(flag: bool) -> None:
    """Benchmark-only switch; see :data:`_BYPASS`."""
    global _BYPASS
    _BYPASS = bool(flag)


def active_profiler() -> Optional["KernelProfiler"]:
    """The profiler installed on this thread, or ``None``."""
    if _BYPASS:
        return None
    return getattr(_local, "profiler", None)


def reset_active_profiler() -> None:
    """Forget any profiler installed on this thread (worker entry)."""
    _local.profiler = None


@contextmanager
def profile_scope(
    profiler: Optional["KernelProfiler"], flush: bool = True
) -> Iterator[Optional["KernelProfiler"]]:
    """Install ``profiler`` as this thread's active kernel profiler.

    ``None`` keeps whatever profiler is already active; the previous
    one is restored on exit.  With ``flush=True`` (the default) the
    profiler's totals are folded into the process-wide metrics registry
    when the scope closes.
    """
    previous = getattr(_local, "profiler", None)
    if profiler is not None:
        _local.profiler = profiler
    try:
        yield profiler if profiler is not None else previous
    finally:
        _local.profiler = previous
        if profiler is not None and flush:
            profiler.flush_to_registry()


class KernelProfiler:
    """Accumulates per-op wall time and calls across interpreter runs.

    Args:
        sample_every: Emit ``kernel.*`` spans for one instruction range
            in this many (only when a tracer is also active).  ``1``
            traces every range; the default keeps tracing overhead
            bounded on large nets.

    One profiler may observe many solves (a batch, a session); totals
    accumulate.  Not thread-safe by design — it lives in a thread-local
    and each worker process builds its own.
    """

    __slots__ = ("sample_every", "seconds", "calls", "peak_list_length", "ranges")

    def __init__(self, sample_every: int = 16) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.seconds: Dict[str, float] = {op: 0.0 for op in _OPS}
        self.calls: Dict[str, int] = {op: 0 for op in _OPS}
        self.peak_list_length = 0
        self.ranges = 0

    # -- interpreter hook ----------------------------------------------

    def wrap(
        self,
        sink_op: Callable,
        wire_op: Callable,
        merge_op: Callable,
        add_buffer: Callable,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[Callable, Callable, Callable, Callable, Callable]:
        """Timed versions of the four kernel ops plus a range hook.

        Returns ``(sink, wire, merge, buffer, end_range)``; the
        interpreter calls ``end_range(list_length)`` at each
        instruction-range boundary (the ``OP_FINAL`` site where it
        already polls the deadline).
        """
        perf = time.perf_counter
        seconds = self.seconds
        calls = self.calls

        def timed_sink(*args):
            t0 = perf()
            out = sink_op(*args)
            seconds["sink"] += perf() - t0
            calls["sink"] += 1
            return out

        def timed_wire(*args):
            t0 = perf()
            out = wire_op(*args)
            seconds["wire"] += perf() - t0
            calls["wire"] += 1
            return out

        def timed_merge(*args):
            t0 = perf()
            out = merge_op(*args)
            seconds["merge"] += perf() - t0
            calls["merge"] += 1
            return out

        def timed_buffer(*args):
            t0 = perf()
            out = add_buffer(*args)
            seconds["buffer"] += perf() - t0
            calls["buffer"] += 1
            return out

        sample_every = self.sample_every
        # Mutable closure state: [range start, wire-mark, merge-mark,
        # buffer-mark] — marks are cumulative seconds at the last
        # sampled boundary, so a sampled range reports only its own
        # op-time deltas.
        state = [perf(), seconds["wire"], seconds["merge"], seconds["buffer"]]

        def end_range(length: int) -> None:
            if length > self.peak_list_length:
                self.peak_list_length = length
            index = self.ranges
            self.ranges = index + 1
            if tracer is None or index % sample_every:
                return
            now = perf()
            start = state[0]
            cursor = start
            for slot, op in ((1, "wire"), (2, "merge"), (3, "buffer")):
                delta = seconds[op] - state[slot]
                if delta > 0.0:
                    tracer.record(
                        f"kernel.{op}", cursor, delta,
                        {"range": index, "list_length": length},
                    )
                    cursor += delta
                state[slot] = seconds[op]
            state[0] = now

        return timed_sink, timed_wire, timed_merge, timed_buffer, end_range

    # -- results --------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe summary of everything observed so far."""
        return {
            "seconds": dict(self.seconds),
            "calls": dict(self.calls),
            "peak_list_length": self.peak_list_length,
            "ranges": self.ranges,
            "sample_every": self.sample_every,
        }

    def flush_to_registry(self, registry=None) -> None:
        """Fold accumulated totals into the metrics registry."""
        registry = registry if registry is not None else default_registry()
        seconds = registry.counter(
            "repro_kernel_op_seconds_total",
            "Wall seconds spent in each kernel operation (profiled runs).",
        )
        calls = registry.counter(
            "repro_kernel_op_calls_total",
            "Kernel operation invocations (profiled runs).",
        )
        for op in _OPS:
            if self.calls[op]:
                seconds.inc(self.seconds[op], op=op)
                calls.inc(self.calls[op], op=op)
        if self.peak_list_length:
            _peak_histogram(registry).observe(self.peak_list_length)


def instrument_ops(
    sink_op: Callable,
    wire_op: Callable,
    merge_op: Callable,
    add_buffer: Callable,
) -> Tuple[Callable, Callable, Callable, Callable, Optional[Callable]]:
    """The one call an interpreter makes before its dispatch loop.

    With no active profiler this returns the four callables untouched
    and ``None`` for the range hook — the disabled cost is this single
    thread-local read per solve, never per instruction.
    """
    if _BYPASS:
        return sink_op, wire_op, merge_op, add_buffer, None
    profiler = getattr(_local, "profiler", None)
    if profiler is None:
        return sink_op, wire_op, merge_op, add_buffer, None
    return profiler.wrap(
        sink_op, wire_op, merge_op, add_buffer, tracer=active_tracer()
    )


# -- always-on histogram feeds (one observation per solve / group) ------

def _peak_histogram(registry=None) -> Histogram:
    registry = registry if registry is not None else default_registry()
    return registry.histogram(
        "repro_peak_list_length",
        "Peak nonredundant candidate-list length per solve.",
        LIST_LENGTH_BUCKETS,
    )


def _lane_histogram(registry=None) -> Histogram:
    registry = registry if registry is not None else default_registry()
    return registry.histogram(
        "repro_batch_lanes",
        "Lane count per batch-axis structural group.",
        LANE_BUCKETS,
    )


def record_dp_stats(stats) -> None:
    """Feed the always-on histograms from one solve's ``DPStats``."""
    if _BYPASS:
        return
    _peak_histogram().observe(stats.peak_list_length)


def record_lane_count(lanes: int) -> None:
    """Feed the lane-count histogram from one batch-axis group."""
    if _BYPASS:
        return
    _lane_histogram().observe(lanes)
