"""Structured tracing: named spans, ambient scope, Chrome export.

A :class:`Tracer` collects named spans — ``route``, ``compile``,
``dispatch``, ``kernel.wire`` / ``kernel.merge`` / ``kernel.buffer``
(sampled per instruction range by the kernel profiler), ``splice``,
``backtrace``, ``supervisor.retry``, ``cache.lookup`` — with monotonic
timestamps (:func:`time.perf_counter`).  It is threaded **ambiently**,
mirroring :func:`repro.resilience.deadline.deadline_scope`:
:func:`trace_scope` installs the tracer in a thread-local slot and
every instrumented layer polls :func:`active_tracer` once at entry, so
the per-solve cost with tracing off is a single ``is not None`` test —
the same overhead discipline the deadline layer proved out.

**Request correlation.**  :func:`request_scope` installs a request id
(generated at the server/CLI entry via :func:`new_request_id`) in the
same thread-local; :func:`current_request_id` reads it from anywhere —
spans, JSON log lines (:mod:`repro.obs.logging`) and error payloads all
stamp it.  The id crosses the process-pool boundary *in the task
tuple*, exactly as ``REPRO_FAULTS`` ships fault plans: the parent
appends it to each partition task, the worker opens its own tracer
under that id, and the returned relative spans are re-parented into the
parent's timeline by :meth:`Tracer.adopt` (worker clocks are not
comparable across processes, so worker spans are re-based at the
dispatch instant — containment, which is what Perfetto renders, is
preserved).

**Export.**  :meth:`Tracer.to_chrome` renders the Chrome
``trace_event`` JSON format (complete ``"ph": "X"`` events,
microsecond timestamps) that https://ui.perfetto.dev and
``chrome://tracing`` open directly; every event's ``args`` carries the
request id.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "current_request_id",
    "new_request_id",
    "request_scope",
    "reset_active_tracer",
    "trace_scope",
]

#: One finished span: ``(name, start, duration, tid, args)`` — ``start``
#: is a local ``perf_counter`` instant, ``tid`` names the track
#: (``"main"`` for the request thread, ``"worker-<n>"`` for re-parented
#: worker spans), ``args`` is a small JSON-safe dict or ``None``.
Span = Tuple[str, float, float, str, Optional[dict]]

_local = threading.local()


def new_request_id() -> str:
    """A fresh 16-hex-character request id."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> Optional[str]:
    """The request id installed on this thread, or ``None``."""
    return getattr(_local, "request_id", None)


@contextmanager
def request_scope(request_id: Optional[str]) -> Iterator[Optional[str]]:
    """Install ``request_id`` as this thread's current request id.

    ``None`` keeps whatever id is already installed (so a nested call
    that did not mint its own id stays correlated with its caller).
    """
    previous = getattr(_local, "request_id", None)
    if request_id is not None:
        _local.request_id = request_id
    try:
        yield request_id if request_id is not None else previous
    finally:
        _local.request_id = previous


def active_tracer() -> Optional["Tracer"]:
    """The tracer installed on this thread, or ``None``."""
    return getattr(_local, "tracer", None)


def reset_active_tracer() -> None:
    """Forget any tracer (and request id) installed on this thread.

    Worker-process entry points call this next to
    :func:`repro.resilience.deadline.reset_active_deadline`: under the
    fork start method a child inherits the parent thread's
    thread-locals, and a request-scoped tracer must never collect
    another request's spans inside a pooled worker.
    """
    _local.tracer = None
    _local.request_id = None


@contextmanager
def trace_scope(tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """Install ``tracer`` as this thread's active tracer.

    ``None`` keeps whatever tracer is already active; the previous
    tracer is restored on exit.  The tracer's request id is installed
    alongside it, so :func:`current_request_id` agrees with the spans.
    """
    previous = getattr(_local, "tracer", None)
    previous_id = getattr(_local, "request_id", None)
    if tracer is not None:
        _local.tracer = tracer
        _local.request_id = tracer.request_id
    try:
        yield tracer if tracer is not None else previous
    finally:
        _local.tracer = previous
        _local.request_id = previous_id


class Tracer:
    """An append-only span collector for one request.

    Args:
        request_id: Correlation id stamped on every span; defaults to
            the thread's current id, else a fresh one.

    Thread-safety: appends take a lock so executor threads and the
    event loop may share one tracer; the hot paths batch their appends
    (one per sampled instruction range), so contention is negligible.
    """

    __slots__ = ("request_id", "epoch", "_spans", "_lock")

    def __init__(self, request_id: Optional[str] = None) -> None:
        if request_id is None:
            request_id = current_request_id() or new_request_id()
        self.request_id = request_id
        self.epoch = time.perf_counter()
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------

    def begin(self, name: str, **args: Any) -> tuple:
        """Open a span; pass the returned handle to :meth:`end`."""
        return (name, time.perf_counter(), args or None)

    def end(self, handle: tuple, **extra: Any) -> None:
        """Close a span opened by :meth:`begin`."""
        name, start, args = handle
        if extra:
            args = dict(args or {}, **extra)
        self.record(name, start, time.perf_counter() - start, args)

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        args: Optional[dict] = None,
        tid: str = "main",
    ) -> None:
        """Append one pre-timed span (``start`` in local perf_counter)."""
        with self._lock:
            self._spans.append((name, start, duration, tid, args))

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Context-manager convenience for non-hot paths."""
        handle = self.begin(name, **args)
        try:
            yield
        finally:
            self.end(handle)

    # -- cross-process re-parenting ------------------------------------

    def export_relative(self) -> List[tuple]:
        """Spans with starts relative to this tracer's epoch.

        The picklable shape a worker returns: local clocks do not
        compare across processes, so only offsets travel.
        """
        with self._lock:
            return [
                (name, start - self.epoch, duration, tid, args)
                for name, start, duration, tid, args in self._spans
            ]

    def adopt(
        self, relative: List[tuple], at: float, tid: str
    ) -> None:
        """Re-parent worker spans into this timeline.

        ``at`` is the local instant the worker's epoch corresponds to
        (the dispatch start); ``tid`` names the worker's track.  Every
        adopted span keeps its own args but is stamped with this
        tracer's request id at export, like any local span.
        """
        with self._lock:
            for name, rel_start, duration, _tid, args in relative:
                self._spans.append((name, at + rel_start, duration, tid, args))

    # -- introspection and export --------------------------------------

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON document for this request.

        Complete (``"ph": "X"``) events on one process, one track per
        ``tid``; timestamps are microseconds from the tracer's epoch.
        Open the serialized dict in Perfetto or ``chrome://tracing``.
        """
        import os

        pid = os.getpid()
        events: List[Dict[str, Any]] = []
        tids: Dict[str, int] = {}
        for name, start, duration, tid, args in self.spans():
            tid_index = tids.setdefault(tid, len(tids))
            event_args = dict(args) if args else {}
            event_args["request_id"] = self.request_id
            events.append({
                "name": name,
                "ph": "X",
                "ts": round((start - self.epoch) * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "pid": pid,
                "tid": tid_index,
                "args": event_args,
            })
        metadata = [
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": f"repro request {self.request_id}"}},
        ]
        for tid, tid_index in tids.items():
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tid_index, "args": {"name": tid},
            })
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "metadata": {"request_id": self.request_id},
        }

    def __repr__(self) -> str:
        return (
            f"Tracer(request_id={self.request_id!r}, "
            f"spans={len(self)})"
        )
