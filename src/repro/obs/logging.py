"""Structured JSON logging stamped with the current request id.

``repro serve --log-json`` swaps the root handler's formatter for
:class:`JsonLogFormatter`: one JSON object per line, each carrying the
request id installed by :func:`repro.obs.spans.request_scope` on the
emitting thread.  A shed, deadline-blown or crashed request is then
greppable end to end — the same id appears in the error payload, the
trace export and every log line the request produced, in the server
process and (via the id shipped in partition task tuples) in pool
workers.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

from repro.obs.spans import current_request_id

__all__ = ["JsonLogFormatter", "configure_json_logging"]

#: LogRecord attributes that are plumbing, not payload; anything else
#: attached via ``logger.info(..., extra={...})`` is emitted as a field.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message,
    request id (when one is installed on the emitting thread), any
    ``extra=`` fields, and the formatted traceback for exceptions."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            ) + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = current_request_id()
        if request_id is not None:
            payload["request_id"] = request_id
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def configure_json_logging(
    level: int = logging.INFO, stream: Optional[IO[str]] = None
) -> logging.Handler:
    """Install a JSON-formatting handler on the root logger.

    Replaces existing root handlers (the server's default plain-text
    handler included) so every line on ``stream`` — stderr by default —
    is one JSON object.  Returns the installed handler so callers can
    detach it (tests do).
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    root = logging.getLogger()
    root.handlers[:] = [handler]
    root.setLevel(level)
    return handler
