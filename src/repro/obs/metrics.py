"""A process-local metrics registry with Prometheus text exposition.

Three instrument kinds, deliberately minimal (stdlib only):

* :class:`Counter` — a monotonically increasing count, optionally
  split by one small label set (``counter.inc(backend="soa")``);
* :class:`Gauge` — a point-in-time value, settable directly or
  computed at scrape time from a callback (how uptime is derived);
* :class:`Histogram` — fixed-boundary buckets plus sum and count, the
  Prometheus cumulative-``le`` shape.  Latency buckets for
  solve/batch/session/edit, list-length and lane-count buckets for the
  DP statistics.

A :class:`MetricsRegistry` owns instruments by name (get-or-create, so
a counter is *defined once* and shared by every caller that names it)
and renders the whole registry as Prometheus text exposition format
(version 0.0.4) — the body of the server's ``GET /metrics``.

Two registries exist in practice: :func:`default_registry` is the
process-wide one that kernel, pool, supervisor and routing instruments
feed (so worker-facing subsystems need no plumbing), and each
:class:`~repro.service.server.BufferServer` owns a private registry for
its request counters (so two servers in one test process do not bleed
counts into each other).  ``GET /metrics`` renders both.

:class:`UptimeClock` is the one started-clock helper behind every
uptime figure: ``/healthz`` and ``/stats`` both read
:meth:`UptimeClock.seconds`, replacing the two independently maintained
``time.monotonic() - started`` computations the server used to carry.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "CounterGroup",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "LANE_BUCKETS",
    "LIST_LENGTH_BUCKETS",
    "MetricsRegistry",
    "UptimeClock",
    "default_registry",
]

#: Solve/batch/session/edit latency buckets (seconds) — spaced for a
#: workload whose solves run microseconds (cache hits) to tens of
#: seconds (large partitioned nets).
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Peak candidate-list-length buckets — the paper's ``k``; lists stay
#: far below the ``b n + 1`` bound, so powers of two to 4096 cover
#: every workload in the benchmark suite.
LIST_LENGTH_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 4096.0,
)

#: Batch-axis lane-count buckets (structural group sizes).
LANE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Routing predicted-vs-actual absolute error buckets (seconds).
ROUTING_ERROR_BUCKETS = (
    0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    # Counters render as integers when whole — the conventional shape.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared name/help/lock plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def header_lines(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Instrument):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str) -> None:
        super().__init__(name, help)
        self._series: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[_LabelKey, float]:
        with self._lock:
            return dict(self._series)

    def _set(self, value: float, **labels: str) -> None:
        """Direct assignment — only the dict-compatibility views use it."""
        with self._lock:
            self._series[_label_key(labels)] = value

    def render(self) -> List[str]:
        lines = self.header_lines()
        series = self.series() or {(): 0.0}
        for key in sorted(series):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(series[key])}"
            )
        return lines


class Gauge(_Instrument):
    """A point-in-time value; settable or computed at scrape time."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, help)
        self._fn = fn
        self._series: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self.header_lines()
        if self._fn is not None:
            lines.append(f"{self.name} {_format_value(float(self._fn()))}")
            return lines
        with self._lock:
            series = dict(self._series) or {(): 0.0}
        for key in sorted(series):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(series[key])}"
            )
        return lines


class Histogram(_Instrument):
    """Fixed-boundary buckets + sum + count (cumulative ``le`` shape)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str, buckets: Sequence[float]
    ) -> None:
        super().__init__(name, help)
        boundaries = tuple(float(b) for b in buckets)
        if list(boundaries) != sorted(boundaries) or not boundaries:
            raise ValueError(
                f"histogram {name!r} buckets must be sorted and non-empty"
            )
        self.boundaries = boundaries
        self._series: Dict[_LabelKey, list] = {}

    def _bucket_counts(self, key: _LabelKey) -> list:
        state = self._series.get(key)
        if state is None:
            # counts per boundary + overflow, then sum, then count.
            state = [0] * (len(self.boundaries) + 1) + [0.0, 0]
            self._series[key] = state
        return state

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._bucket_counts(key)
            index = len(self.boundaries)
            for i, boundary in enumerate(self.boundaries):
                if value <= boundary:
                    index = i
                    break
            state[index] += 1
            state[-2] += value
            state[-1] += 1

    def count(self, **labels: str) -> int:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state[-1] if state is not None else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state[-2] if state is not None else 0.0

    def render(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            series = {
                key: list(state) for key, state in self._series.items()
            } or {(): [0] * (len(self.boundaries) + 1) + [0.0, 0]}
        for key in sorted(series):
            state = series[key]
            cumulative = 0
            for boundary, bucket in zip(self.boundaries, state):
                cumulative += bucket
                label = _render_labels(key, f'le="{_format_value(boundary)}"')
                lines.append(f"{self.name}_bucket{label} {cumulative}")
            cumulative += state[len(self.boundaries)]
            label = _render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{label} {cumulative}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(state[-2])}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {state[-1]}")
        return lines


class UptimeClock:
    """The one started-clock behind every uptime figure.

    ``/healthz`` and ``/stats`` used to each compute
    ``time.monotonic() - started`` against their own reading of the
    start instant; this helper owns that instant once.  ``restart()``
    re-stamps it (the server calls it when the socket binds).
    """

    __slots__ = ("_clock", "_started")

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._started = clock()

    def restart(self) -> None:
        self._started = self._clock()

    def seconds(self) -> float:
        return self._clock() - self._started


class MetricsRegistry:
    """Instruments by name; get-or-create; Prometheus text rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[str, _Instrument]" = {}

    def _get_or_create(self, name: str, factory, kind) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {kind.kind}"
                )
            return instrument

    def counter(self, name: str, help: str) -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help), Counter
        )

    def gauge(
        self,
        name: str,
        help: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help, fn=fn), Gauge
        )

    def histogram(
        self, name: str, help: str, buckets: Sequence[float]
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), Histogram
        )

    def uptime_clock(self, name: str, help: str) -> UptimeClock:
        """Register an uptime gauge and return its started-clock."""
        clock = UptimeClock()
        self.gauge(name, help, fn=clock.seconds)
        return clock

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]

    def render(self) -> str:
        """The registry as Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for instrument in self.instruments():
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n" if lines else ""


class CounterGroup:
    """A dict-shaped view over registry counters, one per key.

    The server's ``self.counters`` mapping predates the registry; this
    view keeps every call site (``counters["errors"] += 1``,
    ``dict(counters)``) working while the values live in registry
    :class:`Counter` instruments — defined once, rendered by
    ``/metrics``, reported by ``/stats``.

    Metric names follow the Prometheus counter convention:
    ``<prefix><key>`` when the key already ends in ``_total``, else
    ``<prefix><key>_total``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        prefix: str,
        descriptions: Dict[str, str],
    ) -> None:
        self._counters: Dict[str, Counter] = {}
        for key, help in descriptions.items():
            metric = prefix + (key if key.endswith("_total") else key + "_total")
            self._counters[key] = registry.counter(metric, help)

    def __getitem__(self, key: str) -> int:
        return int(self._counters[key].value())

    def __setitem__(self, key: str, value: int) -> None:
        self._counters[key]._set(float(value))

    def __contains__(self, key: object) -> bool:
        return key in self._counters

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def keys(self):
        return self._counters.keys()

    def items(self):
        return [(key, self[key]) for key in self._counters]

    def as_dict(self) -> Dict[str, int]:
        return {key: self[key] for key in self._counters}


_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry kernel-side instruments feed."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry
