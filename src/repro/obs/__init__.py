"""Unified observability: tracing, metrics, correlation, profiling.

One package gives every solve a trace, every subsystem a metric and
every request an id that survives the process-pool boundary:

* :mod:`repro.obs.spans` — a low-overhead structured tracer.
  :func:`~repro.obs.spans.trace_scope` installs a
  :class:`~repro.obs.spans.Tracer` in a thread-local slot exactly like
  :func:`repro.resilience.deadline.deadline_scope` installs a deadline;
  every instrumented layer polls :func:`~repro.obs.spans.active_tracer`
  once at entry, so the cost with tracing off is a single
  ``is not None`` test per solve — never per instruction.  Traces
  export as Chrome ``trace_event`` JSON, viewable in Perfetto.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-boundary histograms with a Prometheus text
  exposition (the server's ``GET /metrics``).  The ``/stats`` counters
  are founded on these instruments, so each counter is defined once.
* :mod:`repro.obs.logging` — a JSON log formatter that stamps every
  record with the current request id (``repro serve --log-json``).
* :mod:`repro.obs.profiler` — the sampling kernel profiler: per-op
  wall time and peak list length from *any* execution strategy (object
  and soa stores, batch-axis groups, partitioned workers), replacing
  the old object-backend-only ``experiments/profiling.py`` timing.

Request correlation: :func:`~repro.obs.spans.request_scope` installs a
request id (generated at the server/CLI entry) in the same thread-local
carousel; it rides partition task tuples across the process-pool
boundary the same way ``REPRO_FAULTS`` ships fault plans, so a worker's
spans and log lines carry the originating request's id.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.profiler import (
    KernelProfiler,
    active_profiler,
    profile_scope,
)
from repro.obs.spans import (
    Span,
    Tracer,
    active_tracer,
    current_request_id,
    new_request_id,
    request_scope,
    reset_active_tracer,
    trace_scope,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_profiler",
    "active_tracer",
    "current_request_id",
    "default_registry",
    "new_request_id",
    "profile_scope",
    "request_scope",
    "reset_active_tracer",
    "trace_scope",
]
