"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TreeError(ReproError):
    """A routing tree is malformed or an operation on it is invalid."""


class TreeStructureError(TreeError):
    """The tree violates a structural invariant (cycle, orphan, bad root)."""


class NodeNotFoundError(TreeError, KeyError):
    """A node id was requested that does not exist in the tree."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} does not exist in this tree")
        self.node_id = node_id


class LibraryError(ReproError):
    """A buffer library or buffer type is invalid."""


class TimingError(ReproError):
    """A timing analysis could not be performed."""


class AlgorithmError(ReproError):
    """A buffer-insertion algorithm was invoked with invalid arguments."""


class ServiceError(ReproError):
    """A serving-layer request failed (transport error or non-200)."""


class EditError(ReproError):
    """An incremental edit is malformed or does not apply to the net."""


class DeadlineExceeded(ReproError):
    """A solve ran past its request deadline and was aborted.

    Raised cooperatively at instruction-range boundaries of every
    execution strategy (:mod:`repro.resilience.deadline`); the serving
    layer maps it to HTTP 504.  A deadline never changes a result —
    either the bit-identical answer arrives in time or this is raised.
    """

    def __init__(self, site: str = "", budget: float = 0.0) -> None:
        detail = f" at {site}" if site else ""
        super().__init__(
            f"deadline of {budget * 1e3:.1f} ms exceeded{detail}"
        )
        self.site = site
        self.budget = budget

    def __reduce__(self):
        # Default Exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, which would re-wrap the message
        # as a site when the error crosses a worker-pool boundary.
        return (type(self), (self.site, self.budget))


class WorkerCrashError(ReproError):
    """A worker process died (or its pool broke) with tasks in flight.

    ``cuts`` names the partition cut node ids that were dispatched when
    the pool broke (empty for plain batch tasks); supervised callers
    catch this, respawn and retry, then degrade to the bit-identical
    in-process fallback (:mod:`repro.resilience.supervisor`).
    """

    def __init__(self, message: str, cuts: tuple = ()) -> None:
        super().__init__(message)
        self.cuts = tuple(cuts)

    def __reduce__(self):
        return (type(self), (self.args[0], self.cuts))


class WorkerHangError(WorkerCrashError):
    """A worker task exceeded its per-task timeout (hung, not crashed)."""


class FaultInjectedError(ReproError):
    """A deterministic fault-injection site fired its ``error`` kind.

    Only ever raised when a :class:`repro.resilience.faults.FaultPlan`
    is installed; production code never constructs one spontaneously.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r}")
        self.site = site

    def __reduce__(self):
        return (type(self), (self.site,))


class InfeasibleError(AlgorithmError):
    """The instance admits no solution candidate at all.

    This cannot happen for well-formed instances of the maximum-slack
    problem (the empty assignment is always a candidate) but is raised by
    the cost-bounded extension when the cost budget excludes every
    candidate.
    """
