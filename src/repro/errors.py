"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TreeError(ReproError):
    """A routing tree is malformed or an operation on it is invalid."""


class TreeStructureError(TreeError):
    """The tree violates a structural invariant (cycle, orphan, bad root)."""


class NodeNotFoundError(TreeError, KeyError):
    """A node id was requested that does not exist in the tree."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} does not exist in this tree")
        self.node_id = node_id


class LibraryError(ReproError):
    """A buffer library or buffer type is invalid."""


class TimingError(ReproError):
    """A timing analysis could not be performed."""


class AlgorithmError(ReproError):
    """A buffer-insertion algorithm was invoked with invalid arguments."""


class ServiceError(ReproError):
    """A serving-layer request failed (transport error or non-200)."""


class EditError(ReproError):
    """An incremental edit is malformed or does not apply to the net."""


class InfeasibleError(AlgorithmError):
    """The instance admits no solution candidate at all.

    This cannot happen for well-formed instances of the maximum-slack
    problem (the empty assignment is always a candidate) but is raised by
    the cost-bounded extension when the cost budget excludes every
    candidate.
    """
