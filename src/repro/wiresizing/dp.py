"""The joint wire-sizing + buffer-insertion dynamic program."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.buffer_ops import generate_fast, insert_candidates
from repro.core.candidate import (
    BufferDecision,
    Candidate,
    CandidateList,
    MergeDecision,
    SinkDecision,
    best_candidate_for_driver,
)
from repro.core.dp import build_plans
from repro.core.merge import merge_branches
from repro.core.pruning import prune_dominated
from repro.core.solution import DPStats
from repro.errors import AlgorithmError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.units import to_ps
from repro.wiresizing.wire_library import WireClass


class WireDecision:
    """Edge ``child_id``'s wire drawn at ``wire_class``."""

    __slots__ = ("child_id", "wire_class", "below")

    def __init__(self, child_id: int, wire_class: WireClass, below) -> None:
        self.child_id = child_id
        self.wire_class = wire_class
        self.below = below

    def __repr__(self) -> str:
        return f"WireDecision({self.child_id}, {self.wire_class.name})"


@dataclass(frozen=True)
class WireSizingResult:
    """Joint optimum: buffer placement plus per-edge wire widths.

    Attributes:
        slack: The maximized slack, seconds.
        buffer_assignment: ``{node_id: buffer_type}``.
        wire_assignment: ``{child_node_id: wire_class}`` for every edge
            (keyed by the edge's child endpoint, matching
            ``RoutingTree.edge_to``).
        driver_load: Capacitance presented to the driver.
        stats: DP bookkeeping.
    """

    slack: float
    buffer_assignment: Dict[int, BufferType]
    wire_assignment: Dict[int, WireClass]
    driver_load: float
    stats: DPStats

    @property
    def num_buffers(self) -> int:
        return len(self.buffer_assignment)

    def __str__(self) -> str:
        widths = sorted(
            {wc.name for wc in self.wire_assignment.values()}
        )
        return (
            f"WireSizingResult(slack={to_ps(self.slack):.2f}ps, "
            f"buffers={self.num_buffers}, widths={widths})"
        )


def _reconstruct(decision) -> Tuple[Dict[int, BufferType], Dict[int, WireClass]]:
    buffers: Dict[int, BufferType] = {}
    wires: Dict[int, WireClass] = {}
    stack = [decision]
    while stack:
        node = stack.pop()
        if isinstance(node, BufferDecision):
            buffers[node.node_id] = node.buffer
            stack.append(node.below)
        elif isinstance(node, MergeDecision):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, WireDecision):
            wires[node.child_id] = node.wire_class
            stack.append(node.below)
        # SinkDecision terminates a chain.
    return buffers, wires


def _add_sized_wire(
    candidates: CandidateList,
    child_id: int,
    resistance: float,
    capacitance: float,
    classes: Sequence[WireClass],
) -> CandidateList:
    """Propagate through an edge trying every wire class: O(w * k).

    Unlike the plain operation this cannot mutate in place: each class
    produces its own transformed copy, recorded via a
    :class:`WireDecision`, and the union is dominance-pruned.
    """
    union: CandidateList = []
    for wire_class in classes:
        scaled_r = resistance * wire_class.resistance_scale
        scaled_c = capacitance * wire_class.capacitance_scale
        half = scaled_c / 2.0
        transformed = [
            Candidate(
                q=cand.q - scaled_r * (half + cand.c),
                c=cand.c + scaled_c,
                decision=WireDecision(child_id, wire_class, cand.decision),
            )
            for cand in candidates
        ]
        # Same wire-cap shift for every candidate of this class: still
        # c-sorted; prune to nonredundant before the cross-class union.
        transformed = prune_dominated(transformed)
        union = insert_candidates(union, transformed) if union else transformed
    return union


def size_wires_and_insert_buffers(
    tree: RoutingTree,
    library: BufferLibrary,
    wire_classes: Sequence[WireClass],
    driver: Optional[Driver] = None,
) -> WireSizingResult:
    """Jointly choose buffer placements/types and per-edge wire widths.

    Edge parasitics in ``tree`` are interpreted as the *minimum-width*
    values; each :class:`WireClass` scales them.  With a single class of
    unit scales this reduces exactly to
    :func:`repro.core.api.insert_buffers` (tested).

    Complexity: ``O(w)``-fold more wire work than the plain DP plus the
    same O(k + b) buffer steps, i.e. ``O(w b n^2)`` overall.

    Args:
        tree: A validated routing tree.
        library: Buffer library.
        wire_classes: Non-empty sequence of width choices (names must be
            unique).
        driver: Source driver (defaults to ``tree.driver``).
    """
    classes = list(wire_classes)
    if not classes:
        raise AlgorithmError("at least one wire class is required")
    names = [wc.name for wc in classes]
    if len(set(names)) != len(names):
        raise AlgorithmError(f"duplicate wire class names: {names}")

    try:
        tree.validate()
    except Exception as exc:
        raise AlgorithmError(f"invalid routing tree: {exc}") from exc

    driver = driver if driver is not None else tree.driver
    plans = build_plans(tree, library)
    started = time.perf_counter()

    lists: Dict[int, CandidateList] = {}
    peak_length = 0
    candidates_generated = 0

    for node_id in tree.postorder():
        node = tree.node(node_id)
        if node.is_sink:
            current: CandidateList = [
                Candidate(
                    q=node.required_arrival,
                    c=node.capacitance,
                    decision=SinkDecision(node_id),
                )
            ]
            candidates_generated += 1
        else:
            branch_lists: List[CandidateList] = []
            for child in tree.children_of(node_id):
                edge = tree.edge_to(child)
                child_list = lists.pop(child)
                sized = _add_sized_wire(
                    child_list, child, edge.resistance, edge.capacitance,
                    classes,
                )
                candidates_generated += len(sized)
                branch_lists.append(sized)
            current = branch_lists[0]
            for other in branch_lists[1:]:
                current = merge_branches(current, other)
                candidates_generated += len(current)
            plan = plans.get(node_id)
            if plan is not None:
                new_candidates = generate_fast(current, plan)
                candidates_generated += len(new_candidates)
                current = insert_candidates(current, new_candidates)

        if len(current) > peak_length:
            peak_length = len(current)
        lists[node_id] = current

    root_list = lists[tree.root_id]
    resistance = driver.resistance if driver is not None else 0.0
    best = best_candidate_for_driver(root_list, resistance)
    assert best is not None
    slack = best.q - (driver.delay(best.c) if driver is not None else 0.0)
    buffers, wires = _reconstruct(best.decision)

    stats = DPStats(
        algorithm="fast-wiresizing",
        num_buffer_positions=tree.num_buffer_positions,
        library_size=library.size,
        root_candidates=len(root_list),
        peak_list_length=peak_length,
        candidates_generated=candidates_generated,
        runtime_seconds=time.perf_counter() - started,
    )
    return WireSizingResult(
        slack=slack,
        buffer_assignment=buffers,
        wire_assignment=wires,
        driver_load=best.c,
        stats=stats,
    )


def apply_wire_assignment(
    tree: RoutingTree, wire_assignment: Dict[int, WireClass]
) -> Tuple[RoutingTree, Dict[int, int]]:
    """A copy of ``tree`` with edge parasitics scaled per the assignment.

    Edges absent from the assignment keep their base (minimum-width)
    parasitics.  Returns the resized tree and the old-to-new node id
    map (ids are re-assigned); :func:`verify_wire_sizing` wires the two
    together with the plain timing oracle.
    """
    out = RoutingTree.with_source(
        driver=tree.driver, name=tree.node(tree.root_id).name
    )
    id_map = {tree.root_id: out.root_id}
    for node_id in tree.preorder():
        if node_id == tree.root_id:
            continue
        node = tree.node(node_id)
        edge = tree.edge_to(node_id)
        wire_class = wire_assignment.get(node_id)
        r_scale = wire_class.resistance_scale if wire_class else 1.0
        c_scale = wire_class.capacitance_scale if wire_class else 1.0
        parent_new = id_map[edge.parent]
        if node.is_sink:
            new_id = out.add_sink(
                parent_new,
                edge.resistance * r_scale,
                edge.capacitance * c_scale,
                capacitance=node.capacitance,
                required_arrival=node.required_arrival,
                name=node.name,
                length=edge.length,
                polarity=node.polarity,
            )
        else:
            new_id = out.add_internal(
                parent_new,
                edge.resistance * r_scale,
                edge.capacitance * c_scale,
                buffer_position=node.is_buffer_position,
                allowed_buffers=node.allowed_buffers,
                name=node.name,
                length=edge.length,
            )
        id_map[node_id] = new_id
    out.validate()
    return out, id_map


def verify_wire_sizing(
    tree: RoutingTree,
    result: WireSizingResult,
    driver: Optional[Driver] = None,
):
    """Re-measure a :class:`WireSizingResult` with the independent oracle.

    Resizes a copy of the tree per the wire assignment, maps the buffer
    assignment onto it and runs the staged-Elmore analysis.  Returns the
    :class:`repro.timing.buffered.TimingReport`; the slack must equal
    ``result.slack`` up to float tolerance (asserted in tests).
    """
    from repro.timing.buffered import evaluate_assignment

    resized, id_map = apply_wire_assignment(tree, result.wire_assignment)
    remapped = {
        id_map[node_id]: buffer
        for node_id, buffer in result.buffer_assignment.items()
    }
    return evaluate_assignment(resized, remapped, driver)
