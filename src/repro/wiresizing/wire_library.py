"""Wire classes: the discrete widths a router may draw a wire at."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LibraryError


@dataclass(frozen=True)
class WireClass:
    """One drawable wire width, as scale factors on the base parasitics.

    A wire of width ``w`` (relative to minimum width) has resistance
    ``~1/w`` and capacitance ``~f + (1-f) w`` where ``f`` is the fringe
    fraction (fringe capacitance does not grow with width).  The scale
    factors are stored explicitly so exotic stacks (thick top metal,
    shielded routes) can be expressed too.

    Attributes:
        name: Label, unique within a set of classes.
        resistance_scale: Multiplier on the edge's base resistance.
        capacitance_scale: Multiplier on the edge's base capacitance.
        cost_per_length: Abstract routing-resource cost (not used by the
            delay objective; carried for reporting).
    """

    name: str
    resistance_scale: float
    capacitance_scale: float
    cost_per_length: float = 1.0

    def __post_init__(self) -> None:
        if self.resistance_scale <= 0.0:
            raise LibraryError(
                f"wire class {self.name!r}: resistance scale must be > 0"
            )
        if self.capacitance_scale <= 0.0:
            raise LibraryError(
                f"wire class {self.name!r}: capacitance scale must be > 0"
            )


def default_wire_classes(
    count: int = 3,
    max_width: float = 4.0,
    fringe_fraction: float = 0.3,
) -> List[WireClass]:
    """``count`` widths from 1x to ``max_width``x, geometrically spaced.

    Width ``w`` gives resistance scale ``1/w`` and capacitance scale
    ``fringe_fraction + (1 - fringe_fraction) * w``.  The first class is
    always the minimum width (scales 1.0/1.0), so an unsized run is
    reproduced by passing ``count=1``.

    Args:
        count: Number of classes (>= 1).
        max_width: Width of the widest class relative to minimum.
        fringe_fraction: Fraction of base capacitance that is fringe.
    """
    if count < 1:
        raise LibraryError(f"count must be >= 1, got {count}")
    if max_width < 1.0:
        raise LibraryError(f"max_width must be >= 1, got {max_width}")
    if not 0.0 <= fringe_fraction < 1.0:
        raise LibraryError(
            f"fringe_fraction must be in [0, 1), got {fringe_fraction}"
        )
    classes = []
    for i in range(count):
        t = i / (count - 1) if count > 1 else 0.0
        width = max_width ** t
        classes.append(
            WireClass(
                name=f"W{width:.2f}x",
                resistance_scale=1.0 / width,
                capacitance_scale=fringe_fraction + (1.0 - fringe_fraction) * width,
                cost_per_length=width,
            )
        )
    return classes
