"""Simultaneous buffer insertion and wire sizing.

The paper's reference [7] (Lillis, Cheng & Lin, JSSC 1996) treats wire
sizing and buffer insertion in one dynamic program: every wire may be
drawn at one of a few widths, a wider wire having lower resistance but
higher capacitance.  The candidate algebra is unchanged — each width
choice is just another way to generate (Q, C) candidates for an edge,
merged by the same dominance pruning — so the DATE-2005 add-buffer
speedup composes with it directly.

Public API:

* :class:`~repro.wiresizing.wire_library.WireClass` /
  :func:`~repro.wiresizing.wire_library.default_wire_classes`
* :func:`~repro.wiresizing.dp.size_wires_and_insert_buffers`
"""

from repro.wiresizing.wire_library import WireClass, default_wire_classes
from repro.wiresizing.dp import (
    WireSizingResult,
    size_wires_and_insert_buffers,
    apply_wire_assignment,
    verify_wire_sizing,
)

__all__ = [
    "WireClass",
    "default_wire_classes",
    "WireSizingResult",
    "size_wires_and_insert_buffers",
    "apply_wire_assignment",
    "verify_wire_sizing",
]
