"""Core buffer-insertion algorithms and the candidate algebra they share.

The public entry point is :func:`repro.core.api.insert_buffers`, which
dispatches to one of three algorithms:

* ``"van_ginneken"`` — the classic single-buffer-type O(n^2) algorithm
  (van Ginneken, ISCAS 1990); requires a size-1 library.
* ``"lillis"`` — the O(b^2 n^2) multi-type extension (Lillis, Cheng &
  Lin, JSSC 1996): the baseline the paper compares against.
* ``"fast"`` — the paper's O(b n^2) algorithm: convex pruning of the
  (Q, C) candidate list plus a monotone hull walk over buffer types
  sorted by non-increasing driving resistance.

All three run the same bottom-up dynamic program
(:mod:`repro.core.dp`); they differ only in the "add buffer" operation
(:mod:`repro.core.buffer_ops`), exactly as in the paper.
"""

from repro.core.candidate import Candidate, SinkDecision, BufferDecision, MergeDecision
from repro.core.pruning import prune_dominated, convex_prune, is_nonredundant, is_convex
from repro.core.solution import BufferingResult, DPStats
from repro.core.registry import (
    InsertionAlgorithm,
    algorithm_names,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.stores import (
    get_store_backend,
    register_store_backend,
    resolve_backend,
    store_backend_names,
)
from repro.core.schedule import CompiledNet, auto_compile, compile_net
from repro.core.api import insert_buffers
from repro.core.fast import insert_buffers_fast
from repro.core.lillis import insert_buffers_lillis
from repro.core.van_ginneken import insert_buffers_van_ginneken
from repro.core.brute_force import insert_buffers_brute_force
from repro.core.polarity import insert_buffers_with_inverters, verify_polarities
from repro.core.batch import SolverPool, solve_many

__all__ = [
    "Candidate",
    "SinkDecision",
    "BufferDecision",
    "MergeDecision",
    "prune_dominated",
    "convex_prune",
    "is_nonredundant",
    "is_convex",
    "BufferingResult",
    "DPStats",
    "InsertionAlgorithm",
    "register_algorithm",
    "unregister_algorithm",
    "get_algorithm",
    "algorithm_names",
    "available_algorithms",
    "register_store_backend",
    "get_store_backend",
    "store_backend_names",
    "resolve_backend",
    "CompiledNet",
    "compile_net",
    "auto_compile",
    "insert_buffers",
    "insert_buffers_van_ginneken",
    "insert_buffers_lillis",
    "insert_buffers_fast",
    "insert_buffers_brute_force",
    "insert_buffers_with_inverters",
    "verify_polarities",
    "solve_many",
    "SolverPool",
]
