"""Batched multi-net solving: :class:`SolverPool` and :func:`solve_many`.

The paper optimizes one net at a time; a production flow buffers every
net of a design.  This module treats many-instance throughput as a
first-class workload: nets are compiled against the library **once** in
the parent process (:func:`repro.core.schedule.compile_net` —
validation, buffer plans and the post-order flattening happen exactly
once per net) and the resulting
:class:`~repro.core.schedule.CompiledNet` payloads fan out over worker
processes.  A compiled net pickles as flat op-code/parasitic arrays — a
fraction of the object tree's payload — and tasks are dispatched in
chunks, so the pickler's memo collapses the shared library to one copy
per chunk.  Workers run the schedule interpreter directly: no
re-validation, no tree walk, no plan rebuilding per solve.

:class:`SolverPool` is the persistent form: construct it once with the
shared solve context (library, algorithm, backend, options — shipped to
each worker exactly once, so the library's buffer-plan sort stays
resident per worker) and call :meth:`SolverPool.solve` as often as
traffic demands.  The HTTP serving layer (:mod:`repro.service.server`)
keeps one pool per distinct solve context across requests.
:func:`solve_many` is the one-shot convenience wrapper: it builds a
pool, solves, and tears it down.

Results come back in input order and are identical to a serial loop
(asserted by ``tests/test_batch.py``); ``jobs=1`` *is* a serial loop,
with no multiprocessing import cost at all.

On top of the process axis sits the **batch axis**: when the pool's
context resolves to the ``soa`` backend (NumPy present, store-driving
algorithm), nets sharing a structural
:func:`~repro.core.schedule.group_signature` — same op stream and
buffer positions, arbitrary parasitics/RATs/drivers, i.e. multi-corner
replicas — are solved by one vectorized
:func:`~repro.core.schedule.run_compiled_group` dispatch instead of N
interpreter runs, bit-identical per net (see
:mod:`repro.core.stores.batch_axis`).  Grouping is transparent:
singletons, mixed structures and unsupported contexts take the per-net
path, and :meth:`SolverPool.batch_axis_stats` reports what happened.

:func:`parallel_map` is the underlying generic helper, reused by the
experiment harness to parallelize Table 1 / figure sweep cells.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.core.schedule import CompiledNet, compile_net, group_signature
from repro.core.solution import BufferingResult
from repro.errors import AlgorithmError, DeadlineExceeded, WorkerHangError
from repro.library.library import BufferLibrary
from repro.obs.spans import active_tracer
from repro.resilience.breaker import BreakerBoard
from repro.resilience.deadline import Deadline, active_deadline, deadline_scope
from repro.resilience.faults import inject as _inject_fault
from repro.resilience.supervisor import Supervisor, is_supervisable
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

_T = TypeVar("_T")
_R = TypeVar("_R")

# Per-worker-process solve context, installed by the pool initializer so
# the shared settings ship once per worker instead of once per net.
_WORKER_CONTEXT: Optional[dict] = None


def _init_worker(
    library: BufferLibrary,
    algorithm: str,
    driver: Optional[Driver],
    backend: str,
    options: dict,
) -> None:
    # A fork during a deadline-scoped dispatch (lazy pool creation or a
    # supervised respawn) copies the parent thread's thread-locals into
    # the child; a request-scoped budget — or tracer — must not outlive
    # its request inside a pooled worker.
    from repro.obs.spans import reset_active_tracer
    from repro.resilience.deadline import reset_active_deadline

    reset_active_deadline()
    reset_active_tracer()
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = {
        "library": library,
        "algorithm": algorithm,
        "driver": driver,
        "backend": backend,
        "options": options,
    }
    if backend != "object":
        # Ship the precomputed plan arrays once per worker: the
        # whole-library BufferPlan (one sort per process) and its SoA
        # kernel vectors are built here, at pool start, so no solve
        # pays them (no-op without NumPy).
        from repro.core.dp import _full_library_plan
        from repro.core.stores.soa import prime_plan_kernels

        prime_plan_kernels([_full_library_plan(library.buffers)])


def _solve_one(net: Union[RoutingTree, CompiledNet]) -> BufferingResult:
    from repro.core.api import insert_buffers

    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initialization"
    return insert_buffers(
        net,
        context["library"],
        algorithm=context["algorithm"],
        driver=context["driver"],
        backend=context["backend"],
        **context["options"],
    )


def _solve_task(nets: List[CompiledNet]) -> List[BufferingResult]:
    """One worker task: a structural group (batched) or a single net.

    The parent only forms multi-net tasks when its context supports the
    batch-axis engine, so the worker can dispatch on length alone.
    """
    _inject_fault("worker.task")
    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initialization"
    if len(nets) == 1:
        return [_solve_one(nets[0])]
    from repro.core.schedule import run_compiled_group

    return run_compiled_group(
        nets,
        context["library"],
        algorithm=context["algorithm"],
        driver=context["driver"],
        options=context["options"],
    )


def _group_indices(compiled: Sequence[CompiledNet]) -> List[List[int]]:
    """Input indices grouped by structural signature, in first-seen order.

    A group is every net sharing one
    :func:`~repro.core.schedule.group_signature` — identical op stream
    and buffer-position structure, arbitrary parasitics/RATs/drivers
    (the multi-corner case).  Singleton groups stay on the per-net path.
    """
    groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
    for index, net in enumerate(compiled):
        groups.setdefault(group_signature(net), []).append(index)
    return list(groups.values())


def _resolve_jobs(jobs: Optional[int]) -> int:
    import os

    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or None for cpu_count), got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally over worker processes.

    Args:
        fn: A picklable (module-level) callable.
        items: Work items (picklable when ``jobs > 1``).
        jobs: Worker process count; ``1`` (default) runs serially in
            this process, ``None`` uses ``os.cpu_count()``.
        chunksize: Items per task sent to a worker; defaults to an even
            split in ~4 waves per worker.
        initializer, initargs: Per-worker-process setup hook (multi-
            process runs only; the serial path never calls it, so ``fn``
            must not depend on it when ``jobs == 1``).

    Returns:
        Results in input order.
    """
    jobs = _resolve_jobs(jobs)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]

    import multiprocessing

    if chunksize is None:
        chunksize = max(1, len(items) // (jobs * 4))
    with multiprocessing.Pool(
        processes=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        return pool.map(fn, items, chunksize=chunksize)


class SolverPool:
    """A reusable solve context with a persistent worker pool.

    Where :func:`solve_many` spins workers up and down per call, a
    ``SolverPool`` keeps them alive between calls: the library (and its
    per-worker buffer-plan sort), the algorithm, the backend and the
    options ship to each worker exactly once, at pool start, and every
    later :meth:`solve` only pickles the compiled nets themselves.  That
    is the difference between a batch job and a server: the serving
    layer answers each request out of a pool that is already warm.

    ``jobs=1`` (the default) is an inline pool: :meth:`solve` runs in
    the calling process with no multiprocessing import at all, which is
    also the mode the end-to-end tests use.

    A pool is a context manager; :meth:`close` (or ``with``-exit)
    terminates the workers.  A closed pool raises on further use.

    Args:
        library: The buffer library shared by every solve.
        algorithm: Registered algorithm name.
        jobs: Worker processes: ``1`` solves inline, ``None`` uses
            ``os.cpu_count()``.
        driver: Optional driver override applied to every net.
        backend: Candidate-store backend name, or ``"auto"``.
        parallel: Single-net partitioned-solve policy (``jobs > 1``
            only): ``"auto"`` (default) partitions nets whose compiled
            schedule reaches ``parallel_threshold`` instructions,
            ``"always"`` partitions every locally compiled net,
            ``"never"`` disables partitioning.  See
            :func:`repro.parallel.solver.solve_partitioned`.
        parallel_threshold: Instruction-count floor for ``"auto"``;
            defaults to
            :data:`repro.parallel.solver.DEFAULT_PARALLEL_THRESHOLD`.
        policy: Routing policy for every dispatch decision this pool
            makes (backend, batch axis, partitioning): ``"static"``
            (the legacy heuristics, the process default), ``"model"``
            (cost-model argmin), or an ``always_*`` / ``never_*``
            escape hatch — see :mod:`repro.routing.router`.  ``None``
            follows :func:`repro.routing.router.default_policy`.
        workload_log: Opt-in request capture: a
            :class:`repro.routing.workload.WorkloadLog`, or a path to
            append JSONL records to.  Every execution unit (solo solve,
            batch-axis group, partitioned solve) is recorded with its
            features, chosen plan and measured seconds.
        task_timeout: Per-task seconds before a worker dispatch is
            declared *hung* and supervised recovery kicks in
            (``None``, the default, never times out on its own — an
            ambient :class:`~repro.resilience.Deadline` still bounds
            every wait).  A dead worker under ``multiprocessing.Pool``
            does not raise — the pool silently repopulates and the
            in-flight map blocks forever — so this timeout is also the
            *crash* detector for the multi-process paths.
        max_retries: Supervised dispatch attempts after the first
            failure; exhausting them degrades to the bit-identical
            in-process fallback instead of failing the solve (see
            :mod:`repro.resilience.supervisor`).
        breaker_threshold / breaker_reset_seconds: Circuit-breaker
            tuning for the ``parallel`` / ``batch_axis`` strategy axes
            (:mod:`repro.resilience.breaker`): consecutive failures
            that trip an axis, and the cool-down before a half-open
            probe.
        **options: Algorithm-specific flags.

    Raises:
        AlgorithmError: Unknown algorithm/backend or invalid options
            (checked here, so a bad context never reaches a worker).
        ValueError: ``jobs < 1`` or an unknown ``policy``.

    .. deprecated::
        Passing ``parallel="always"`` / ``parallel="never"`` without an
        explicit ``policy=`` is deprecated: those knobs predate the
        router and bypass it.  Use ``policy="always_parallel"`` /
        ``policy="never_parallel"`` (or any explicit policy, which
        makes the ``parallel`` knob an intentional static-rule input).
    """

    def __init__(
        self,
        library: BufferLibrary,
        algorithm: str = "fast",
        jobs: Optional[int] = 1,
        driver: Optional[Driver] = None,
        backend: str = "auto",
        parallel: str = "auto",
        parallel_threshold: Optional[int] = None,
        policy: Optional[str] = None,
        workload_log=None,
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 30.0,
        **options,
    ) -> None:
        from repro.core.registry import get_algorithm
        from repro.core.stores import get_store_backend, resolve_backend
        from repro.routing.router import Router
        from repro.routing.workload import WorkloadLog

        get_algorithm(algorithm).validate_options(options)
        requested_backend = backend
        backend = resolve_backend(backend)
        get_store_backend(backend)
        if parallel not in ("auto", "always", "never"):
            raise ValueError(
                f"parallel must be 'auto', 'always' or 'never', "
                f"got {parallel!r}"
            )
        if parallel != "auto" and policy is None:
            warnings.warn(
                "SolverPool(parallel=...) without an explicit policy= is "
                "deprecated; route through the router instead, e.g. "
                "policy='always_parallel' or policy='never_parallel'",
                DeprecationWarning,
                stacklevel=2,
            )
        if parallel_threshold is None:
            from repro.parallel.solver import DEFAULT_PARALLEL_THRESHOLD

            parallel_threshold = DEFAULT_PARALLEL_THRESHOLD

        self.library = library
        self.algorithm = algorithm
        self.jobs = _resolve_jobs(jobs)
        self.driver = driver
        self.backend = backend
        self._requested_backend = requested_backend
        self.parallel = parallel
        self.parallel_threshold = parallel_threshold
        self.router = Router(
            policy=policy,
            parallel_mode=parallel,
            parallel_threshold=parallel_threshold,
        )
        if workload_log is None or isinstance(workload_log, WorkloadLog):
            self.workload_log = workload_log
            self._owns_log = False
        else:
            self.workload_log = WorkloadLog(workload_log)
            self._owns_log = True
        self._parallel_stats: dict = {
            "parallel_solves": 0,
            "fallback_solves": 0,
            "partitions_total": 0,
            "last": None,
        }
        self.options = dict(options)
        self.task_timeout = task_timeout
        self.supervisor = Supervisor(max_retries=max_retries)
        self.breakers = BreakerBoard(
            failure_threshold=breaker_threshold,
            reset_seconds=breaker_reset_seconds,
        )
        self._resilience_counters = {
            "batch_group_fallbacks": 0,
            "partitioned_fallbacks": 0,
        }
        self._pool = None  # created lazily on the first multi-process solve
        self._closed = False
        self._batch_axis = self._context_supports_batch_axis()
        self._batch_stats = {
            "groups": 0,
            "lanes_histogram": {},
            "batched_solves": 0,
            "scalar_solves": 0,
        }
        # Warm batch-axis factories, one per lane count (LRU-capped):
        # reusing a factory keeps its grown arena blocks and tape
        # capacity across solves, exactly like the single-net factory
        # the compiled-net cache holds on to.
        self._factories: "OrderedDict[int, object]" = OrderedDict()
        # Guards the inline path: concurrent callers (server handler
        # threads) may pass the *same* CompiledNet, whose factory scratch
        # arenas are not thread-safe.  The multi-process path only needs
        # the creation lock below — workers get private unpickled copies
        # and Pool.map is safe to call from multiple threads.
        self._serial_lock = threading.Lock()
        # Guards lazy pool creation: without it, two threads' first
        # solves would each spawn a worker pool and leak one.
        self._create_lock = threading.Lock()

    #: Distinct lane counts whose warm factories a pool keeps around.
    _MAX_FACTORIES = 4

    def _context_supports_batch_axis(self) -> bool:
        """Whether this pool's context can legally dispatch groups.

        Requires the resolved ``soa`` backend (the batched store packs
        SoA columns), NumPy, and an algorithm that drives candidate
        stores through the ``add_buffer_op`` seam for this library and
        these options — the exact preconditions of
        :func:`repro.core.stores.batch_axis.solve_group`.  Anything
        else falls back to the per-net path, never errors.
        """
        if self.backend != "soa":
            return False
        from repro.core.stores.batch_axis import batch_axis_available

        if not batch_axis_available():
            return False
        from repro.core.registry import get_algorithm

        try:
            get_algorithm(self.algorithm).add_buffer_op(
                "soa", self.library, **self.options
            )
        except AlgorithmError:
            return False
        return True

    def _factory_for(self, lanes: int):
        factory = self._factories.get(lanes)
        if factory is None:
            from repro.core.stores.batch_axis import BatchedSoAFactory

            factory = BatchedSoAFactory(lanes)
            self._factories[lanes] = factory
        self._factories.move_to_end(lanes)
        while len(self._factories) > self._MAX_FACTORIES:
            self._factories.popitem(last=False)
        return factory

    def _record_group(self, lanes: int) -> None:
        stats = self._batch_stats
        stats["groups"] += 1
        stats["batched_solves"] += lanes
        histogram = stats["lanes_histogram"]
        histogram[lanes] = histogram.get(lanes, 0) + 1

    def batch_axis_stats(self) -> dict:
        """Batch-axis grouping counters for this pool.

        ``groups``/``lanes_histogram``/``batched_solves`` count nets
        that went through :func:`~repro.core.schedule.run_compiled_group`
        (inline or in a worker); ``scalar_solves`` counts nets that took
        the per-net path.  ``arena_pooled_bytes`` reports the resident
        bytes of this process's warm batched factories (worker-process
        factories are private to the workers, like the single-net ones).
        """
        arena_bytes = 0
        for factory in self._factories.values():
            stats = factory.stats()
            arena_bytes += stats["arena"].get("pooled_bytes", 0)
            arena_bytes += stats["cells"].get("pooled_bytes", 0)
        return dict(
            self._batch_stats,
            lanes_histogram=dict(self._batch_stats["lanes_histogram"]),
            enabled=self._batch_axis,
            factories=len(self._factories),
            arena_pooled_bytes=arena_bytes,
        )

    def compile(
        self, net: Union[RoutingTree, CompiledNet]
    ) -> CompiledNet:
        """Compile ``net`` against this pool's library (idempotent)."""
        if isinstance(net, CompiledNet):
            return net
        return compile_net(net, self.library)

    def solve(
        self,
        nets: Sequence[Union[RoutingTree, CompiledNet]],
        chunksize: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[BufferingResult]:
        """Buffer every net in ``nets``; results in input order.

        Plain trees are compiled here (validation once per net); pass
        :class:`CompiledNet` payloads to skip even that.  Unlike
        :func:`solve_many`, a multi-process pool dispatches even a
        single net to a worker — the worker already holds the solve
        context, which is the point of keeping the pool warm.

        When the context supports the batch-axis engine (``soa``
        backend with NumPy and a store-driving algorithm), nets sharing
        a structural :func:`~repro.core.schedule.group_signature` are
        solved as one vectorized group — bit-identical per net to the
        per-net path, just amortizing every kernel launch over the
        group.  Results always come back in input order.

        On a multi-process pool, single nets large enough for the
        ``parallel`` policy are additionally solved *partitioned*: cut
        into balanced subtrees, solved concurrently across the same
        workers, and spliced back together in this process —
        bit-identical again (see :mod:`repro.parallel`).

        Every one of those dispatch decisions — backend, batch axis,
        partitioning — goes through the pool's
        :class:`~repro.routing.router.Router` (``policy=``): the
        default ``static`` policy reproduces the historical heuristics
        exactly, ``model`` asks the cost model per request.

        ``deadline`` installs a per-call wall budget
        (:class:`~repro.resilience.Deadline`) for the duration of the
        solve — checked cooperatively by every execution strategy and
        used to bound worker-pool waits; expiry raises
        :class:`~repro.errors.DeadlineExceeded`, never a partial
        result.  Dispatch failures (dead or hung workers, when
        ``task_timeout`` is set) are supervised: the pool is respawned
        and the work retried, then degraded to the bit-identical
        in-process path (see :meth:`resilience_stats`).
        """
        if self._closed:
            raise RuntimeError("SolverPool is closed")
        if deadline is not None:
            # Install ambiently so the interpreter loops (this thread)
            # and the pool-wait bounds all see it.
            with deadline_scope(deadline):
                return self.solve(nets, chunksize=chunksize)
        from repro.routing.features import features_of

        compiled = [self.compile(net) for net in nets]
        capture = self._capture_payloads(nets)
        plans: List[Optional[object]] = [None] * len(compiled)
        routed: List[int] = []
        if self.jobs > 1:
            # Partitioning needs the subtree range maps, which only
            # locally compiled schedules carry.  A tripped "parallel"
            # breaker masks the capability so routing skips the
            # strategy (half-open grants one probe).
            parallel_ok = self.breakers.allow("parallel")
            for index, net in enumerate(compiled):
                if not net.final_of_node:
                    continue
                features = features_of(net, self.library, jobs=self.jobs)
                plan = self.router.route(
                    features, backend=self.backend,
                    supports_parallel=parallel_ok,
                )
                plans[index] = plan
                if plan.parallel:
                    routed.append(index)
            if parallel_ok and not routed:
                # The half-open probe (if any) was never exercised.
                self.breakers.cancel("parallel")
        results: List[Optional[BufferingResult]] = [None] * len(compiled)
        routed_set = set(routed)
        plain = [
            index for index in range(len(compiled))
            if index not in routed_set
        ]
        if plain or not compiled:
            subset = [compiled[index] for index in plain]
            preplans = [plans[index] for index in plain]
            subcapture = [capture[index] for index in plain] if capture else None
            for index, result in zip(
                plain, self._solve_plain(subset, chunksize, preplans,
                                         subcapture)
            ):
                results[index] = result
        for index in routed:
            results[index] = self._solve_partitioned_net(
                compiled[index], plans[index],
                capture[index] if capture else None,
            )
        return results  # type: ignore[return-value]

    def _capture_payloads(self, nets) -> Optional[list]:
        """Serialized trees for full-capture workload logging, aligned
        with the input order (``None`` per net without a plain tree)."""
        log = self.workload_log
        if log is None or log.capture != "full":
            return None
        from repro.tree.io import tree_to_dict

        return [
            None if isinstance(net, CompiledNet) else tree_to_dict(net)
            for net in nets
        ]

    def _observe_unit(
        self, kind, indices, compiled, plan, features, seconds, capture
    ) -> None:
        """Feed one executed unit back: cost model EMA + workload log.

        Called with the serial lock held (counters and the model's own
        lock nest safely beneath it).
        """
        self.router.observe(plan, features, seconds)
        log = self.workload_log
        if log is None:
            return
        from repro.routing.workload import compiled_digest, group_digest

        nets = [compiled[index] for index in indices]
        payload = None
        if log.capture == "full" and capture is not None:
            dicts = [capture[index] for index in indices]
            if all(entry is not None for entry in dicts):
                from repro.tree.io import library_to_dict

                payload = {"library": library_to_dict(self.library)}
                if kind == "batch":
                    payload["nets"] = dicts
                else:
                    payload["net"] = dicts[0]
                if self.driver is not None:
                    payload["driver"] = {
                        "resistance": self.driver.resistance,
                        "intrinsic_delay": self.driver.intrinsic_delay,
                        "name": self.driver.name,
                    }
        digest = (
            group_digest(nets) if kind == "batch"
            else compiled_digest(nets[0])
        )
        log.record(
            kind, digest=digest, features=features, plan=plan,
            policy=self.router.policy, seconds=seconds,
            algorithm=self.algorithm, options=self.options,
            payload=payload,
        )

    def _route_units(
        self, compiled: List[CompiledNet], preplans: List[Optional[object]]
    ) -> tuple:
        """Group the nets structurally and route each execution unit.

        Returns ``(exec_groups, unit_plans, unit_features)``: index
        groups of size > 1 are batch-axis dispatches, singletons are
        per-net solves carrying the backend their plan picked.  A
        multi-lane group the policy declines to batch (``model`` can,
        ``static`` never does) is split back into singletons.
        """
        from repro.routing.features import features_of
        from repro.routing.router import ExecutionPlan

        batch_ok = False
        if self._batch_axis and len(compiled) > 1:
            # A tripped "batch_axis" breaker degrades every group to
            # singletons (bit-identical, just unbatched).
            batch_ok = self.breakers.allow("batch_axis")
        if batch_ok:
            groups = _group_indices(compiled)
        else:
            groups = [[index] for index in range(len(compiled))]
        # An inline pool built with backend="auto" may route each solo
        # net's store per request; worker processes hold one fixed
        # backend, so multi-process pools stay pinned.
        solo_backend = (
            self._requested_backend if self.jobs == 1 else self.backend
        )
        exec_groups: List[List[int]] = []
        unit_plans: List[ExecutionPlan] = []
        unit_features = []
        for indices in groups:
            if len(indices) > 1:
                features = features_of(
                    compiled[indices[0]], self.library,
                    lanes=len(indices), jobs=self.jobs,
                )
                plan = self.router.route(
                    features, backend=self.backend, supports_batch=True
                )
                if plan.batch_axis:
                    exec_groups.append(indices)
                    unit_plans.append(plan)
                    unit_features.append(features)
                    continue
                solo_plan = ExecutionPlan(plan.backend, "compiled")
                for index in indices:
                    exec_groups.append([index])
                    unit_plans.append(solo_plan)
                    unit_features.append(features.with_(lanes=1))
                continue
            index = indices[0]
            plan = preplans[index]
            if plan is None:
                features = features_of(
                    compiled[index], self.library, jobs=self.jobs
                )
                plan = self.router.route(features, backend=solo_backend)
            else:
                features = features_of(
                    compiled[index], self.library, jobs=self.jobs
                )
            exec_groups.append([index])
            unit_plans.append(plan)
            unit_features.append(features)
        if batch_ok and not any(len(ix) > 1 for ix in exec_groups):
            # Probe consumed but no group dispatched: return the token.
            self.breakers.cancel("batch_axis")
        return exec_groups, unit_plans, unit_features

    def _solve_plain(
        self,
        compiled: List[CompiledNet],
        chunksize: Optional[int],
        preplans: Optional[List[Optional[object]]] = None,
        capture: Optional[list] = None,
    ) -> List[BufferingResult]:
        """The per-net/batch-axis path (everything but partitioning)."""
        if preplans is None:
            preplans = [None] * len(compiled)
        exec_groups, unit_plans, unit_features = self._route_units(
            compiled, preplans
        )
        if self.jobs == 1 or not compiled:
            with self._serial_lock:
                return self._solve_inline(
                    compiled, exec_groups, unit_plans, unit_features, capture
                )
        items = [
            [compiled[index] for index in indices] for indices in exec_groups
        ]
        if chunksize is None:
            chunksize = max(1, len(items) // (self.jobs * 4))
        # Any multi-lane task makes this dispatch count against the
        # batch-axis breaker; singleton-only dispatches are pool-level
        # failures, not a strategy's.
        axis = (
            "batch_axis"
            if any(len(ix) > 1 for ix in exec_groups) else None
        )
        nested = self._supervised_map(
            _solve_task, items, chunksize, axis=axis,
            site="batch.dispatch", inject_site="batch.dispatch",
            fallback=lambda: self._solve_items_inline(items),
        )
        results: List[Optional[BufferingResult]] = [None] * len(compiled)
        with self._serial_lock:
            for indices, plan, features, group_results in zip(
                exec_groups, unit_plans, unit_features, nested
            ):
                for index, result in zip(indices, group_results):
                    results[index] = result
                if len(indices) > 1:
                    self._record_group(len(indices))
                else:
                    self._batch_stats["scalar_solves"] += 1
                # In-worker solve seconds (a lane's runtime is the
                # group wall clock amortized, so the sum restores it).
                seconds = sum(
                    result.stats.runtime_seconds
                    for result in group_results
                )
                self._observe_unit(
                    "batch" if len(indices) > 1 else "solve",
                    indices, compiled, plan, features, seconds, capture,
                )
        return results  # type: ignore[return-value]

    def _solve_partitioned_net(
        self, net: CompiledNet, plan, capture_entry=None
    ) -> BufferingResult:
        """One large net across all workers, spliced in this process."""
        from repro.parallel.solver import solve_partitioned
        from repro.routing.features import features_of

        report: dict = {}
        # The whole call holds the serial lock: the residual replay
        # runs on this net's (thread-unsafe) in-process factory, and
        # Pool.map is safe to call while holding it.
        with self._serial_lock:
            start = time.perf_counter()
            try:
                result = solve_partitioned(
                    net, self.library, algorithm=self.algorithm,
                    driver=self.driver, backend=self.backend,
                    options=self.options, pool=self, report=report,
                )
            except Exception as exc:
                # Safety net under the supervised dispatch: any
                # supervisable failure that still escapes degrades to
                # the bit-identical serial solve; real errors (and
                # DeadlineExceeded) propagate.
                if not is_supervisable(exc):
                    raise
                self.breakers.record("parallel", False)
                self._resilience_counters["partitioned_fallbacks"] += 1
                report["engaged"] = False
                report["reason"] = f"degraded after worker failure: {exc}"
                from repro.core.api import insert_buffers

                result = insert_buffers(
                    net, self.library, algorithm=self.algorithm,
                    driver=self.driver, backend=self.backend,
                    **self.options,
                )
            else:
                if report.get("engaged"):
                    self.breakers.record("parallel", True)
                else:
                    # Planner fell back serially: the strategy was
                    # never exercised, so a half-open probe returns.
                    self.breakers.cancel("parallel")
            elapsed = time.perf_counter() - start
            stats = self._parallel_stats
            if report["engaged"]:
                stats["parallel_solves"] += 1
                stats["partitions_total"] += report["partitions"]
            else:
                stats["fallback_solves"] += 1
            stats["last"] = report
            features = features_of(net, self.library, jobs=self.jobs)
            self._observe_unit(
                "solve", [0], [net], plan, features, elapsed,
                [capture_entry] if capture_entry is not None else None,
            )
        return result

    def _map_partition_tasks(self, tasks: list) -> list:
        """Dispatch partition tasks on the persistent pool, supervised.

        After retries, degrades to solving the cut extracts inline —
        the exact ``jobs=1`` path, so the spliced result stays
        bit-identical.  Called with the serial lock held (from
        :meth:`_solve_partitioned_net`), which the inline fallback
        relies on: it must not re-acquire it.
        """
        from repro.parallel.worker import _solve_partition, solve_subschedule

        def fallback() -> list:
            self._resilience_counters["partitioned_fallbacks"] += 1
            return [
                (index, solve_subschedule(
                    sub, root_id, self.library, self.algorithm,
                    self.backend, self.options,
                ), 0.0, None)
                for index, root_id, sub, _ in tasks
            ]

        return self._supervised_map(
            _solve_partition, tasks, 1, axis="parallel",
            site="parallel.dispatch", fallback=fallback,
        )

    def _supervised_map(
        self,
        func,
        items: list,
        chunksize: int,
        axis: Optional[str] = None,
        site: str = "batch.dispatch",
        inject_site: Optional[str] = None,
        fallback=None,
    ) -> list:
        """``pool.map`` under supervision: detect, respawn, retry, degrade.

        ``multiprocessing.Pool`` never raises on abrupt worker death —
        it repopulates the worker and the in-flight map blocks forever —
        so detection is ``map_async(...).get(timeout)`` with the timeout
        derived from ``task_timeout`` (scaled by the number of dispatch
        waves) and clipped to the ambient deadline.  On a supervisable
        failure the pool is terminated and respawned, the dispatch
        retried with backoff, and after ``max_retries`` the caller's
        in-process ``fallback`` (bit-identical) runs instead.  ``axis``
        names the circuit breaker that observes each failure and the
        final outcome.
        """
        import multiprocessing

        deadline = active_deadline()
        used_fallback = [False]

        def attempt() -> list:
            if inject_site is not None:
                _inject_fault(inject_site)
            async_result = self._ensure_pool().map_async(
                func, items, chunksize=chunksize
            )
            timeout = self._map_timeout(len(items), deadline)
            if timeout is None:
                return async_result.get()
            try:
                return async_result.get(timeout)
            except multiprocessing.TimeoutError:
                if deadline is not None and deadline.expired():
                    raise DeadlineExceeded(site, deadline.budget) from None
                raise WorkerHangError(
                    f"{len(items)}-task dispatch at {site} exceeded "
                    f"{timeout:.2f}s (dead or hung worker)"
                ) from None

        def wrapped_fallback() -> list:
            used_fallback[0] = True
            return fallback()

        tracer = active_tracer()
        dispatch_handle = (
            tracer.begin("dispatch", tasks=len(items), site=site)
            if tracer is not None else None
        )
        result = self.supervisor.run(
            attempt,
            respawn=self._respawn_pool,
            fallback=wrapped_fallback if fallback is not None else None,
            deadline=deadline,
            on_failure=(
                (lambda exc: self.breakers.record(axis, False))
                if axis is not None else None
            ),
        )
        if dispatch_handle is not None:
            tracer.end(dispatch_handle)
        if axis is not None and not used_fallback[0]:
            self.breakers.record(axis, True)
        return result

    def _map_timeout(
        self, n_items: int, deadline: Optional[Deadline]
    ) -> Optional[float]:
        """The wait bound for one dispatch of ``n_items`` tasks.

        ``task_timeout`` is per *task*; a map runs tasks in waves of
        ``jobs``, so the whole-map bound scales by the wave count.
        """
        timeout = None
        if self.task_timeout is not None:
            waves = max(1, -(-n_items // max(self.jobs, 1)))
            timeout = self.task_timeout * waves
        if deadline is not None:
            remaining = max(deadline.remaining(), 0.0)
            timeout = remaining if timeout is None else min(timeout, remaining)
        return timeout

    def _respawn_pool(self) -> None:
        """Kill the worker pool; the next dispatch recreates it fresh."""
        with self._create_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def _solve_items_inline(self, items: list) -> list:
        """Degraded dispatch: solve every task's nets in this process.

        The supervised fallback after worker recovery fails.  Groups
        are unbatched to plain per-net solves — the simplest healthy
        path, bit-identical to the worker result by the parity
        doctrine (every strategy returns identical bits).
        """
        from repro.core.api import insert_buffers

        nested = []
        with self._serial_lock:
            for nets in items:
                nested.append([
                    insert_buffers(
                        net, self.library, algorithm=self.algorithm,
                        driver=self.driver, backend=self.backend,
                        **self.options,
                    )
                    for net in nets
                ])
        return nested

    def parallel_stats(self) -> dict:
        """Partitioned-solve counters for this pool (``/stats`` block).

        ``parallel_solves``/``fallback_solves`` count nets the policy
        routed here that did / did not engage (a fallback means the cut
        planner found the net too chain-like or under-covered and the
        net solved serially — same result).  ``last`` is the most
        recent solve's full report: partitions, cut depths, coverage,
        splice (residual) fraction, dispatch timings and pool
        utilization.
        """
        with self._serial_lock:
            stats = dict(self._parallel_stats)
            if stats["last"] is not None:
                stats["last"] = dict(stats["last"])
        stats["enabled"] = self.jobs > 1 and self.parallel != "never"
        stats["policy"] = self.parallel
        stats["threshold_instructions"] = self.parallel_threshold
        return stats

    def _solve_inline(
        self,
        compiled: List[CompiledNet],
        groups: List[List[int]],
        plans: list,
        features_list: list,
        capture: Optional[list] = None,
    ) -> List[BufferingResult]:
        """The ``jobs=1`` path: batched groups + per-net singletons."""
        from repro.core.api import insert_buffers
        from repro.core.schedule import run_compiled_group

        results: List[Optional[BufferingResult]] = [None] * len(compiled)
        for indices, plan, features in zip(groups, plans, features_list):
            if len(indices) > 1:
                lanes = len(indices)
                start = time.perf_counter()
                try:
                    _inject_fault("batch.group")
                    group_results = run_compiled_group(
                        [compiled[index] for index in indices], self.library,
                        algorithm=self.algorithm, driver=self.driver,
                        options=self.options,
                        factory=self._factory_for(lanes),
                    )
                except Exception as exc:
                    if not is_supervisable(exc):
                        raise
                    self.breakers.record("batch_axis", False)
                    self._resilience_counters["batch_group_fallbacks"] += 1
                    group_results = [
                        insert_buffers(
                            compiled[index], self.library,
                            algorithm=self.algorithm, driver=self.driver,
                            backend=plan.backend, **self.options,
                        )
                        for index in indices
                    ]
                else:
                    self.breakers.record("batch_axis", True)
                elapsed = time.perf_counter() - start
                for index, result in zip(indices, group_results):
                    results[index] = result
                self._record_group(lanes)
                self._observe_unit(
                    "batch", indices, compiled, plan, features, elapsed,
                    capture,
                )
            else:
                start = time.perf_counter()
                result = insert_buffers(
                    compiled[indices[0]], self.library,
                    algorithm=self.algorithm, driver=self.driver,
                    backend=plan.backend, **self.options,
                )
                elapsed = time.perf_counter() - start
                results[indices[0]] = result
                self._batch_stats["scalar_solves"] += 1
                self._observe_unit(
                    "solve", indices, compiled, plan, features, elapsed,
                    capture,
                )
        return results  # type: ignore[return-value]

    def resilience_stats(self) -> dict:
        """Supervision and breaker counters (``/stats`` block).

        ``supervisor`` aggregates retries / respawns / fallbacks across
        every supervised dispatch; ``breakers`` reports each strategy
        axis's state machine; the ``*_fallbacks`` counters say how many
        execution units degraded to the bit-identical in-process path.
        """
        stats = {
            "supervisor": self.supervisor.stats(),
            "breakers": self.breakers.stats(),
            "task_timeout": self.task_timeout,
        }
        stats.update(self._resilience_counters)
        return stats

    def worker_health(self) -> dict:
        """Worker-process liveness (the deep-healthz ``workers`` view).

        ``workers_alive`` counts live processes of the lazily created
        pool; before the first multi-process solve (or with ``jobs=1``)
        there is nothing to probe and ``pool_created`` is ``False``.
        """
        with self._create_lock:
            procs = getattr(self._pool, "_pool", None)
            return {
                "jobs": self.jobs,
                "pool_created": self._pool is not None,
                "workers_alive": (
                    sum(1 for proc in procs if proc.is_alive())
                    if procs else 0
                ),
            }

    def routing_stats(self) -> dict:
        """Routing decisions and model telemetry (``/stats`` block)."""
        stats = self.router.stats()
        log = self.workload_log
        stats["workload_records"] = (
            log.records_written if log is not None else 0
        )
        return stats

    def _ensure_pool(self):
        with self._create_lock:
            if self._pool is None:
                import multiprocessing

                self._pool = multiprocessing.Pool(
                    processes=self.jobs,
                    initializer=_init_worker,
                    initargs=(self.library, self.algorithm, self.driver,
                              self.backend, self.options),
                )
            return self._pool

    def close(self) -> None:
        """Terminate the workers; the pool cannot be used afterwards."""
        self._closed = True
        if self._owns_log and self.workload_log is not None:
            self.workload_log.close()
        with self._create_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SolverPool(algorithm={self.algorithm!r}, "
            f"backend={self.backend!r}, jobs={self.jobs}, b="
            f"{self.library.size}, {state})"
        )


def solve_many(
    trees: Sequence[Union[RoutingTree, CompiledNet]],
    library: BufferLibrary,
    algorithm: str = "fast",
    jobs: Optional[int] = 1,
    driver: Optional[Driver] = None,
    backend: str = "auto",
    chunksize: Optional[int] = None,
    precompile: bool = True,
    policy: Optional[str] = None,
    deadline: Optional[Deadline] = None,
    **options,
) -> List[BufferingResult]:
    """Buffer every net in ``trees``, optionally across processes.

    One-shot form of :class:`SolverPool`: worker processes (when any)
    live for this call only.  Callers that solve repeatedly against the
    same context should hold a ``SolverPool`` instead.

    Args:
        trees: The routing trees to solve (each uses its own
            ``tree.driver`` unless ``driver`` overrides all of them).
            Pre-compiled nets are accepted too and used as-is.
        library: The buffer library, shared by every solve.
        algorithm: Registered algorithm name.
        jobs: Worker processes: ``1`` (default) solves serially in this
            process; ``None`` uses ``os.cpu_count()``.
        driver: Optional driver override applied to every net.
        backend: Candidate-store backend name, or ``"auto"`` (default).
        chunksize: Nets per worker task (``jobs > 1`` only).
        precompile: Compile each net once in this process and dispatch
            the compact :class:`CompiledNet` payloads (the default, and
            the reason workers neither re-validate nor re-plan a net).
            ``False`` ships the object trees, as earlier releases did.
        policy: Routing policy (see :class:`SolverPool`); ``None``
            follows the process default.
        deadline: Optional wall-clock budget covering the whole call
            (see :meth:`SolverPool.solve`); exceeding it raises
            :class:`~repro.errors.DeadlineExceeded`.
        **options: Algorithm-specific flags (e.g.
            ``destructive_pruning=True`` for ``"fast"``).

    Returns:
        One :class:`BufferingResult` per tree, in input order —
        identical to ``[insert_buffers(t, library, ...) for t in trees]``.

    Raises:
        AlgorithmError: Unknown algorithm/backend, invalid options, or
            an invalid tree (validation happens here, exactly once per
            net, when ``precompile`` is on).
        ValueError: ``jobs < 1``.
    """
    jobs = _resolve_jobs(jobs)

    # Fail fast (and in the parent process) on bad names/options.
    from repro.core.registry import get_algorithm
    from repro.core.stores import get_store_backend, resolve_backend

    get_algorithm(algorithm).validate_options(options)
    # Validate without rebinding: the pool remembers whether the caller
    # said "auto" (routable per net) or pinned a store.
    get_store_backend(resolve_backend(backend))

    if precompile:
        nets: List[Union[RoutingTree, CompiledNet]] = [
            net if isinstance(net, CompiledNet) else compile_net(net, library)
            for net in trees
        ]
    else:
        nets = list(trees)

    if jobs == 1 or len(nets) <= 1:
        # A one-shot inline pool: no workers, but structural groups
        # still ride the batch-axis engine when the context allows.
        with SolverPool(
            library, algorithm=algorithm, jobs=1, driver=driver,
            backend=backend, policy=policy, **options,
        ) as pool:
            return pool.solve(nets, deadline=deadline)

    # jobs > 1 and len(nets) > 1: a one-shot pool, torn down on return.
    with SolverPool(
        library, algorithm=algorithm, jobs=jobs, driver=driver,
        backend=backend, policy=policy, **options,
    ) as pool:
        return pool.solve(nets, chunksize=chunksize, deadline=deadline)
