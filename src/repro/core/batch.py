"""Batched multi-net solving: :class:`SolverPool` and :func:`solve_many`.

The paper optimizes one net at a time; a production flow buffers every
net of a design.  This module treats many-instance throughput as a
first-class workload: nets are compiled against the library **once** in
the parent process (:func:`repro.core.schedule.compile_net` —
validation, buffer plans and the post-order flattening happen exactly
once per net) and the resulting
:class:`~repro.core.schedule.CompiledNet` payloads fan out over worker
processes.  A compiled net pickles as flat op-code/parasitic arrays — a
fraction of the object tree's payload — and tasks are dispatched in
chunks, so the pickler's memo collapses the shared library to one copy
per chunk.  Workers run the schedule interpreter directly: no
re-validation, no tree walk, no plan rebuilding per solve.

:class:`SolverPool` is the persistent form: construct it once with the
shared solve context (library, algorithm, backend, options — shipped to
each worker exactly once, so the library's buffer-plan sort stays
resident per worker) and call :meth:`SolverPool.solve` as often as
traffic demands.  The HTTP serving layer (:mod:`repro.service.server`)
keeps one pool per distinct solve context across requests.
:func:`solve_many` is the one-shot convenience wrapper: it builds a
pool, solves, and tears it down.

Results come back in input order and are identical to a serial loop
(asserted by ``tests/test_batch.py``); ``jobs=1`` *is* a serial loop,
with no multiprocessing import cost at all.

:func:`parallel_map` is the underlying generic helper, reused by the
experiment harness to parallelize Table 1 / figure sweep cells.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.core.schedule import CompiledNet, compile_net
from repro.core.solution import BufferingResult
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

_T = TypeVar("_T")
_R = TypeVar("_R")

# Per-worker-process solve context, installed by the pool initializer so
# the shared settings ship once per worker instead of once per net.
_WORKER_CONTEXT: Optional[dict] = None


def _init_worker(
    library: BufferLibrary,
    algorithm: str,
    driver: Optional[Driver],
    backend: str,
    options: dict,
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = {
        "library": library,
        "algorithm": algorithm,
        "driver": driver,
        "backend": backend,
        "options": options,
    }
    if backend != "object":
        # Ship the precomputed plan arrays once per worker: the
        # whole-library BufferPlan (one sort per process) and its SoA
        # kernel vectors are built here, at pool start, so no solve
        # pays them (no-op without NumPy).
        from repro.core.dp import _full_library_plan
        from repro.core.stores.soa import prime_plan_kernels

        prime_plan_kernels([_full_library_plan(library.buffers)])


def _solve_one(net: Union[RoutingTree, CompiledNet]) -> BufferingResult:
    from repro.core.api import insert_buffers

    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initialization"
    return insert_buffers(
        net,
        context["library"],
        algorithm=context["algorithm"],
        driver=context["driver"],
        backend=context["backend"],
        **context["options"],
    )


def _resolve_jobs(jobs: Optional[int]) -> int:
    import os

    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or None for cpu_count), got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally over worker processes.

    Args:
        fn: A picklable (module-level) callable.
        items: Work items (picklable when ``jobs > 1``).
        jobs: Worker process count; ``1`` (default) runs serially in
            this process, ``None`` uses ``os.cpu_count()``.
        chunksize: Items per task sent to a worker; defaults to an even
            split in ~4 waves per worker.
        initializer, initargs: Per-worker-process setup hook (multi-
            process runs only; the serial path never calls it, so ``fn``
            must not depend on it when ``jobs == 1``).

    Returns:
        Results in input order.
    """
    jobs = _resolve_jobs(jobs)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]

    import multiprocessing

    if chunksize is None:
        chunksize = max(1, len(items) // (jobs * 4))
    with multiprocessing.Pool(
        processes=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        return pool.map(fn, items, chunksize=chunksize)


class SolverPool:
    """A reusable solve context with a persistent worker pool.

    Where :func:`solve_many` spins workers up and down per call, a
    ``SolverPool`` keeps them alive between calls: the library (and its
    per-worker buffer-plan sort), the algorithm, the backend and the
    options ship to each worker exactly once, at pool start, and every
    later :meth:`solve` only pickles the compiled nets themselves.  That
    is the difference between a batch job and a server: the serving
    layer answers each request out of a pool that is already warm.

    ``jobs=1`` (the default) is an inline pool: :meth:`solve` runs in
    the calling process with no multiprocessing import at all, which is
    also the mode the end-to-end tests use.

    A pool is a context manager; :meth:`close` (or ``with``-exit)
    terminates the workers.  A closed pool raises on further use.

    Args:
        library: The buffer library shared by every solve.
        algorithm: Registered algorithm name.
        jobs: Worker processes: ``1`` solves inline, ``None`` uses
            ``os.cpu_count()``.
        driver: Optional driver override applied to every net.
        backend: Candidate-store backend name, or ``"auto"``.
        **options: Algorithm-specific flags.

    Raises:
        AlgorithmError: Unknown algorithm/backend or invalid options
            (checked here, so a bad context never reaches a worker).
        ValueError: ``jobs < 1``.
    """

    def __init__(
        self,
        library: BufferLibrary,
        algorithm: str = "fast",
        jobs: Optional[int] = 1,
        driver: Optional[Driver] = None,
        backend: str = "auto",
        **options,
    ) -> None:
        from repro.core.registry import get_algorithm
        from repro.core.stores import get_store_backend, resolve_backend

        get_algorithm(algorithm).validate_options(options)
        backend = resolve_backend(backend)
        get_store_backend(backend)

        self.library = library
        self.algorithm = algorithm
        self.jobs = _resolve_jobs(jobs)
        self.driver = driver
        self.backend = backend
        self.options = dict(options)
        self._pool = None  # created lazily on the first multi-process solve
        self._closed = False
        # Guards the inline path: concurrent callers (server handler
        # threads) may pass the *same* CompiledNet, whose factory scratch
        # arenas are not thread-safe.  The multi-process path only needs
        # the creation lock below — workers get private unpickled copies
        # and Pool.map is safe to call from multiple threads.
        self._serial_lock = threading.Lock()
        # Guards lazy pool creation: without it, two threads' first
        # solves would each spawn a worker pool and leak one.
        self._create_lock = threading.Lock()

    def compile(
        self, net: Union[RoutingTree, CompiledNet]
    ) -> CompiledNet:
        """Compile ``net`` against this pool's library (idempotent)."""
        if isinstance(net, CompiledNet):
            return net
        return compile_net(net, self.library)

    def solve(
        self,
        nets: Sequence[Union[RoutingTree, CompiledNet]],
        chunksize: Optional[int] = None,
    ) -> List[BufferingResult]:
        """Buffer every net in ``nets``; results in input order.

        Plain trees are compiled here (validation once per net); pass
        :class:`CompiledNet` payloads to skip even that.  Unlike
        :func:`solve_many`, a multi-process pool dispatches even a
        single net to a worker — the worker already holds the solve
        context, which is the point of keeping the pool warm.
        """
        if self._closed:
            raise RuntimeError("SolverPool is closed")
        compiled = [self.compile(net) for net in nets]
        if self.jobs == 1 or not compiled:
            from repro.core.api import insert_buffers

            with self._serial_lock:
                return [
                    insert_buffers(
                        net, self.library, algorithm=self.algorithm,
                        driver=self.driver, backend=self.backend,
                        **self.options,
                    )
                    for net in compiled
                ]
        if chunksize is None:
            chunksize = max(1, len(compiled) // (self.jobs * 4))
        return self._ensure_pool().map(
            _solve_one, compiled, chunksize=chunksize
        )

    def _ensure_pool(self):
        with self._create_lock:
            if self._pool is None:
                import multiprocessing

                self._pool = multiprocessing.Pool(
                    processes=self.jobs,
                    initializer=_init_worker,
                    initargs=(self.library, self.algorithm, self.driver,
                              self.backend, self.options),
                )
            return self._pool

    def close(self) -> None:
        """Terminate the workers; the pool cannot be used afterwards."""
        self._closed = True
        with self._create_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SolverPool(algorithm={self.algorithm!r}, "
            f"backend={self.backend!r}, jobs={self.jobs}, b="
            f"{self.library.size}, {state})"
        )


def solve_many(
    trees: Sequence[Union[RoutingTree, CompiledNet]],
    library: BufferLibrary,
    algorithm: str = "fast",
    jobs: Optional[int] = 1,
    driver: Optional[Driver] = None,
    backend: str = "auto",
    chunksize: Optional[int] = None,
    precompile: bool = True,
    **options,
) -> List[BufferingResult]:
    """Buffer every net in ``trees``, optionally across processes.

    One-shot form of :class:`SolverPool`: worker processes (when any)
    live for this call only.  Callers that solve repeatedly against the
    same context should hold a ``SolverPool`` instead.

    Args:
        trees: The routing trees to solve (each uses its own
            ``tree.driver`` unless ``driver`` overrides all of them).
            Pre-compiled nets are accepted too and used as-is.
        library: The buffer library, shared by every solve.
        algorithm: Registered algorithm name.
        jobs: Worker processes: ``1`` (default) solves serially in this
            process; ``None`` uses ``os.cpu_count()``.
        driver: Optional driver override applied to every net.
        backend: Candidate-store backend name, or ``"auto"`` (default).
        chunksize: Nets per worker task (``jobs > 1`` only).
        precompile: Compile each net once in this process and dispatch
            the compact :class:`CompiledNet` payloads (the default, and
            the reason workers neither re-validate nor re-plan a net).
            ``False`` ships the object trees, as earlier releases did.
        **options: Algorithm-specific flags (e.g.
            ``destructive_pruning=True`` for ``"fast"``).

    Returns:
        One :class:`BufferingResult` per tree, in input order —
        identical to ``[insert_buffers(t, library, ...) for t in trees]``.

    Raises:
        AlgorithmError: Unknown algorithm/backend, invalid options, or
            an invalid tree (validation happens here, exactly once per
            net, when ``precompile`` is on).
        ValueError: ``jobs < 1``.
    """
    jobs = _resolve_jobs(jobs)

    # Fail fast (and in the parent process) on bad names/options.
    from repro.core.registry import get_algorithm
    from repro.core.stores import get_store_backend, resolve_backend

    get_algorithm(algorithm).validate_options(options)
    backend = resolve_backend(backend)
    get_store_backend(backend)

    if precompile:
        nets: List[Union[RoutingTree, CompiledNet]] = [
            net if isinstance(net, CompiledNet) else compile_net(net, library)
            for net in trees
        ]
    else:
        nets = list(trees)

    if jobs == 1 or len(nets) <= 1:
        from repro.core.api import insert_buffers

        return [
            insert_buffers(
                net, library, algorithm=algorithm, driver=driver,
                backend=backend, **options,
            )
            for net in nets
        ]

    # jobs > 1 and len(nets) > 1: a one-shot pool, torn down on return.
    with SolverPool(
        library, algorithm=algorithm, jobs=jobs, driver=driver,
        backend=backend, **options,
    ) as pool:
        return pool.solve(nets, chunksize=chunksize)
