"""Batched multi-net solving: :func:`solve_many`.

The paper optimizes one net at a time; a production flow buffers every
net of a design.  This module treats many-instance throughput as a
first-class workload: :func:`solve_many` compiles every net against the
library **once** in the parent process
(:func:`repro.core.schedule.compile_net` — validation, buffer plans and
the post-order flattening happen exactly once per net) and fans the
resulting :class:`~repro.core.schedule.CompiledNet` payloads over worker
processes.  A compiled net pickles as flat op-code/parasitic arrays — a
fraction of the object tree's payload — and tasks are dispatched in
chunks, so the pickler's memo collapses the shared library to one copy
per chunk.  Workers run the schedule interpreter directly: no
re-validation, no tree walk, no plan rebuilding per solve.

Results come back in input order and are identical to a serial loop
(asserted by ``tests/test_batch.py``); ``jobs=1`` *is* a serial loop,
with no multiprocessing import cost at all.

:func:`parallel_map` is the underlying generic helper, reused by the
experiment harness to parallelize Table 1 / figure sweep cells.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.core.schedule import CompiledNet, compile_net
from repro.core.solution import BufferingResult
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

_T = TypeVar("_T")
_R = TypeVar("_R")

# Per-worker-process solve context, installed by the pool initializer so
# the shared settings ship once per worker instead of once per net.
_WORKER_CONTEXT: Optional[dict] = None


def _init_worker(
    library: BufferLibrary,
    algorithm: str,
    driver: Optional[Driver],
    backend: str,
    options: dict,
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = {
        "library": library,
        "algorithm": algorithm,
        "driver": driver,
        "backend": backend,
        "options": options,
    }


def _solve_one(net: Union[RoutingTree, CompiledNet]) -> BufferingResult:
    from repro.core.api import insert_buffers

    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initialization"
    return insert_buffers(
        net,
        context["library"],
        algorithm=context["algorithm"],
        driver=context["driver"],
        backend=context["backend"],
        **context["options"],
    )


def _resolve_jobs(jobs: Optional[int]) -> int:
    import os

    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or None for cpu_count), got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally over worker processes.

    Args:
        fn: A picklable (module-level) callable.
        items: Work items (picklable when ``jobs > 1``).
        jobs: Worker process count; ``1`` (default) runs serially in
            this process, ``None`` uses ``os.cpu_count()``.
        chunksize: Items per task sent to a worker; defaults to an even
            split in ~4 waves per worker.
        initializer, initargs: Per-worker-process setup hook (multi-
            process runs only; the serial path never calls it, so ``fn``
            must not depend on it when ``jobs == 1``).

    Returns:
        Results in input order.
    """
    jobs = _resolve_jobs(jobs)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]

    import multiprocessing

    if chunksize is None:
        chunksize = max(1, len(items) // (jobs * 4))
    with multiprocessing.Pool(
        processes=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        return pool.map(fn, items, chunksize=chunksize)


def solve_many(
    trees: Sequence[Union[RoutingTree, CompiledNet]],
    library: BufferLibrary,
    algorithm: str = "fast",
    jobs: Optional[int] = 1,
    driver: Optional[Driver] = None,
    backend: str = "auto",
    chunksize: Optional[int] = None,
    precompile: bool = True,
    **options,
) -> List[BufferingResult]:
    """Buffer every net in ``trees``, optionally across processes.

    Args:
        trees: The routing trees to solve (each uses its own
            ``tree.driver`` unless ``driver`` overrides all of them).
            Pre-compiled nets are accepted too and used as-is.
        library: The buffer library, shared by every solve.
        algorithm: Registered algorithm name.
        jobs: Worker processes: ``1`` (default) solves serially in this
            process; ``None`` uses ``os.cpu_count()``.
        driver: Optional driver override applied to every net.
        backend: Candidate-store backend name, or ``"auto"`` (default).
        chunksize: Nets per worker task (``jobs > 1`` only).
        precompile: Compile each net once in this process and dispatch
            the compact :class:`CompiledNet` payloads (the default, and
            the reason workers neither re-validate nor re-plan a net).
            ``False`` ships the object trees, as earlier releases did.
        **options: Algorithm-specific flags (e.g.
            ``destructive_pruning=True`` for ``"fast"``).

    Returns:
        One :class:`BufferingResult` per tree, in input order —
        identical to ``[insert_buffers(t, library, ...) for t in trees]``.

    Raises:
        AlgorithmError: Unknown algorithm/backend, invalid options, or
            an invalid tree (validation happens here, exactly once per
            net, when ``precompile`` is on).
        ValueError: ``jobs < 1``.
    """
    jobs = _resolve_jobs(jobs)

    # Fail fast (and in the parent process) on bad names/options.
    from repro.core.registry import get_algorithm
    from repro.core.stores import get_store_backend, resolve_backend

    get_algorithm(algorithm).validate_options(options)
    backend = resolve_backend(backend)
    get_store_backend(backend)

    if precompile:
        nets: List[Union[RoutingTree, CompiledNet]] = [
            net if isinstance(net, CompiledNet) else compile_net(net, library)
            for net in trees
        ]
    else:
        nets = list(trees)

    if jobs == 1 or len(nets) <= 1:
        from repro.core.api import insert_buffers

        return [
            insert_buffers(
                net, library, algorithm=algorithm, driver=driver,
                backend=backend, **options,
            )
            for net in nets
        ]

    # jobs > 1 and len(nets) > 1 here, so parallel_map always takes its
    # multi-process path and the initializer is guaranteed to run.
    return parallel_map(
        _solve_one,
        nets,
        jobs=jobs,
        chunksize=chunksize,
        initializer=_init_worker,
        initargs=(library, algorithm, driver, backend, options),
    )
