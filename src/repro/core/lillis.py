"""The O(b^2 n^2) baseline (Lillis, Cheng & Lin, JSSC 1996).

The dynamic program is identical to the paper's new algorithm except for
the add-buffer operation: every buffer type scans the whole candidate
list (``O(b k)`` per buffer position), which integrates to
``O(b^2 n^2)`` because the lists grow to ``O(b n)`` candidates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.buffer_ops import BufferPlan, generate_lillis, insert_candidates
from repro.core.candidate import CandidateList
from repro.core.dp import run_dynamic_program
from repro.core.registry import InsertionAlgorithm, register_algorithm
from repro.core.solution import BufferingResult
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


def _add_buffer(candidates: CandidateList, plan: BufferPlan) -> CandidateList:
    new_candidates = generate_lillis(candidates, plan)
    return insert_candidates(candidates, new_candidates)


def _store_add_buffer(store, plan: BufferPlan):
    # One fused scan-generate + insert kernel per position (kernel
    # backends override apply_buffer; others inherit the composed
    # default from the store protocol).
    return store.apply_buffer(plan, generator="scan")


@register_algorithm("lillis")
class LillisAlgorithm(InsertionAlgorithm):
    """Exhaustive per-type scans: the baseline the paper accelerates."""

    complexity = "O(b^2 n^2)"
    summary = (
        "Lillis, Cheng & Lin (JSSC 1996): every buffer type scans the "
        "whole candidate list"
    )

    def add_buffer_op(self, backend: str, library: BufferLibrary):
        return _add_buffer if backend == "object" else _store_add_buffer

    def run(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        driver: Optional[Driver] = None,
        backend: str = "object",
    ) -> BufferingResult:
        add_buffer = self.add_buffer_op(backend, library)
        return run_dynamic_program(
            tree, library, add_buffer, algorithm="lillis", driver=driver,
            backend=backend,
        )


def insert_buffers_lillis(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver] = None,
    backend: str = "object",
) -> BufferingResult:
    """Optimal buffer insertion with the O(b^2 n^2) baseline algorithm.

    Args:
        tree: A validated routing tree.
        library: Buffer library of size ``b``.
        driver: Source driver (defaults to ``tree.driver``).
        backend: Candidate-store backend (``"object"`` or ``"soa"``).

    Returns:
        The optimal :class:`BufferingResult`; its slack equals the fast
        algorithm's on every instance (both are exact).
    """
    return LillisAlgorithm().run(tree, library, driver=driver, backend=backend)
