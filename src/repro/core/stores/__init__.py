"""Candidate-store backends and their registry.

A *backend* decides how the DP's per-subtree candidate lists are stored
and how the paper's operations execute over them:

* ``"object"`` — the seed representation: a Python list of
  :class:`~repro.core.candidate.Candidate` objects (reference
  implementation; default).
* ``"soa"`` — structure of arrays: parallel NumPy ``q``/``c`` float
  arrays plus a decision index array; hot loops are whole-array
  operations (:mod:`repro.core.stores.soa`).

Third-party backends register without touching core::

    from repro.core.stores import register_store_backend
    from repro.core.stores.base import StoreFactory

    @register_store_backend("mmap")
    class MmapStoreFactory(StoreFactory):
        ...

    insert_buffers(tree, library, backend="mmap")
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type

from repro.core.stores.base import BestCandidate, CandidateStore, StoreFactory
from repro.core.stores.object_store import ObjectStore, ObjectStoreFactory
from repro.core.stores.soa import SoAStore, SoAStoreFactory
from repro.errors import AlgorithmError

_BACKENDS: Dict[str, Type[StoreFactory]] = {}


def register_store_backend(
    name: str,
) -> Callable[[Type[StoreFactory]], Type[StoreFactory]]:
    """Class decorator registering a :class:`StoreFactory` under ``name``.

    Raises:
        AlgorithmError: If ``name`` is already taken (re-registering the
            same class is a no-op, so modules may be safely re-imported).
    """

    def decorator(factory_cls: Type[StoreFactory]) -> Type[StoreFactory]:
        existing = _BACKENDS.get(name)
        if existing is not None and existing is not factory_cls:
            raise AlgorithmError(
                f"candidate-store backend {name!r} is already registered "
                f"to {existing.__name__}"
            )
        factory_cls.backend = name
        _BACKENDS[name] = factory_cls
        return factory_cls

    return decorator


def unregister_store_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _BACKENDS.pop(name, None)


def get_store_backend(name: str) -> Type[StoreFactory]:
    """The factory class registered under ``name``.

    Raises:
        AlgorithmError: Unknown backend name.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown candidate-store backend {name!r}; "
            f"choose one of {store_backend_names()}"
        ) from None


def store_backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


#: Pseudo-backend resolved by :func:`resolve_backend` to the fastest
#: backend the environment supports.
AUTO_BACKEND = "auto"


def resolve_backend(name: str) -> str:
    """Resolve a backend name, mapping ``"auto"`` to a concrete backend.

    ``"auto"`` picks ``"soa"`` when NumPy is importable and falls back
    to ``"object"`` otherwise, so callers get the fast path by default
    without breaking NumPy-less installs.  Concrete names (including
    third-party registrations) pass through unchanged; unknown names
    are rejected by :func:`get_store_backend` at lookup time.
    """
    if name != AUTO_BACKEND:
        return name
    from repro.core.stores.soa import np as _np

    return "object" if _np is None else "soa"


register_store_backend("object")(ObjectStoreFactory)
register_store_backend("soa")(SoAStoreFactory)

__all__ = [
    "BestCandidate",
    "CandidateStore",
    "StoreFactory",
    "ObjectStore",
    "ObjectStoreFactory",
    "SoAStore",
    "SoAStoreFactory",
    "register_store_backend",
    "unregister_store_backend",
    "get_store_backend",
    "store_backend_names",
    "AUTO_BACKEND",
    "resolve_backend",
]
