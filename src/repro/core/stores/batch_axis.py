"""Batch-axis kernel execution: one compiled instruction, many nets.

The SoA engine of :mod:`repro.core.stores.soa` removed per-candidate
Python, which left NumPy *launch latency* as the floor: every kernel
call costs ~1µs regardless of how many candidates it touches, so at
small and medium list lengths the interpreter pays more for launching
kernels than for the arithmetic inside them.  This module amortizes the
launches the same way an inference server amortizes a forward pass:
``N`` **structurally identical** nets (same instruction stream, same
plan table — the multi-corner case the serving layer's ``/batch`` dedup
discovers) execute as *one* interpreter walk whose every kernel carries
an extra leading **lane axis** of size ``N``.

Layout
======

:class:`BatchedSoAStore` holds ``(lanes, capacity)`` blocks ``q`` /
``c`` / ``d`` plus a per-lane logical-length column ``n``: lane ``i``'s
candidate list is the row prefix ``q[i, :n[i]]``.  Lanes are *ragged* —
different corners prune differently — so every whole-matrix kernel is
masked by the length column and followed by a masked compaction that
left-packs survivors per row.

Bit-identity
============

Each lane must produce *exactly* the result the single-net compiled-soa
path produces (the parity corpus in ``tests/test_batch_axis.py``
asserts ``==`` on slack, assignment and DPStats):

* arithmetic kernels (the WIRE shift, the hull-walk value matrix, the
  root evaluation) run the same IEEE-754 operations in the same order —
  the lane axis only changes *where* results land, never what is
  computed;
* selection kernels replay the scalar rules: the masked dominance prune
  is the strict running-max mask of :func:`soa._keep_indices` per row,
  with the same per-lane scalar fallback on equal-``c`` ties; the
  batched hull walk selects each type's candidate by first-hit argmax
  over the *full* list, which provably lands on the same candidate the
  hull walk of :func:`soa._walk_pointers_dense` stops at (see
  :meth:`BatchedSoAStore._betas_batched`), so the hot path builds no
  hulls at all; where real hull rows are required (load caps,
  destructive Convexpruning) each lane runs the exact single-net
  :func:`soa._hull_indices` selection;
* paths that are inherently per-lane (MERGE pairing, load-capped and
  scan beta generation) call the *same* extracted kernels the single-net
  store calls (:func:`soa._merge_pairs`, :func:`soa._generate_betas`),
  so they cannot drift.

Provenance is a single shared :class:`soa.ProvenanceTape`: each lane's
``d`` column indexes interleaved records (bulk sink/merge/buffer
appends carry per-lane runs), and the root backtrace per lane walks
only that lane's chain — ``reconstruct_assignment`` is unchanged.

Fallback rules
==============

Grouping is an optimization the caller applies when
:func:`batch_axis_available` holds and at least two nets share a
:func:`repro.core.schedule.group_signature`; anything else (no NumPy,
non-``soa`` backend, algorithms without a store ``add_buffer`` op,
singleton groups, mixed structures) takes the existing per-net path.
:func:`solve_group` itself validates lane compatibility and raises
:class:`~repro.errors.AlgorithmError` on misuse — the *callers* in
:mod:`repro.core.batch` only form groups they can legally dispatch.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

try:  # gated exactly like repro.core.stores.soa
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs
    np = None  # type: ignore[assignment]

from repro.core.buffer_ops import BufferPlan
from repro.core.candidate import reconstruct_assignment
from repro.core.pruning import prune_dominated_indices
from repro.core.solution import BufferingResult, DPStats
from repro.core.stores.base import BestCandidate
from repro.core.stores.soa import (
    _NEG_INF,
    ProvenanceTape,
    ScratchArena,
    _generate_betas,
    _hull_indices,
    _keep_indices,
    _merge_pairs,
    kernel_cutoff,
    plan_kernel,
    prime_plan_kernels,
)
from repro.errors import AlgorithmError
from repro.obs.profiler import instrument_ops, record_lane_count
from repro.obs.spans import active_tracer
from repro.resilience.deadline import active_deadline


def batch_axis_available() -> bool:
    """Whether the batch-axis engine can run at all (NumPy present)."""
    return np is not None


class BatchedScratchArena:
    """A recycling pool of ``(lanes, power-of-two)`` NumPy blocks.

    The lane-axis twin of :class:`soa.ScratchArena`: ``f8(w)`` /
    ``ip(w)`` hand out whole capacity-backed blocks (callers track
    logical widths per lane), ``recycle`` returns them, and ``reset``
    between solves keeps the grown pool.  Blocks are uninitialized —
    every kernel that could read a stale column masks it first.
    """

    __slots__ = ("lanes", "_free_f8", "_free_ip", "_lent")

    def __init__(self, lanes: int) -> None:
        self.lanes = lanes
        self._free_f8: Dict[int, list] = {}
        self._free_ip: Dict[int, list] = {}
        self._lent: set = set()

    def _borrow(self, pool, width: int, dtype):
        capacity = ScratchArena._capacity(max(width, 1))
        blocks = pool.get(capacity)
        if blocks:
            block = blocks.pop()
        else:
            block = np.empty((self.lanes, capacity), dtype=dtype)
        self._lent.add(id(block))
        return block

    def f8(self, width: int):
        """Borrow a float64 block of per-lane capacity ``>= width``."""
        return self._borrow(self._free_f8, width, np.float64)

    def ip(self, width: int):
        """Borrow an intp block of per-lane capacity ``>= width``."""
        return self._borrow(self._free_ip, width, np.intp)

    def recycle(self, block) -> None:
        """Return a block to its pool (foreign arrays ignored)."""
        if block is None:
            return
        key = id(block)
        if key in self._lent:
            self._lent.remove(key)
            pool = self._free_f8 if block.dtype == np.float64 else self._free_ip
            pool.setdefault(block.shape[1], []).append(block)

    def reset(self) -> None:
        """Forget outstanding loans (their blocks died with the solve)."""
        self._lent.clear()

    def stats(self) -> Dict[str, int]:
        pooled = 0
        free = 0
        for pool in (self._free_f8, self._free_ip):
            for blocks in pool.values():
                free += len(blocks)
                pooled += sum(block.nbytes for block in blocks)
        return {
            "free_blocks": free,
            "lent_blocks": len(self._lent),
            "pooled_bytes": pooled,
        }


class BatchedSoAFactory:
    """Per-group context: shared tape, lane arena, named work matrices.

    One factory serves one *group width* (``lanes``) and may be reused
    across groups of that width — :meth:`begin_solve` rewinds the tape
    and resets both arenas without freeing capacity, so repeat grouped
    solves run warm exactly like the single-net factory does.

    ``cells`` is an ordinary 1-D :class:`soa.ScratchArena`; it backs
    the shared :class:`soa.ProvenanceTape` and the per-lane length
    columns.  ``work(name, width, dtype)`` hands out persistent named
    ``(lanes, >=width)`` staging matrices (grown monotonically, never
    recycled) — the batched kernels' equivalent of the single-net
    factory's ``scratch_f8`` row.  A name is valid only within one
    store operation; the next operation may reuse it.
    """

    def __init__(self, lanes: int) -> None:
        if np is None:
            raise AlgorithmError(
                "the batch-axis engine requires numpy, which is not "
                "installed; solve nets individually instead"
            )
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        self.lanes = lanes
        self.cells = ScratchArena()
        self.tape = ProvenanceTape(self.cells)
        self.arena = BatchedScratchArena(lanes)
        self.solves = 0
        self._scratch = np.empty(0, dtype=np.float64)
        self._work: Dict[str, object] = {}

    def scratch_f8(self, n: int):
        """A persistent 1-D float64 scratch row (per-lane fallbacks)."""
        scratch = self._scratch
        if len(scratch) < n:
            scratch = np.empty(ScratchArena._capacity(n), dtype=np.float64)
            self._scratch = scratch
        return scratch[:n]

    def work(self, name: str, width: int, dtype):
        """The named persistent ``(lanes, width)`` staging view."""
        block = self._work.get(name)
        capacity = ScratchArena._capacity(max(width, 1))
        if block is None or block.shape[1] < capacity:
            block = np.empty((self.lanes, capacity), dtype=dtype)
            self._work[name] = block
        return block[:, :width]

    def begin_solve(self) -> None:
        self.solves += 1
        self.tape.reset()
        self.cells.reset()
        self.arena.reset()

    def end_solve(self) -> None:
        self.tape.reset()

    def lengths(self):
        """A fresh per-lane length column (recycled with its store)."""
        return self.cells.ip(self.lanes)

    def sink_group(self, node_id: int, q_col, c_col) -> "BatchedSoAStore":
        """All lanes' sink candidate at ``node_id``, one tape append."""
        base = self.tape.append_sinks(node_id, self.lanes)
        arena = self.arena
        q = arena.f8(1)
        c = arena.f8(1)
        d = arena.ip(1)
        q[:, 0] = q_col
        c[:, 0] = c_col
        d[:, 0] = np.arange(base, base + self.lanes, dtype=np.intp)
        n = self.lengths()
        n[:] = 1
        return BatchedSoAStore(q, c, d, n, self)

    def stats(self) -> Dict[str, object]:
        """Engine health for the serving layer's ``/stats``."""
        return {
            "solves": self.solves,
            "lanes": self.lanes,
            "arena": self.arena.stats(),
            "cells": self.cells.stats(),
            "tape": self.tape.stats(),
        }


def _keep_rows(factory: BatchedSoAFactory, q, c, lengths, width: int):
    """Per-lane dominance-prune survivor mask over ``(lanes, width)``.

    Lane ``i``'s row of the returned bool view marks exactly the
    indices :func:`soa._keep_indices` keeps on ``q[i, :lengths[i]]`` /
    ``c[i, :lengths[i]]`` (selection only, so trivially bit-identical).
    Tiny problems take the scalar scan per lane; otherwise the tie-free
    strict running-max mask runs batched, with a per-lane scalar
    fallback for lanes whose valid prefix contains an equal-``c`` tie.
    Columns at or beyond a lane's length are always ``False``.
    """
    lanes = q.shape[0]
    keep = factory.work("keep_rows", width, bool)
    if lanes * width <= kernel_cutoff():
        for lane in range(lanes):
            length = int(lengths[lane])
            row = keep[lane]
            row[:] = False
            if length == 0:
                continue
            kept = prune_dominated_indices(
                q[lane, :length].tolist(), c[lane, :length].tolist()
            )
            if len(kept) == length:
                row[:length] = True
            else:
                row[np.array(kept, dtype=np.intp)] = True
        return keep
    iota = factory.cells.iota
    valid = factory.work("keep_valid", width, bool)
    np.less(iota(width)[None, :], lengths[:, None], out=valid)
    keep[:, 0] = True
    if width > 1:
        running = factory.work("keep_runmax", width, np.float64)
        np.maximum.accumulate(q, axis=1, out=running)
        np.greater(q[:, 1:], running[:, :-1], out=keep[:, 1:])
    np.logical_and(keep, valid, out=keep)
    if width > 1:
        tie = factory.work("keep_tie", width, bool)
        np.equal(c[:, 1:], c[:, :-1], out=tie[:, : width - 1])
        np.logical_and(tie[:, : width - 1], valid[:, 1:],
                       out=tie[:, : width - 1])
        tie_lanes = tie[:, : width - 1].any(axis=1)
        if tie_lanes.any():
            # Equal-c runs need the general rule (first max-q of each
            # run): replay the scalar scan on just those lanes.
            for lane in np.flatnonzero(tie_lanes):
                length = int(lengths[lane])
                kept = prune_dominated_indices(
                    q[lane, :length].tolist(), c[lane, :length].tolist()
                )
                row = keep[lane]
                row[:] = False
                row[np.array(kept, dtype=np.intp)] = True
    return keep


def _compact_rows(factory: BatchedSoAFactory, keep, width: int,
                  blocks) -> None:
    """Left-pack the kept columns of every row of ``blocks`` in place.

    ``keep`` is a ``(lanes, width)`` survivor mask.  Safe in place:
    destinations never exceed sources (fancy-index assignment reads the
    whole right-hand side before writing).
    """
    rows, cols = np.nonzero(keep)
    positions = factory.work("compact_pos", width, np.intp)
    np.cumsum(keep, axis=1, dtype=np.intp, out=positions)
    dst = positions[rows, cols] - 1
    for block in blocks:
        block[rows, dst] = block[rows, cols]


class BatchedSoAStore:
    """``N`` candidate lists as ``(lanes, capacity)`` blocks + lengths.

    The lane-axis twin of :class:`soa.SoAStore`.  ``q`` / ``c`` hold
    the slack/load columns, ``d`` per-lane tape indices, and ``n`` the
    per-lane logical lengths; every kernel operates on the
    ``[:, :n.max()]`` prefix under masks derived from ``n``.  The
    in-place operations return ``self`` so the algorithms' store
    ``add_buffer`` callables (``store.apply_buffer(plan, ...)``) work
    unchanged.
    """

    __slots__ = ("q", "c", "d", "n", "factory")

    def __init__(self, q, c, d, n, factory: BatchedSoAFactory) -> None:
        self.q = q
        self.c = c
        self.d = d
        self.n = n
        self.factory = factory

    @property
    def lanes(self) -> int:
        return self.factory.lanes

    def __len__(self) -> int:
        """Widest lane (the interpreter tracks per-lane stats itself)."""
        return int(self.n.max())

    def release(self) -> None:
        if self.q is not None:
            arena = self.factory.arena
            arena.recycle(self.q)
            arena.recycle(self.c)
            arena.recycle(self.d)
            self.factory.cells.recycle(self.n)
        self.q = self.c = self.d = self.n = None

    # -- shared masked prune -------------------------------------------

    def _prune(self) -> None:
        """Masked dominance re-prune + compaction of every lane."""
        n = self.n
        width = int(n.max())
        if width == 0:
            return
        factory = self.factory
        keep = _keep_rows(factory, self.q[:, :width], self.c[:, :width],
                          n, width)
        counts = keep.sum(axis=1)
        if (counts == n).all():
            return
        _compact_rows(factory, keep, width, (self.q, self.c, self.d))
        np.copyto(n, counts)

    # -- WIRE ----------------------------------------------------------

    def add_wire(self, r_col, c_col) -> "BatchedSoAStore":
        """The Elmore shift across all lanes, fully in place.

        ``r_col`` / ``c_col`` are per-lane parasitics of the *same*
        structural edge (corners differ per lane).  Identical staging
        to :meth:`soa.SoAStore.add_wire` with a broadcast lane axis:
        ``q -= r * (c_wire/2 + c)``, ``c += c_wire`` (note
        ``c * 0.5 == c / 2.0`` exactly — both are correctly rounded).
        A lane with ``r == c == 0`` is arithmetically untouched and,
        being already nonredundant, unchanged by the re-prune — exactly
        the single-net early-return.
        """
        n = self.n
        width = int(n.max())
        if width == 0:
            return self
        q = self.q[:, :width]
        c = self.c[:, :width]
        factory = self.factory
        half = factory.work("wire_half", 1, np.float64)[:, 0]
        np.multiply(c_col, 0.5, out=half)
        shift = factory.work("wire_shift", width, np.float64)
        np.add(c, half[:, None], out=shift)
        np.multiply(shift, r_col[:, None], out=shift)
        np.subtract(q, shift, out=q)
        np.add(c, c_col[:, None], out=c)
        self._prune()
        return self

    # -- MERGE ---------------------------------------------------------

    def merge(self, other: "BatchedSoAStore") -> "BatchedSoAStore":
        """Per-lane two-pointer merge through :func:`soa._merge_pairs`.

        Merges have no batched form (each lane's pairing depends on its
        own value interleaving), but they are also the cheap, rare
        instruction — sink fan-in only.  An empty side passes the other
        lane's row through unchanged, matching the single-net
        short-circuit (values and tape indices are preserved; only
        their storage row moves).
        """
        factory = self.factory
        tape = factory.tape
        arena = factory.arena
        iota = factory.cells.iota
        ln = self.n
        rn = other.n
        bound = int((ln + rn).max())
        out_q = arena.f8(bound)
        out_c = arena.f8(bound)
        out_d = arena.ip(bound)
        out_n = factory.lengths()
        for lane in range(factory.lanes):
            a = int(ln[lane])
            b = int(rn[lane])
            if a == 0 or b == 0:
                src = other if a == 0 else self
                count = a + b
                out_q[lane, :count] = src.q[lane, :count]
                out_c[lane, :count] = src.c[lane, :count]
                out_d[lane, :count] = src.d[lane, :count]
                out_n[lane] = count
                continue
            pair_i, pair_j, pair_q, pair_c, keep = _merge_pairs(
                self.q[lane, :a], self.c[lane, :a],
                other.q[lane, :b], other.c[lane, :b],
            )
            base = tape.append_merges(
                self.d[lane, :a][pair_i], other.d[lane, :b][pair_j]
            )
            kept = len(pair_i)
            if keep is None:
                out_q[lane, :kept] = pair_q
                out_c[lane, :kept] = pair_c
            else:
                pair_q.take(keep, out=out_q[lane, :kept])
                pair_c.take(keep, out=out_c[lane, :kept])
            np.add(iota(kept), base, out=out_d[lane, :kept])
            out_n[lane] = kept
        return BatchedSoAStore(out_q, out_c, out_d, out_n, factory)

    # -- BUFFER --------------------------------------------------------

    def _hull_rows(self):
        """Per-lane convex hulls as masked ``(lanes, hmax)`` matrices.

        Returns ``(hq, hc, hd, hn, hmax)`` — work views holding each
        lane's hull prefix.  Only the load-capped walk and destructive
        (Convexpruning) compaction consume hull *rows*, and both are
        per-lane data flows anyway, so each lane runs
        :func:`soa._hull_indices` — the very selection the sequential
        path runs on the same floats — and gathers its survivors into
        the shared views.  The batched no-caps walk never calls this
        (see :meth:`_betas_batched` for why it needs no hull at all).
        """
        n = self.n
        width = int(n.max())
        factory = self.factory
        hq = factory.work("hull_q", width, np.float64)
        hc = factory.work("hull_c", width, np.float64)
        hd = factory.work("hull_d", width, np.intp)
        hn = np.array(n)
        for lane in range(factory.lanes):
            length = int(n[lane])
            if length == 0:
                continue
            idx = _hull_indices(self.q[lane, :length], self.c[lane, :length])
            kept = len(idx)
            self.q[lane, :length].take(idx, out=hq[lane, :kept])
            self.c[lane, :length].take(idx, out=hc[lane, :kept])
            self.d[lane, :length].take(idx, out=hd[lane, :kept])
            hn[lane] = kept
        return hq, hc, hd, hn, int(hn.max())

    def _betas_batched(self, plan: BufferPlan):
        """The no-load-caps hull walk over all lanes and types at once.

        No hull is built here, and none is needed: the single-net walk
        (:func:`soa._walk_pointers_dense`) stops each type at the first
        non-improving step of its value profile along the hull, and
        because values of ``q - r c`` along a convex hull are unimodal,
        that stop is the hull's *first maximizer*.  The same candidate
        is recoverable from the full list directly — every maximizer
        lies on the hull's maximizing face, the face's minimum-``c``
        vertex is the walk's stop, and lists are sorted by strictly
        increasing ``c``, so a first-hit ``argmax`` over the full list
        lands on the identical candidate (same floats through the same
        ``q - r c`` kernel ops; interior points are strictly below the
        face, collinear face points follow the stop in list order).
        Skipping hull construction entirely is what lets the walk run
        as one fused ``(lanes, b, width)`` kernel; pad columns are
        masked to ``-inf`` so each lane's argmax stays inside its own
        prefix.  The beta emission of :func:`soa._generate_betas` then
        runs as masked row kernels with one bulk tape append covering
        every lane.  Returns ``(nq, nc, nd, m, mmax)`` — per-lane beta
        rows and counts (``m[i] == 0`` for lanes that emit nothing).
        """
        kern = plan_kernel(plan)
        factory = self.factory
        lanes = factory.lanes
        iota = factory.cells.iota
        size = kern.size
        n = self.n
        width = int(n.max())
        values = np.multiply(kern.r[None, :, None], self.c[:, None, :width])
        np.subtract(self.q[:, None, :width], values, out=values)
        pad = factory.work("walk_pad", width, bool)
        np.greater_equal(iota(width)[None, :], n[:, None], out=pad)
        np.copyto(values, _NEG_INF, where=pad[:, None, :])
        pointers = values.argmax(axis=2)
        vals = np.take_along_axis(values, pointers[:, :, None], axis=2)[:, :, 0]
        beta_q = vals - kern.k[None, :]
        below = np.take_along_axis(self.d[:, :width], pointers, axis=1)
        if kern.cap_identity:
            ordered = kern.iota_b
            bq = beta_q
            below_ordered = below
        else:
            ordered = kern.cap_order
            bq = beta_q[:, ordered]
            below_ordered = below[:, ordered]
        bc = kern.c_in_cap

        # Beta prune per lane (selection identical to the scalar
        # prune_dominated_indices the single-net path runs on b values).
        active = self.n > 0
        keep = factory.work("beta_keep", size, bool)
        if size > 1 and bool((bc[1:] == bc[:-1]).any()):
            # Equal C_in between adjacent types needs the general
            # equal-c-run rule: replay the scalar prune per lane.
            keep[:] = False
            for lane in np.flatnonzero(active):
                kept = prune_dominated_indices(bq[lane].tolist(), bc.tolist())
                keep[lane, np.array(kept, dtype=np.intp)] = True
        else:
            keep[:, 0] = True
            if size > 1:
                running = factory.work("beta_runmax", size, np.float64)
                np.maximum.accumulate(bq, axis=1, out=running)
                np.greater(bq[:, 1:], running[:, :-1], out=keep[:, 1:])
            np.logical_and(keep, active[:, None], out=keep)

        m = keep.sum(axis=1)
        mmax = int(m.max())
        if mmax == 0:
            return None, None, None, m, 0
        rows, cols = np.nonzero(keep)
        base = factory.tape.append_buffers(
            below_ordered[rows, cols], ordered[cols], plan
        )
        offsets = np.zeros(lanes, dtype=np.intp)
        np.cumsum(m[:-1], out=offsets[1:])
        positions = factory.work("beta_pos", size, np.intp)
        np.cumsum(keep, axis=1, dtype=np.intp, out=positions)
        dst = positions[rows, cols] - 1
        nq = factory.work("beta_q_rows", mmax, np.float64)
        nc = factory.work("beta_c_rows", mmax, np.float64)
        nd = factory.work("beta_d_rows", mmax, np.intp)
        nq[rows, dst] = bq[rows, cols]
        nc[rows, dst] = bc[cols]
        nd[rows, dst] = base + offsets[rows] + dst
        return nq, nc, nd, m, mmax

    def _betas_per_lane(self, plan: BufferPlan, scan: bool,
                        hull=None):
        """Per-lane beta generation through :func:`soa._generate_betas`.

        The load-capped hull path and the Lillis scan path have
        per-lane data flow (prefix scans against each lane's own list),
        so they run the extracted single-net kernel lane by lane against
        the shared tape — bit-identity is inherited, not re-proven.
        """
        factory = self.factory
        n = self.n
        per_lane: List[Optional[tuple]] = []
        mmax = 0
        for lane in range(factory.lanes):
            length = int(n[lane])
            if length == 0:
                per_lane.append(None)
                continue
            if scan:
                hull_arrays = None
            else:
                hq, hc, hd, hn, _ = hull
                hull_length = int(hn[lane])
                hull_arrays = (
                    hq[lane, :hull_length],
                    hc[lane, :hull_length],
                    hd[lane, :hull_length],
                )
            betas = _generate_betas(
                self.q[lane, :length], self.c[lane, :length],
                self.d[lane, :length], plan, factory.tape,
                factory.scratch_f8, factory.cells.iota, scan, hull_arrays,
            )
            per_lane.append(betas)
            if betas is not None and len(betas[0]) > mmax:
                mmax = len(betas[0])
        m = np.zeros(factory.lanes, dtype=np.intp)
        if mmax == 0:
            return None, None, None, m, 0
        nq = factory.work("beta_q_rows", mmax, np.float64)
        nc = factory.work("beta_c_rows", mmax, np.float64)
        nd = factory.work("beta_d_rows", mmax, np.intp)
        for lane, betas in enumerate(per_lane):
            if betas is None:
                continue
            bq, bc, bd = betas
            count = len(bq)
            nq[lane, :count] = bq
            nc[lane, :count] = bc
            nd[lane, :count] = bd
            m[lane] = count
        return nq, nc, nd, m, mmax

    def _insert_rows(self, nq, nc, nd, m, mmax: int) -> None:
        """Theorem-2 sorted insertion + final prune across all lanes.

        Stage each lane's old prefix followed by its betas, sort every
        row by ``c`` with one stable axis-1 argsort (old-before-new on
        equal ``c`` — the object backend's ``<=`` merge — and ``+inf``
        pad keys sorting last), then masked-prune and gather survivors
        into fresh arena blocks.
        """
        factory = self.factory
        iota = factory.cells.iota
        n = self.n
        total = n + m
        full = int(total.max())
        width = int(n.max())
        aq = factory.work("ins_q", full, np.float64)
        ac = factory.work("ins_c", full, np.float64)
        ad = factory.work("ins_d", full, np.intp)
        if width:
            aq[:, :width] = self.q[:, :width]
            ac[:, :width] = self.c[:, :width]
            ad[:, :width] = self.d[:, :width]
        new_mask = factory.work("ins_new", mmax, bool)
        np.less(iota(mmax)[None, :], m[:, None], out=new_mask)
        rows, cols = np.nonzero(new_mask)
        dst = n[rows] + cols
        aq[rows, dst] = nq[rows, cols]
        ac[rows, dst] = nc[rows, cols]
        ad[rows, dst] = nd[rows, cols]
        invalid = factory.work("ins_pad", full, bool)
        np.greater_equal(iota(full)[None, :], total[:, None], out=invalid)
        np.copyto(ac[:, :full], np.inf, where=invalid)
        order = np.argsort(ac[:, :full], axis=1, kind="stable")
        sq = np.take_along_axis(aq[:, :full], order, axis=1)
        sc = np.take_along_axis(ac[:, :full], order, axis=1)
        sd = np.take_along_axis(ad[:, :full], order, axis=1)
        keep = _keep_rows(factory, sq, sc, total, full)
        counts = keep.sum(axis=1)
        arena = factory.arena
        out_q = arena.f8(full)
        out_c = arena.f8(full)
        out_d = arena.ip(full)
        rows, cols = np.nonzero(keep)
        positions = factory.work("compact_pos", full, np.intp)
        np.cumsum(keep, axis=1, dtype=np.intp, out=positions)
        dst = positions[rows, cols] - 1
        out_q[rows, dst] = sq[rows, cols]
        out_c[rows, dst] = sc[rows, cols]
        out_d[rows, dst] = sd[rows, cols]
        arena.recycle(self.q)
        arena.recycle(self.c)
        arena.recycle(self.d)
        self.q = out_q
        self.c = out_c
        self.d = out_d
        np.copyto(n, counts)

    def apply_buffer(
        self, plan: BufferPlan, generator: str = "hull",
        destructive: bool = False,
    ) -> "BatchedSoAStore":
        """The fused BUFFER kernel across all lanes, in place.

        Mirrors :meth:`soa.SoAStore.apply_buffer` lane for lane: empty
        lanes pass through untouched (the single-net early return), the
        uncapped hull path runs fully batched, and the capped/scan
        paths run the shared per-lane kernel.
        """
        n = self.n
        width = int(n.max())
        if width == 0:
            return self
        if generator == "scan":
            nq, nc, nd, m, mmax = self._betas_per_lane(plan, scan=True)
            if mmax:
                self._insert_rows(nq, nc, nd, m, mmax)
            return self
        hull = None
        if plan_kernel(plan).has_caps or destructive:
            hull = self._hull_rows()
        if plan_kernel(plan).has_caps:
            nq, nc, nd, m, mmax = self._betas_per_lane(
                plan, scan=False, hull=hull
            )
        else:
            nq, nc, nd, m, mmax = self._betas_batched(plan)
        if destructive:
            # Convexpruning: only the hull survives into the ongoing
            # list (betas were generated from the pre-replacement list
            # first, exactly like the single-net path).
            hq, hc, hd, hn, hmax = hull
            self.q[:, :hmax] = hq[:, :hmax]
            self.c[:, :hmax] = hc[:, :hmax]
            self.d[:, :hmax] = hd[:, :hmax]
            np.copyto(self.n, hn)
        if mmax:
            self._insert_rows(nq, nc, nd, m, mmax)
        return self

    # -- root ----------------------------------------------------------

    def best_for_lane(self, lane: int, resistance: float) -> Optional[BestCandidate]:
        """Lane ``lane``'s first argmax of ``q - R c`` (root rule)."""
        length = int(self.n[lane])
        if length == 0:
            return None
        q = self.q[lane, :length]
        c = self.c[lane, :length]
        values = self.factory.scratch_f8(length)
        np.multiply(c, resistance, out=values)
        np.subtract(q, values, out=values)
        index = int(values.argmax())
        return BestCandidate(
            q=float(q[index]),
            c=float(c[index]),
            decision=self.factory.tape.ref(int(self.d[lane, index])),
        )


def solve_group(
    nets,
    library,
    algorithm: str = "fast",
    driver=None,
    options: Optional[Dict[str, object]] = None,
    factory: Optional[BatchedSoAFactory] = None,
) -> List[BufferingResult]:
    """Solve structurally identical compiled nets as one batched walk.

    ``nets`` are :class:`~repro.core.schedule.CompiledNet` instances
    sharing one :func:`~repro.core.schedule.group_signature` (callers
    group; this validates).  Fetches each instruction once and executes
    it across all lanes; finishing (driver evaluation, backtrace,
    stats) is per lane, so lanes may carry different drivers, sink
    payloads and wire parasitics.  Returns per-lane
    :class:`BufferingResult`\\ s in input order, each bit-identical to
    the single-net compiled-soa solve of that lane.

    ``runtime_seconds`` in each lane's stats is the group wall-clock
    divided by the lane count — the amortized per-net cost, which is
    the comparable number against a sequential per-net solve.
    """
    from repro.core.registry import get_algorithm
    from repro.core.schedule import group_signature

    if np is None:
        raise AlgorithmError(
            "the batch-axis engine requires numpy, which is not installed"
        )
    if not nets:
        return []
    representative = nets[0]
    signature = group_signature(representative)
    for net in nets[1:]:
        if group_signature(net) != signature:
            raise AlgorithmError(
                "batch-axis group contains structurally different nets; "
                "group by repro.core.schedule.group_signature first"
            )
    options = dict(options or {})
    algo = get_algorithm(algorithm)
    add_buffer = algo.add_buffer_op("soa", library, **options)
    label = algo.stats_label(**options)
    for net in nets:
        net.check_library(library)

    lanes = len(nets)
    if factory is None:
        factory = BatchedSoAFactory(lanes)
    elif factory.lanes != lanes:
        raise AlgorithmError(
            f"group factory has {factory.lanes} lanes, group has {lanes}"
        )
    plans = representative.plans()
    prime_plan_kernels(plans)
    steps = representative.runtime()[0]
    sink_node = representative.runtime()[3]
    wire_r = np.array([net.wire_r for net in nets], dtype=np.float64)
    wire_c = np.array([net.wire_c for net in nets], dtype=np.float64)
    sink_q = np.array([net.sink_q for net in nets], dtype=np.float64)
    sink_c = np.array([net.sink_c for net in nets], dtype=np.float64)
    drivers = [
        net.driver if driver is None else driver for net in nets
    ]

    record_lane_count(lanes)
    factory.begin_solve()
    deadline = active_deadline()
    tracer = active_tracer()
    # Hoisted unbound ops: a local load per instruction instead of an
    # attribute lookup, and the uniform shape the kernel profiler wraps.
    # With no active profiler these come back untouched (one
    # thread-local read for the whole group).
    sink_op, wire_op, merge_op, buffer_op, end_range = instrument_ops(
        factory.sink_group, BatchedSoAStore.add_wire,
        BatchedSoAStore.merge, add_buffer,
    )
    group_handle = (
        tracer.begin(
            "batch_axis.group", lanes=lanes, instructions=len(steps)
        )
        if tracer is not None
        else None
    )
    started = time.perf_counter()
    stack: List[BatchedSoAStore] = []
    peak = np.zeros(lanes, dtype=np.intp)
    generated = np.zeros(lanes, dtype=np.intp)
    scratch_counts = np.empty(lanes, dtype=np.intp)
    # Stale lane columns can hold any bit pattern; masked kernels may
    # touch them arithmetically before discarding them, so overflow and
    # invalid-operation warnings from the pad region are expected noise.
    with np.errstate(over="ignore", invalid="ignore"):
        for op, arg in steps:
            code = op & 3
            if code == 1:  # OP_WIRE
                current = wire_op(stack[-1], wire_r[:, arg], wire_c[:, arg])
            elif code == 0:  # OP_SINK
                current = sink_op(
                    sink_node[arg], sink_q[:, arg], sink_c[:, arg]
                )
                generated += 1
                stack.append(current)
            elif code == 2:  # OP_MERGE
                right = stack.pop()
                left = stack.pop()
                current = merge_op(left, right)
                generated += current.n
                left.release()
                right.release()
                stack.append(current)
            else:  # OP_BUFFER
                top = stack[-1]
                scratch_counts[:] = top.n
                current = buffer_op(top, plans[arg])
                if current is not top:  # pragma: no cover - custom algos
                    top.release()
                    stack[-1] = current
                np.subtract(current.n, scratch_counts, out=scratch_counts)
                np.maximum(scratch_counts, 0, out=scratch_counts)
                generated += scratch_counts
            if op & 4:  # OP_FINAL
                np.maximum(peak, current.n, out=peak)
                if deadline is not None:
                    deadline.check("batch_axis.group")
                if end_range is not None:
                    end_range(int(current.n.max()))
    if group_handle is not None:
        tracer.end(group_handle)
    root = stack.pop()
    assert not stack, "schedule left operands on the stack"
    elapsed = time.perf_counter() - started
    amortized = elapsed / lanes

    results: List[BufferingResult] = []
    for lane in range(lanes):
        lane_driver = drivers[lane]
        resistance = lane_driver.resistance if lane_driver is not None else 0.0
        best = root.best_for_lane(lane, resistance)
        assert best is not None  # a validated net always yields candidates
        slack = best.q - (
            lane_driver.delay(best.c) if lane_driver is not None else 0.0
        )
        stats = DPStats(
            algorithm=label,
            num_buffer_positions=nets[lane].num_buffer_positions,
            library_size=library.size,
            root_candidates=int(root.n[lane]),
            peak_list_length=int(peak[lane]),
            candidates_generated=int(generated[lane]),
            runtime_seconds=amortized,
            backend="soa",
        )
        results.append(
            BufferingResult(
                slack=slack,
                assignment=reconstruct_assignment(best.decision),
                driver_load=best.c,
                stats=stats,
            )
        )
    root.release()
    factory.end_solve()
    return results
