"""The :class:`CandidateStore` protocol: pluggable candidate storage.

Every insertion algorithm in :mod:`repro.core` manipulates, per subtree,
the sorted nonredundant (Q, C) candidate list of paper Section 2.  The
*representation* of that list is an implementation choice orthogonal to
the algorithm: the seed code keeps a Python list of
:class:`~repro.core.candidate.Candidate` objects; the structure-of-arrays
backend (:mod:`repro.core.stores.soa`) keeps parallel ``q``/``c`` float
arrays plus a decision index array.

This module defines the two abstractions a backend must provide:

* :class:`StoreFactory` — per-solve context (e.g. the SoA decision
  arena) that mints sink stores;
* :class:`CandidateStore` — one subtree's candidate list, exposing the
  paper's operations (add-wire, merge, the two buffered-candidate
  generators, convex pruning, sorted insertion) plus root evaluation.

Invariants every store must preserve, matching the object backend:

* candidates are sorted by strictly increasing ``c`` *and* strictly
  increasing ``q`` after every returned operation;
* numeric results are bit-identical to the object backend's: the same
  IEEE-754 operations in the same order, and the same tie rules (ties in
  ``q - R c`` resolve to minimum ``c``; equal-(q, c) ties keep the
  earliest candidate).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Dict, NamedTuple, Optional

from repro.core.buffer_ops import BufferPlan
from repro.core.candidate import Decision
from repro.errors import AlgorithmError


class BestCandidate(NamedTuple):
    """The root candidate a driver picks: plain numbers plus provenance."""

    q: float
    c: float
    decision: Decision


class CandidateStore(ABC):
    """One subtree's sorted nonredundant candidate list."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of candidates currently stored."""

    @abstractmethod
    def add_wire(self, resistance: float, capacitance: float) -> "CandidateStore":
        """Propagate every candidate through a wire and re-prune."""

    @abstractmethod
    def merge(self, other: "CandidateStore") -> "CandidateStore":
        """Join this list with a sibling branch list (two-pointer walk)."""

    @abstractmethod
    def convex_hull(self) -> "CandidateStore":
        """The upper-left convex hull subsequence (paper Convexpruning)."""

    @abstractmethod
    def generate_scan(self, plan: BufferPlan) -> "CandidateStore":
        """Buffered candidates by exhaustive scan: O(b k) (Lillis)."""

    @abstractmethod
    def generate_hull(
        self, plan: BufferPlan, hull: Optional["CandidateStore"] = None
    ) -> "CandidateStore":
        """Buffered candidates by the monotone hull walk: O(k + b)."""

    @abstractmethod
    def insert(self, new: "CandidateStore") -> "CandidateStore":
        """Sorted-merge new buffered candidates into this list (Thm. 2)."""

    @abstractmethod
    def best_for_driver(self, resistance: float) -> Optional[BestCandidate]:
        """Min-c argmax of ``q - R c``, or ``None`` when empty."""

    def apply_buffer(
        self, plan: BufferPlan, generator: str = "hull",
        destructive: bool = False,
    ) -> "CandidateStore":
        """The whole add-buffer step of one position, as one operation.

        ``generator`` selects how the betas are produced — ``"hull"``
        (convex prune + monotone hull walk, the paper's O(k + b) step)
        or ``"scan"`` (the exhaustive O(b k) Lillis scan) — and
        ``destructive`` (hull only) reproduces the paper's literal
        pseudocode by inserting into the hull instead of the full list.

        This default composes the fine-grained primitives above, so any
        backend gets it for free; kernel backends override it with a
        fused implementation (:meth:`repro.core.stores.soa.SoAStore.apply_buffer`)
        that must keep the exact data flow — and therefore results — of
        this composition.  The returned store may be ``self`` mutated
        in place; consumed intermediates are released here.
        """
        if generator == "scan":
            new = self.generate_scan(plan)
            result = self.insert(new)
            if new is not result and new is not self:
                new.release()
            return result
        hull = self.convex_hull()
        new = self.generate_hull(plan, hull=hull)
        target = hull if destructive else self
        result = target.insert(new)
        if hull is not result and hull is not self:
            hull.release()
        if new is not result and new is not self and new is not hull:
            new.release()
        return result

    def release(self) -> None:
        """Hand this store's storage back to its factory.

        The DP engine calls this the moment a store is consumed (its
        list was wired/merged/buffered into a successor store) — a
        store is never touched after its release.  The default is a
        no-op (garbage collection is fine for object lists); the SoA
        backend recycles the candidate arrays into its scratch arena.
        """

    def released(self) -> bool:
        """Whether :meth:`release` has been called (debugging aid)."""
        return False


class StoreFactory(ABC):
    """Per-net backend context; mints the leaf stores of the DP.

    A factory may be reused across solves of the same net (the compiled
    execution layer does exactly that to keep scratch state warm);
    :meth:`begin_solve` runs before each solve to reset per-solve state.
    """

    #: Registry name of the backend (set by ``register_store_backend``).
    backend: ClassVar[str] = ""

    @abstractmethod
    def sink(self, node_id: int, q: float, c: float) -> CandidateStore:
        """The single base candidate of a sink node."""

    def empty(self) -> CandidateStore:
        """A store holding no candidates.

        The polarity-aware DP (:mod:`repro.core.polarity`) seeds one
        store per signal phase, one of which starts empty.  Backends
        that do not implement it simply cannot run that extension.
        """
        raise AlgorithmError(
            f"the {self.backend or type(self).__name__!r} candidate-store "
            "backend does not provide empty stores (required by the "
            "polarity-aware dynamic program)"
        )

    def stats(self) -> Dict[str, object]:
        """Backend health counters for the serving layer's ``/stats``.

        The default is empty; the SoA backend reports its scratch-arena
        block pools and provenance-tape capacity here.
        """
        return {}

    def snapshot(self, store: CandidateStore):
        """Freeze ``store``'s frontier as ``(q, c, decisions)`` lists.

        The incremental engine (:mod:`repro.incremental`) memoizes
        subtree frontiers across solves; a snapshot must therefore be
        fully detached from per-solve state — plain floats plus
        *persistent* decision objects (the SoA backend materializes its
        tape records here, so no :class:`~repro.core.stores.soa.TapeRef`
        ever escapes into a cache entry).  Backends that cannot detach
        a frontier inherit this loud default and simply cannot back an
        incremental session.
        """
        raise AlgorithmError(
            f"the {self.backend or type(self).__name__!r} candidate-store "
            "backend cannot snapshot frontiers (required by the "
            "incremental re-solve engine)"
        )

    def from_snapshot(self, q, c, decisions) -> CandidateStore:
        """Rebuild a live store from :meth:`snapshot` output.

        The returned store must behave exactly like the one snapshotted
        — same values, same order — so splicing it into a later solve
        reproduces the from-scratch data flow bit for bit.
        """
        raise AlgorithmError(
            f"the {self.backend or type(self).__name__!r} candidate-store "
            "backend cannot splice frontiers (required by the "
            "incremental re-solve engine)"
        )

    def begin_solve(self) -> None:
        """Reset per-solve state (decision arenas, scratch buffers).

        Called by the engine before every solve, including the first;
        stateless factories (the object backend) inherit this no-op.
        """

    def end_solve(self) -> None:
        """Drop per-solve state the finished result does not reference.

        Called by the engine once the result is fully materialized.
        Factories cached for repeat solves (the compiled execution
        layer) use this to avoid pinning the last solve's provenance
        until the next solve; stateless factories inherit this no-op.
        """
