"""The object-list backend: the seed representation behind the protocol.

A thin wrapper around the original ``List[Candidate]`` representation,
delegating every operation to the proven list functions in
:mod:`repro.core.wire_ops`, :mod:`repro.core.merge`,
:mod:`repro.core.buffer_ops` and :mod:`repro.core.pruning`.  This is the
reference implementation other backends are tested against, and the
default backend of :func:`repro.core.api.insert_buffers`.

(The DP engine fast-paths this backend by operating on the bare lists —
see :mod:`repro.core.dp` — so the wrapper mainly serves protocol users:
store-generic algorithm code and backend-parity tests.)
"""

from __future__ import annotations

from typing import Optional

from repro.core.buffer_ops import (
    BufferPlan,
    generate_fast,
    generate_lillis,
    insert_candidates,
)
from repro.core.candidate import (
    Candidate,
    CandidateList,
    SinkDecision,
    best_candidate_for_driver,
)
from repro.core.merge import merge_branches
from repro.core.pruning import convex_prune
from repro.core.stores.base import BestCandidate, CandidateStore, StoreFactory
from repro.core.wire_ops import add_wire


class ObjectStore(CandidateStore):
    """A candidate list stored as Python :class:`Candidate` objects."""

    __slots__ = ("candidates",)

    def __init__(self, candidates: CandidateList) -> None:
        self.candidates = candidates

    def __len__(self) -> int:
        return len(self.candidates)

    def add_wire(self, resistance: float, capacitance: float) -> "ObjectStore":
        return ObjectStore(add_wire(self.candidates, resistance, capacitance))

    def merge(self, other: "CandidateStore") -> "ObjectStore":
        assert isinstance(other, ObjectStore)
        return ObjectStore(merge_branches(self.candidates, other.candidates))

    def convex_hull(self) -> "ObjectStore":
        return ObjectStore(convex_prune(self.candidates))

    def generate_scan(self, plan: BufferPlan) -> "ObjectStore":
        return ObjectStore(generate_lillis(self.candidates, plan))

    def generate_hull(
        self, plan: BufferPlan, hull: Optional["CandidateStore"] = None
    ) -> "ObjectStore":
        hull_list = hull.candidates if isinstance(hull, ObjectStore) else None
        return ObjectStore(generate_fast(self.candidates, plan, hull=hull_list))

    def insert(self, new: "CandidateStore") -> "ObjectStore":
        assert isinstance(new, ObjectStore)
        return ObjectStore(insert_candidates(self.candidates, new.candidates))

    def best_for_driver(self, resistance: float) -> Optional[BestCandidate]:
        best = best_candidate_for_driver(self.candidates, resistance)
        if best is None:
            return None
        return BestCandidate(q=best.q, c=best.c, decision=best.decision)


class ObjectStoreFactory(StoreFactory):
    """Stateless factory for the object-list backend."""

    def sink(self, node_id: int, q: float, c: float) -> ObjectStore:
        return ObjectStore([Candidate(q=q, c=c, decision=SinkDecision(node_id))])

    def empty(self) -> ObjectStore:
        return ObjectStore([])

    def snapshot(self, store: CandidateStore):
        """Freeze a frontier: values are copied (add-wire mutates
        candidates in place downstream), decisions are shared (the
        decision DAG is immutable and already persistent)."""
        assert isinstance(store, ObjectStore)
        candidates = store.candidates
        return (
            [candidate.q for candidate in candidates],
            [candidate.c for candidate in candidates],
            [candidate.decision for candidate in candidates],
        )

    def from_snapshot(self, q, c, decisions) -> ObjectStore:
        return ObjectStore([
            Candidate(q=qi, c=ci, decision=di)
            for qi, ci, di in zip(q, c, decisions)
        ])
