"""Structure-of-arrays candidate store (NumPy backend).

Candidates live in parallel float64 arrays ``q`` and ``c`` plus an
integer array ``d`` of indices into a per-solve *decision arena* (a
plain list of :class:`~repro.core.candidate.Decision` nodes owned by the
:class:`SoAStoreFactory`).  The hot loops of the dynamic program then
become whole-array operations:

* **add-wire** — two vectorized arithmetic passes plus a vectorized
  dominance prune (no per-candidate Python at all);
* **convex pruning** — simultaneous removal of locally-dominated points,
  iterated to the fixed point (which is exactly the Graham-scan hull:
  every removed point lies on/below a chord of surviving points, hence
  off the strict hull, and the iteration stops only at a strictly
  concave chain — the hull itself);
* **merge** — the two-pointer branch walk expressed as two
  ``searchsorted`` passes (one per binding side) plus one sort;
* **sorted insertion** — a stable ``argsort`` over the concatenated
  arrays plus the vectorized prune.

Provenance objects are only materialized for candidates that survive
pruning; since decisions never influence which candidates are kept, the
resulting decision DAG — and therefore the reconstructed assignment —
is identical to the object backend's.

**Scratch arena.**  Every persistent candidate array is carved from the
factory's :class:`ScratchArena`: a pool of power-of-two NumPy blocks,
grown geometrically on demand and recycled when the DP engine releases
a consumed store (:meth:`SoAStore.release`), so after the first few
nodes warm the pool, add-wire/merge/prune run with no per-node array
allocation.  The arena is reset (not freed) per solve, which is what
makes repeat solves through a reused factory — the compiled execution
layer of :mod:`repro.core.schedule` — allocation-free at steady state.
Stores never share arrays (ops that would alias copy the ``d`` column
instead), so releasing a consumed store can never corrupt a live one.

**Bit-identity.**  Every numeric result is produced by the same IEEE-754
operations in the same order as the object backend (float64 throughout;
the arena only changes *where* outputs land, via ``out=`` parameters,
never what is computed), and every tie rule matches: ``np.argmax``
returns the *first* maximizer, which is the object backend's "strict
improvement only" scan; the stable insertion sort keeps old candidates
ahead of new ones at equal ``c``, which is the object backend's ``<=``
merge.  The parity tests in ``tests/test_soa_backend.py`` and
``tests/test_schedule.py`` assert exact (``==``, not approx) slack and
assignment equality on a randomized tree corpus.

NumPy is an optional dependency: the module imports with ``numpy``
absent, and :class:`SoAStoreFactory` raises a clear
:class:`~repro.errors.AlgorithmError` at solve time instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

try:  # gated: the rest of the library must work without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None  # type: ignore[assignment]

from repro.core.buffer_ops import BufferPlan
from repro.core.candidate import (
    BufferDecision,
    Decision,
    MergeDecision,
    SinkDecision,
)
from repro.core.stores.base import BestCandidate, CandidateStore, StoreFactory
from repro.errors import AlgorithmError


#: Below this many candidates the per-kernel launch overhead of the
#: vectorized selection paths exceeds a plain scalar pass; the scalar
#: twins implement the same selection rules (no arithmetic is involved,
#: so the cutoff cannot affect results — only which identical-output
#: code path computes them).
_SCALAR_CUTOFF = 128

#: Convex pruning cascades removals one neighbour layer per vectorized
#: pass, so the scalar Graham scan (one O(k) pass) wins until lists are
#: long enough that a whole-array pass costs essentially nothing per
#: element.
_VECTOR_HULL_CUTOFF = 2048

#: Smallest pool block: tiny lists are ubiquitous (every sink starts
#: one), so sub-8 requests all share a size class.
_MIN_BLOCK = 8

if np is not None:
    _EMPTY_F8 = np.empty(0, dtype=np.float64)
    _EMPTY_IP = np.empty(0, dtype=np.intp)


class ScratchArena:
    """A recycling pool of power-of-two NumPy blocks for one factory.

    ``f8(n)`` / ``ip(n)`` hand out length-``n`` views of float64 / intp
    blocks whose capacities grow geometrically (powers of two, so a
    released block satisfies every later request of its class);
    ``recycle`` returns a view's block to the free list.  The engine's
    release discipline guarantees a block is only recycled once its
    store is unreachable, and blocks that are never explicitly recycled
    (e.g. leaked by third-party code) simply fall back to garbage
    collection — the pool forgets them at the next :meth:`reset`.

    ``reset`` runs between solves: it keeps the free lists (that is the
    whole point — repeat solves reuse the grown pool instead of
    reallocating) and only drops the bookkeeping for blocks the previous
    solve never returned.
    """

    __slots__ = ("_free_f8", "_free_ip", "_lent", "_iota")

    def __init__(self) -> None:
        self._free_f8: Dict[int, list] = {}
        self._free_ip: Dict[int, list] = {}
        self._lent: set = set()
        self._iota = _EMPTY_IP

    @staticmethod
    def _capacity(n: int) -> int:
        capacity = _MIN_BLOCK
        while capacity < n:
            capacity <<= 1
        return capacity

    def _borrow(self, pool: Dict[int, list], n: int, dtype):
        capacity = self._capacity(n)
        blocks = pool.get(capacity)
        if blocks:
            block = blocks.pop()
        else:
            block = np.empty(capacity, dtype=dtype)
        self._lent.add(id(block))
        return block[:n]

    def f8(self, n: int):
        """Borrow a float64 view of length ``n``."""
        if n == 0:
            return _EMPTY_F8
        return self._borrow(self._free_f8, n, np.float64)

    def ip(self, n: int):
        """Borrow an intp view of length ``n``."""
        if n == 0:
            return _EMPTY_IP
        return self._borrow(self._free_ip, n, np.intp)

    def iota(self, n: int):
        """A read-mostly ``arange(n)`` view (shared, do not recycle)."""
        if len(self._iota) < n:
            self._iota = np.arange(self._capacity(n), dtype=np.intp)
        return self._iota[: n]

    def recycle(self, view) -> None:
        """Return ``view``'s block to the pool (foreign arrays ignored)."""
        if view is None or len(view) == 0:
            return
        block = view.base if view.base is not None else view
        key = id(block)
        if key in self._lent:
            self._lent.remove(key)
            pool = self._free_f8 if block.dtype == np.float64 else self._free_ip
            pool.setdefault(len(block), []).append(block)

    def reset(self) -> None:
        """Forget outstanding loans (their blocks died with the solve)."""
        self._lent.clear()


def _nonredundant_indices_scalar(q, c):
    """Scalar twin of :func:`_nonredundant_indices` for short arrays.

    The same one-pass stack algorithm as
    :func:`repro.core.pruning.prune_dominated`, tracking indices.
    """
    kept = []
    q = q.tolist()
    c = c.tolist()
    for i in range(len(q)):
        qi = q[i]
        ci = c[i]
        if kept and ci == c[kept[-1]] and qi > q[kept[-1]]:
            kept.pop()
        if not kept or qi > q[kept[-1]]:
            kept.append(i)
    return np.array(kept, dtype=np.intp)


def _nonredundant_indices(q, c):
    """Surviving indices of dominance pruning over c-sorted arrays.

    Vectorized restatement of :func:`repro.core.pruning.prune_dominated`
    (selection only — no arithmetic, so trivially bit-identical): within
    each run of equal ``c`` keep the first maximum-``q`` candidate, then
    keep the strict running maxima of ``q`` across runs.
    """
    n = len(q)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if n <= _SCALAR_CUTOFF:
        return _nonredundant_indices_scalar(q, c)
    # Early exit: already strictly increasing in both coordinates (the
    # common case after add-wire on a well-shaped list) — nothing to do.
    if bool((np.diff(q) > 0.0).all()) and bool((np.diff(c) > 0.0).all()):
        return np.arange(n, dtype=np.intp)
    starts_mask = np.empty(n, dtype=bool)
    starts_mask[0] = True
    np.not_equal(c[1:], c[:-1], out=starts_mask[1:])
    starts = np.flatnonzero(starts_mask)
    group = np.cumsum(starts_mask) - 1
    group_max = np.maximum.reduceat(q, starts)
    at_max = q == group_max[group]
    # First at-max index per group: its within-group running count is 1.
    cumulative = np.cumsum(at_max)
    before_group = np.concatenate(([0], cumulative))[starts]
    winners = np.flatnonzero(at_max & (cumulative - before_group[group] == 1))
    # Strict running-max filter across group winners.
    winner_q = q[winners]
    keep = np.empty(len(winners), dtype=bool)
    keep[0] = True
    np.greater(winner_q[1:], np.maximum.accumulate(winner_q)[:-1], out=keep[1:])
    return winners[keep]


def _hull_indices_scalar(q, c):
    """Scalar Graham scan (the object backend's) tracking indices."""
    q = q.tolist()
    c = c.tolist()
    hull = []
    for i in range(len(q)):
        qi = q[i]
        ci = c[i]
        while len(hull) >= 2:
            j = hull[-1]
            k = hull[-2]
            if (q[j] - q[k]) * (ci - c[j]) <= (qi - q[j]) * (c[j] - c[k]):
                hull.pop()
            else:
                break
        hull.append(i)
    return np.array(hull, dtype=np.intp)


def _hull_indices(q, c):
    """Indices forming the upper-left convex hull of a nonredundant list.

    Simultaneously drops every point lying on/below the segment of its
    current neighbours (paper Eq. 2) and repeats until none does.  Each
    pass is a whole-array operation; the fixed point equals the
    Graham-scan hull of :func:`repro.core.pruning.convex_prune`: every
    dropped point lies on/below a chord of surviving points — hence off
    the strict hull — and the iteration only stops at a strictly concave
    chain, which is the hull itself.
    """
    if len(q) <= _VECTOR_HULL_CUTOFF:
        return _hull_indices_scalar(q, c)
    idx = np.arange(len(q), dtype=np.intp)
    # Whole-array passes strip interior layers while the list is long;
    # once it is short (or a pass finds nothing), the scalar scan
    # finishes the job — removals cascade only one layer per pass, so
    # iterating vectorized passes to the fixed point would cost
    # O(depth * k) instead of the scan's O(k).
    while len(idx) > _VECTOR_HULL_CUTOFF:
        dq = np.diff(q[idx])
        dc = np.diff(c[idx])
        prunable = dq[:-1] * dc[1:] <= dq[1:] * dc[:-1]
        if not prunable.any():
            return idx
        keep = np.empty(len(idx), dtype=bool)
        keep[0] = True
        keep[-1] = True
        np.logical_not(prunable, out=keep[1:-1])
        idx = idx[keep]
    return idx[_hull_indices_scalar(q[idx], c[idx])]


class SoAStore(CandidateStore):
    """Candidates as parallel arrays: ``q``, ``c`` and decision index ``d``.

    All three arrays are arena views owned exclusively by this store;
    :meth:`release` recycles them, after which the store must not be
    touched (its arrays read ``None`` so misuse fails loudly).
    """

    __slots__ = ("q", "c", "d", "factory")

    def __init__(self, q, c, d, factory: "SoAStoreFactory") -> None:
        self.q = q
        self.c = c
        self.d = d
        self.factory = factory

    def __len__(self) -> int:
        return len(self.q)

    def release(self) -> None:
        arena = self.factory.arena
        if self.q is not None:
            arena.recycle(self.q)
            arena.recycle(self.c)
            arena.recycle(self.d)
        self.q = self.c = self.d = None

    def released(self) -> bool:
        return self.q is None

    def _take(self, indices) -> "SoAStore":
        arena = self.factory.arena
        count = len(indices)
        q = arena.f8(count)
        c = arena.f8(count)
        d = arena.ip(count)
        np.take(self.q, indices, out=q)
        np.take(self.c, indices, out=c)
        np.take(self.d, indices, out=d)
        return SoAStore(q, c, d, self.factory)

    def add_wire(self, resistance: float, capacitance: float) -> "SoAStore":
        if resistance == 0.0 and capacitance == 0.0:
            return self
        count = len(self.q)
        arena = self.factory.arena
        half_wire = capacitance / 2.0
        # q' = q - resistance * (half_wire + c); c' = c + capacitance,
        # staged through ``out=`` so no new arrays are created.
        scratch = arena.f8(count)
        np.add(self.c, half_wire, out=scratch)
        np.multiply(scratch, resistance, out=scratch)
        q = arena.f8(count)
        np.subtract(self.q, scratch, out=q)
        arena.recycle(scratch)
        c = arena.f8(count)
        np.add(self.c, capacitance, out=c)
        # Pruned even at resistance == 0: the uniform c shift can round
        # neighbouring c values into a tie (same rule as the object
        # backend's add_wire, which this must stay bit-identical to).
        keep = _nonredundant_indices(q, c)
        if len(keep) == count:
            keep = None
        if keep is None:
            d = arena.ip(count)
            np.copyto(d, self.d)
            return SoAStore(q, c, d, self.factory)
        kept = len(keep)
        q2 = arena.f8(kept)
        c2 = arena.f8(kept)
        d2 = arena.ip(kept)
        np.take(q, keep, out=q2)
        np.take(c, keep, out=c2)
        np.take(self.d, keep, out=d2)
        arena.recycle(q)
        arena.recycle(c)
        return SoAStore(q2, c2, d2, self.factory)

    def merge(self, other: "CandidateStore") -> "SoAStore":
        assert isinstance(other, SoAStore)
        if len(self) == 0 or len(other) == 0:
            return self if len(other) == 0 else other
        lq, lc, ld = self.q, self.c, self.d
        rq, rc, rd = other.q, other.c, other.d
        # The two-pointer walk emits the pair (i, j) exactly when
        # max(lq[i-1], rq[j-1]) < min(lq[i], rq[j]).  Split by binding
        # side: left-binding pairs (lq[i] <= rq[j]) pair each i with the
        # first j whose rq[j] >= lq[i]; right-binding pairs (strict, so
        # cross-list q ties are not emitted twice) symmetrically.
        left_partner = np.searchsorted(rq, lq, side="left")
        left_valid = left_partner < len(rq)
        right_partner = np.searchsorted(lq, rq, side="left")
        right_valid = right_partner < len(lq)
        right_valid &= lq[np.minimum(right_partner, len(lq) - 1)] != rq
        pair_i = np.concatenate(
            (np.flatnonzero(left_valid), right_partner[right_valid])
        )
        pair_j = np.concatenate(
            (left_partner[left_valid], np.flatnonzero(right_valid))
        )
        pair_q = np.concatenate((lq[left_valid], rq[right_valid]))
        # Emission order is increasing binding q (all values distinct:
        # within-list q is strictly increasing, cross-list ties were
        # routed to the left-binding side).
        order = np.argsort(pair_q, kind="stable")
        pair_i = pair_i[order]
        pair_j = pair_j[order]
        pair_q = pair_q[order]
        pair_c = lc[pair_i] + rc[pair_j]
        keep = _nonredundant_indices(pair_q, pair_c)
        pair_i = pair_i[keep]
        pair_j = pair_j[keep]
        decisions = self.factory.decisions
        base = len(decisions)
        decisions.extend(
            MergeDecision(decisions[ld[i]], decisions[rd[j]])
            for i, j in zip(pair_i, pair_j)
        )
        arena = self.factory.arena
        kept = len(pair_i)
        q = arena.f8(kept)
        c = arena.f8(kept)
        d = arena.ip(kept)
        np.take(pair_q, keep, out=q)
        np.take(pair_c, keep, out=c)
        np.add(arena.iota(kept), base, out=d)
        return SoAStore(q, c, d, self.factory)

    def convex_hull(self) -> "SoAStore":
        return self._take(_hull_indices(self.q, self.c))

    def _best_under_load(self, resistance: float, limit: float):
        """First argmax of ``q - R c`` over the ``c <= limit`` prefix.

        Returns ``(index, value)`` or ``(-1, -inf)`` when nothing is
        drivable — the vectorized twin of ``buffer_ops._scan_best``.
        """
        count = int(np.searchsorted(self.c, limit, side="right"))
        if count == 0:
            return -1, float("-inf")
        arena = self.factory.arena
        values = arena.f8(count)
        np.multiply(self.c[:count], resistance, out=values)
        np.subtract(self.q[:count], values, out=values)
        index = int(np.argmax(values))
        value = values[index]
        arena.recycle(values)
        return index, value

    def _empty(self) -> "SoAStore":
        arena = self.factory.arena
        return SoAStore(arena.f8(0), arena.f8(0), arena.ip(0), self.factory)

    def _emit_betas(self, plan: BufferPlan, betas) -> "SoAStore":
        """Prune per-type betas (in cap order) and allocate their decisions."""
        ordered = [betas[i] for i in plan.cap_order if betas[i] is not None]
        if not ordered:
            return self._empty()
        q = np.array([b[0] for b in ordered], dtype=np.float64)
        c = np.array([b[1] for b in ordered], dtype=np.float64)
        keep = _nonredundant_indices(q, c)
        decisions = self.factory.decisions
        base = len(decisions)
        decisions.extend(
            BufferDecision(plan.node_id, ordered[i][2], decisions[ordered[i][3]])
            for i in keep.tolist()
        )
        arena = self.factory.arena
        kept = len(keep)
        q2 = arena.f8(kept)
        c2 = arena.f8(kept)
        d = arena.ip(kept)
        np.take(q, keep, out=q2)
        np.take(c, keep, out=c2)
        np.add(arena.iota(kept), base, out=d)
        return SoAStore(q2, c2, d, self.factory)

    def generate_scan(self, plan: BufferPlan) -> "SoAStore":
        if len(self) == 0:
            return self
        betas = [None] * len(plan.by_resistance_desc)
        for index, buffer in enumerate(plan.by_resistance_desc):
            limit = buffer.max_load if buffer.max_load is not None else float("inf")
            best, value = self._best_under_load(buffer.driving_resistance, limit)
            if best < 0:
                continue
            betas[index] = (
                value - buffer.intrinsic_delay,
                buffer.input_capacitance,
                buffer,
                self.d[best],
            )
        return self._emit_betas(plan, betas)

    def generate_hull(
        self, plan: BufferPlan, hull: Optional["CandidateStore"] = None
    ) -> "SoAStore":
        if len(self) == 0:
            return self
        owns_hull = hull is None
        if owns_hull:
            hull = self.convex_hull()
        assert isinstance(hull, SoAStore)
        # The O(k + b) walk touches single elements, where Python floats
        # beat NumPy scalars by an order of magnitude; ``tolist`` keeps
        # the exact float64 values.
        hull_q = hull.q.tolist()
        hull_c = hull.c.tolist()
        hull_d = hull.d
        betas = [None] * len(plan.by_resistance_desc)
        pointer = 0
        last = len(hull_q) - 1
        for index, buffer in enumerate(plan.by_resistance_desc):
            resistance = buffer.driving_resistance
            if buffer.max_load is not None:
                # Load-capped types cannot use the hull shortcut (the
                # constrained optimum may be an interior point).
                current, value = self._best_under_load(resistance, buffer.max_load)
                if current < 0:
                    continue
                decision_index = self.d[current]
            else:
                value = hull_q[pointer] - resistance * hull_c[pointer]
                while pointer < last:
                    next_value = (
                        hull_q[pointer + 1] - resistance * hull_c[pointer + 1]
                    )
                    if next_value <= value:
                        break
                    pointer += 1
                    value = next_value
                decision_index = hull_d[pointer]
            betas[index] = (
                value - buffer.intrinsic_delay,
                buffer.input_capacitance,
                buffer,
                decision_index,
            )
        result = self._emit_betas(plan, betas)
        if owns_hull:
            hull.release()
        return result

    def insert(self, new: "CandidateStore") -> "SoAStore":
        assert isinstance(new, SoAStore)
        if len(new) == 0:
            return self
        if len(self) == 0:
            keep = _nonredundant_indices(new.q, new.c)
            if len(keep) == len(new):
                return new
            return new._take(keep)
        arena = self.factory.arena
        n1 = len(self.q)
        total = n1 + len(new.q)
        q_cat = arena.f8(total)
        c_cat = arena.f8(total)
        d_cat = arena.ip(total)
        q_cat[:n1] = self.q
        q_cat[n1:] = new.q
        c_cat[:n1] = self.c
        c_cat[n1:] = new.c
        d_cat[:n1] = self.d
        d_cat[n1:] = new.d
        # Stable sort on c == the object backend's `old.c <= new.c`
        # two-pointer merge: equal-c ties keep old candidates first.
        order = np.argsort(c_cat, kind="stable")
        q = arena.f8(total)
        c = arena.f8(total)
        d = arena.ip(total)
        np.take(q_cat, order, out=q)
        np.take(c_cat, order, out=c)
        np.take(d_cat, order, out=d)
        arena.recycle(q_cat)
        arena.recycle(c_cat)
        arena.recycle(d_cat)
        keep = _nonredundant_indices(q, c)
        if len(keep) == total:
            return SoAStore(q, c, d, self.factory)
        kept = len(keep)
        q2 = arena.f8(kept)
        c2 = arena.f8(kept)
        d2 = arena.ip(kept)
        np.take(q, keep, out=q2)
        np.take(c, keep, out=c2)
        np.take(d, keep, out=d2)
        arena.recycle(q)
        arena.recycle(c)
        arena.recycle(d)
        return SoAStore(q2, c2, d2, self.factory)

    def best_for_driver(self, resistance: float) -> Optional[BestCandidate]:
        if len(self) == 0:
            return None
        arena = self.factory.arena
        values = arena.f8(len(self.q))
        np.multiply(self.c, resistance, out=values)
        np.subtract(self.q, values, out=values)
        index = int(np.argmax(values))
        arena.recycle(values)
        return BestCandidate(
            q=float(self.q[index]),
            c=float(self.c[index]),
            decision=self.factory.decisions[self.d[index]],
        )


class SoAStoreFactory(StoreFactory):
    """Per-net context: the decision arena plus the scratch arena.

    One factory may serve many solves (the compiled execution layer
    reuses one per net); :meth:`begin_solve` clears the decision arena
    and resets the scratch arena without freeing its grown pool, so
    repeat solves run with warm, recycled buffers.  Results of earlier
    solves are unaffected: nothing a :class:`BufferingResult` holds
    references arena storage (slack/loads are plain floats and the
    decision DAG is plain objects).
    """

    def __init__(self) -> None:
        if np is None:
            raise AlgorithmError(
                "the 'soa' candidate-store backend requires numpy, which is "
                "not installed; use backend='object' instead"
            )
        self.decisions: List[Decision] = []
        self.arena = ScratchArena()

    def begin_solve(self) -> None:
        self.decisions.clear()
        self.arena.reset()

    def end_solve(self) -> None:
        # The BufferingResult holds Decision objects directly, never
        # arena indices, so the index list can go; the winning chain
        # stays alive through the result while the rest becomes
        # garbage instead of living until the next solve.
        self.decisions.clear()

    def sink(self, node_id: int, q: float, c: float) -> SoAStore:
        index = len(self.decisions)
        self.decisions.append(SinkDecision(node_id))
        arena = self.arena
        qa = arena.f8(1)
        ca = arena.f8(1)
        da = arena.ip(1)
        qa[0] = q
        ca[0] = c
        da[0] = index
        return SoAStore(qa, ca, da, self)
