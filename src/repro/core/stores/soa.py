"""Structure-of-arrays candidate store: the vectorized kernel engine.

Candidates live in parallel float64 arrays ``q`` and ``c`` plus an
integer array ``d`` of indices into a per-solve *provenance tape*
(:class:`ProvenanceTape`).  Each compiled-schedule instruction of
:mod:`repro.core.dp` executes as whole-array NumPy kernels with **zero
per-candidate Python objects**:

* **WIRE** — the Elmore shift staged through ``out=`` buffers plus a
  fused dominance re-prune, mutating the store in place (one pass, no
  store churn);
* **MERGE** — the two-pointer branch walk expressed as two
  ``searchsorted`` passes plus one sort; surviving pairs record their
  predecessor indices into the tape as two bulk array writes;
* **BUFFER** — :meth:`SoAStore.apply_buffer` fuses convex pruning, the
  monotone hull walk *broadcast over all ``b`` buffer types at once*
  (against the plan's precomputed ``R`` / ``C_in`` / intrinsic-delay
  vectors — see :func:`plan_kernel`), beta pruning, the Theorem-2
  sorted insertion and the final re-prune into one kernel;
* **prune / hull** — selection-only kernels; short lists take the
  shared scalar scans of :mod:`repro.core.pruning`, long lists the
  whole-array forms, behind the single :func:`kernel_cutoff` tuned by
  ``benchmarks/bench_kernel_cutoff.py``.

**Deferred provenance.**  The object backend materializes a decision
node per surviving candidate; at steady state that is the dominant
per-candidate Python cost.  Here every DP step instead appends compact
predecessor-index records to the tape (three ``intp`` columns carved
from the :class:`ScratchArena`), and only the *root's winning
candidate* is ever expanded: :meth:`SoAStore.best_for_driver` returns a
:class:`TapeRef`, whose :meth:`TapeRef.expand` backtraces the winning
chain into the ``{node_id: buffer_type}`` assignment — once per solve,
linear in the answer, via the deferred-provenance hook of
:func:`repro.core.candidate.reconstruct_assignment`.

**Scratch arena.**  Every persistent candidate array is carved from the
factory's :class:`ScratchArena`: a pool of power-of-two NumPy blocks,
grown geometrically on demand and recycled when the DP engine releases
a consumed store (:meth:`SoAStore.release`), so after the first few
nodes warm the pool, the kernels run with no per-node array allocation.
The arena is reset (not freed) per solve, which is what makes repeat
solves through a reused factory — the compiled execution layer of
:mod:`repro.core.schedule` — allocation-free at steady state.  Stores
never share arrays (ops that would alias copy instead), so releasing a
consumed store can never corrupt a live one.

**Bit-identity.**  Every numeric result is produced by the same IEEE-754
operations in the same order as the object backend (float64 throughout;
the arena only changes *where* outputs land, via ``out=`` parameters,
never what is computed), and every selection rule replays the object
backend's comparisons on identical floats: ``np.argmax`` returns the
*first* maximizer, which is the "strict improvement only" scan; the
broadcast hull walk stops each buffer type at the first
``next_value <= value`` position exactly as the pointer walk does (with
a sequential fallback for the measure-zero case where rounding breaks
the walk's monotone-pointer structure); sorted insertion places new
candidates after equal-``c`` old ones, which is the object backend's
``<=`` merge.  The parity suites (``tests/test_soa_backend.py``,
``tests/test_schedule.py``, ``tests/test_kernel_engine.py``) assert
exact (``==``, not approx) slack *and* assignment equality on
randomized corpora.

NumPy is an optional dependency: the module imports with ``numpy``
absent, and :class:`SoAStoreFactory` raises a clear
:class:`~repro.errors.AlgorithmError` at solve time instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

try:  # gated: the rest of the library must work without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None  # type: ignore[assignment]

from repro.core.buffer_ops import BufferPlan
from repro.core.candidate import (
    BufferDecision,
    ExpandedDecision,
    MergeDecision,
    SinkDecision,
    reconstruct_assignment,
)
from repro.core.pruning import hull_indices, prune_dominated_indices
from repro.core.stores.base import BestCandidate, CandidateStore, StoreFactory
from repro.errors import AlgorithmError

_NEG_INF = float("-inf")

#: Single scalar/vector crossover for the selection kernels.  Below it
#: the shared scalar scans of :mod:`repro.core.pruning` run on
#: ``tolist()`` views; above it the whole-array forms take over.  The
#: convex hull crosses over at ``_HULL_FACTOR`` times this value: its
#: whole-array form strips one interior layer per pass, so the scalar
#: scan stays ahead for far longer than the dominance prune's.
#: Selection involves no arithmetic, so the cutoff can never change
#: results — only which identical-output code path computes them.  The
#: default is tuned by ``benchmarks/bench_kernel_cutoff.py`` (see
#: docs/benchmarks.md).  The batch-axis engine shares the same knob,
#: comparing ``lanes * width`` (whole-group element count) against it;
#: the tuning bench's batched sweep confirms 48 sits on the optimum
#: plateau there too.
_KERNEL_CUTOFF = 48

#: Hull crossover as a multiple of the kernel cutoff (one knob governs
#: both kernels; the factor reflects the asymptotic gap between the two
#: vector forms, not a second tunable).
_HULL_FACTOR = 32

#: Smallest pool block: tiny lists are ubiquitous (every sink starts
#: one), so sub-8 requests all share a size class.
_MIN_BLOCK = 8

if np is not None:
    _EMPTY_F8 = np.empty(0, dtype=np.float64)
    _EMPTY_IP = np.empty(0, dtype=np.intp)
    _EMPTY_PAIR = np.empty((2, 0), dtype=np.float64)

#: Above this many surviving runs an in-place compaction gather falls
#: back to a block copy (many scattered slice moves lose to one take).
_MAX_SPLICE_RUNS = 8


def kernel_cutoff() -> int:
    """The current scalar/vector crossover of the selection kernels."""
    return _KERNEL_CUTOFF


def set_kernel_cutoff(length: int) -> int:
    """Set the selection-kernel crossover; returns the previous value.

    Used by the tuning micro-bench and by tests that force one of the
    two (identical-output) paths.
    """
    global _KERNEL_CUTOFF
    previous = _KERNEL_CUTOFF
    _KERNEL_CUTOFF = int(length)
    return previous


class ScratchArena:
    """A recycling pool of power-of-two NumPy blocks for one factory.

    ``f8(n)`` / ``ip(n)`` hand out length-``n`` views of float64 / intp
    blocks whose capacities grow geometrically (powers of two, so a
    released block satisfies every later request of its class);
    ``recycle`` returns a view's block to the free list.  The engine's
    release discipline guarantees a block is only recycled once its
    store is unreachable, and blocks that are never explicitly recycled
    (e.g. leaked by third-party code) simply fall back to garbage
    collection — the pool forgets them at the next :meth:`reset`.

    ``reset`` runs between solves: it keeps the free lists (that is the
    whole point — repeat solves reuse the grown pool instead of
    reallocating) and only drops the bookkeeping for blocks the previous
    solve never returned.
    """

    __slots__ = ("_free_f8", "_free_ip", "_free_pair", "_lent", "_iota")

    def __init__(self) -> None:
        self._free_f8: Dict[int, list] = {}
        self._free_ip: Dict[int, list] = {}
        self._free_pair: Dict[int, list] = {}
        self._lent: set = set()
        self._iota = _EMPTY_IP

    @staticmethod
    def _capacity(n: int) -> int:
        if n <= _MIN_BLOCK:
            return _MIN_BLOCK
        return 1 << (n - 1).bit_length()

    def f8(self, n: int):
        """Borrow a float64 view of length ``n``."""
        if n == 0:
            return _EMPTY_F8
        capacity = _MIN_BLOCK if n <= _MIN_BLOCK else 1 << (n - 1).bit_length()
        blocks = self._free_f8.get(capacity)
        if blocks:
            block = blocks.pop()
        else:
            block = np.empty(capacity, dtype=np.float64)
        self._lent.add(id(block))
        return block[:n]

    def ip(self, n: int):
        """Borrow an intp view of length ``n``."""
        if n == 0:
            return _EMPTY_IP
        capacity = _MIN_BLOCK if n <= _MIN_BLOCK else 1 << (n - 1).bit_length()
        blocks = self._free_ip.get(capacity)
        if blocks:
            block = blocks.pop()
        else:
            block = np.empty(capacity, dtype=np.intp)
        self._lent.add(id(block))
        return block[:n]

    def pair(self, n: int):
        """Borrow a full ``(2, capacity >= n)`` float64 block.

        Capacity-backed: the caller tracks its logical length, so
        in-place shrinking (the store's wire prune) costs nothing.
        """
        if n == 0:
            return _EMPTY_PAIR
        capacity = _MIN_BLOCK if n <= _MIN_BLOCK else 1 << (n - 1).bit_length()
        blocks = self._free_pair.get(capacity)
        if blocks:
            block = blocks.pop()
        else:
            block = np.empty((2, capacity), dtype=np.float64)
        self._lent.add(id(block))
        return block

    def ip_block(self, n: int):
        """Borrow a full intp block of capacity ``>= n`` (see :meth:`pair`)."""
        if n == 0:
            return _EMPTY_IP
        capacity = _MIN_BLOCK if n <= _MIN_BLOCK else 1 << (n - 1).bit_length()
        blocks = self._free_ip.get(capacity)
        if blocks:
            block = blocks.pop()
        else:
            block = np.empty(capacity, dtype=np.intp)
        self._lent.add(id(block))
        return block

    def iota(self, n: int):
        """A read-mostly ``arange(n)`` view (shared, do not recycle)."""
        if len(self._iota) < n:
            self._iota = np.arange(self._capacity(n), dtype=np.intp)
        return self._iota[: n]

    def recycle(self, view) -> None:
        """Return ``view``'s block to the pool (foreign arrays ignored)."""
        if view is None:
            return
        if view.ndim == 2:
            if view.shape[1] == 0:
                return
            block = view.base if view.base is not None else view
            key = id(block)
            if key in self._lent:
                self._lent.remove(key)
                self._free_pair.setdefault(block.shape[1], []).append(block)
            return
        if len(view) == 0:
            return
        block = view.base if view.base is not None else view
        key = id(block)
        if key in self._lent:
            self._lent.remove(key)
            pool = self._free_f8 if block.dtype == np.float64 else self._free_ip
            pool.setdefault(len(block), []).append(block)

    def reset(self) -> None:
        """Forget outstanding loans (their blocks died with the solve)."""
        self._lent.clear()

    def stats(self) -> Dict[str, int]:
        """Pool health for the serving layer's ``/stats`` endpoint."""
        pooled = 0
        free_f8 = 0
        free_ip = 0
        free_pair = 0
        for blocks in self._free_f8.values():
            free_f8 += len(blocks)
            pooled += sum(block.nbytes for block in blocks)
        for blocks in self._free_ip.values():
            free_ip += len(blocks)
            pooled += sum(block.nbytes for block in blocks)
        for blocks in self._free_pair.values():
            free_pair += len(blocks)
            pooled += sum(block.nbytes for block in blocks)
        return {
            "free_blocks_f8": free_f8,
            "free_blocks_ip": free_ip,
            "free_blocks_pair": free_pair,
            "lent_blocks": len(self._lent),
            "pooled_bytes": pooled,
        }


# ----------------------------------------------------------------------
# Deferred provenance: the tape
# ----------------------------------------------------------------------

#: Tape record kinds.
_TAPE_SINK = 0
_TAPE_MERGE = 1
_TAPE_BUFFER = 2
#: A spliced-in frontier candidate (incremental re-solve): ``a`` indexes
#: :attr:`ProvenanceTape.splices`, which holds an already-materialized
#: decision object carrying the candidate's whole sub-assignment.
_TAPE_SPLICE = 3


class ProvenanceTape:
    """Per-solve predecessor-index records, appended in bulk.

    Three parallel ``intp`` columns carved from the owning factory's
    :class:`ScratchArena` (plus a Python list of the
    :class:`~repro.core.buffer_ops.BufferPlan` objects referenced by
    buffer records — one append per buffer *position*, never per
    candidate):

    =========  =============  =============  ====================
    kind       ``a``          ``b``          ``c``
    =========  =============  =============  ====================
    SINK       node id        --             --
    MERGE      left index     right index    --
    BUFFER     below index    type index     plan slot
    =========  =============  =============  ====================

    ``type index`` addresses ``plan.by_resistance_desc``; ``plan slot``
    addresses :attr:`plans`.  A candidate's ``d`` column holds its tape
    index; the tape grows by power-of-two doubling and is *reset, not
    freed* between solves, so a warm factory appends with no
    allocation.  :meth:`reset` bumps a generation counter: a
    :class:`TapeRef` that outlives its solve fails loudly instead of
    silently reading the next solve's records (the aliasing hazard the
    recycling stress tests pin down).
    """

    __slots__ = ("op", "a", "b", "c", "length", "generation", "plans",
                 "splices", "_arena")

    def __init__(self, arena: ScratchArena) -> None:
        self._arena = arena
        self.op = _EMPTY_IP
        self.a = _EMPTY_IP
        self.b = _EMPTY_IP
        self.c = _EMPTY_IP
        self.length = 0
        self.generation = 0
        self.plans: List[BufferPlan] = []
        self.splices: List[object] = []

    def reset(self) -> None:
        """Start a new solve: rewind, keep capacity, invalidate refs."""
        self.length = 0
        self.generation += 1
        self.plans.clear()
        self.splices.clear()

    def _reserve(self, count: int) -> int:
        """Ensure room for ``count`` more records; returns their base."""
        base = self.length
        need = base + count
        if need > len(self.op):
            capacity = ScratchArena._capacity(need)
            arena = self._arena
            for name in ("op", "a", "b", "c"):
                old = getattr(self, name)
                grown = arena.ip(capacity)
                if base:
                    grown[:base] = old[:base]
                arena.recycle(old)
                setattr(self, name, grown)
        self.length = need
        return base

    def append_sink(self, node_id: int) -> int:
        base = self._reserve(1)
        self.op[base] = _TAPE_SINK
        self.a[base] = node_id
        return base

    def append_sinks(self, node_id: int, count: int) -> int:
        """Bulk-record ``count`` sink candidates at one tree vertex.

        The batch-axis engine starts every lane of a group at the same
        sink instruction; one reserve covers the whole group.  Returns
        the first record's index (lane ``i`` owns ``base + i``).
        """
        base = self._reserve(count)
        end = base + count
        self.op[base:end] = _TAPE_SINK
        self.a[base:end] = node_id
        return base

    def append_merges(self, left, right) -> int:
        """Bulk-record merged pairs; returns the first record's index."""
        count = len(left)
        base = self._reserve(count)
        end = base + count
        self.op[base:end] = _TAPE_MERGE
        self.a[base:end] = left
        self.b[base:end] = right
        return base

    def append_buffers(self, below, type_index, plan: BufferPlan) -> int:
        """Bulk-record inserted buffers; returns the first record's index."""
        slot = len(self.plans)
        self.plans.append(plan)
        count = len(below)
        base = self._reserve(count)
        end = base + count
        self.op[base:end] = _TAPE_BUFFER
        self.a[base:end] = below
        self.b[base:end] = type_index
        self.c[base:end] = slot
        return base

    def append_splices(self, decisions) -> int:
        """Bulk-record spliced frontier candidates; returns their base.

        ``decisions`` are ready-made decision objects (materialized
        provenance from a cached frontier snapshot — see
        :mod:`repro.incremental.subtree_cache`); each record's ``a``
        column points at its slot in :attr:`splices`.
        """
        slot = len(self.splices)
        self.splices.extend(decisions)
        count = len(decisions)
        base = self._reserve(count)
        end = base + count
        self.op[base:end] = _TAPE_SPLICE
        self.a[base:end] = np.arange(slot, slot + count, dtype=np.intp)
        return base

    def materialize(self, index: int, memo: Dict[int, object]):
        """Expand the record at ``index`` into a persistent decision DAG.

        The inverse of deferred provenance: turns tape records back into
        :class:`~repro.core.candidate.SinkDecision` /
        :class:`MergeDecision` / :class:`BufferDecision` objects that
        outlive the tape (frontier snapshots must survive
        ``begin_solve``'s rewind).  ``memo`` (tape index → decision)
        makes repeated expansion linear in the *distinct* records
        reachable from all of a solve's snapshots; callers must drop it
        when the tape resets.  Iterative — chains are as deep as the
        tree.
        """
        op = self.op
        a = self.a
        b = self.b
        c = self.c
        plans = self.plans
        splices = self.splices
        stack = [index]
        while stack:
            i = stack[-1]
            if i in memo:
                stack.pop()
                continue
            kind = op[i]
            if kind == _TAPE_SINK:
                memo[i] = SinkDecision(int(a[i]))
                stack.pop()
            elif kind == _TAPE_SPLICE:
                memo[i] = splices[int(a[i])]
                stack.pop()
            elif kind == _TAPE_MERGE:
                left, right = int(a[i]), int(b[i])
                left_done = left in memo
                if left_done and right in memo:
                    memo[i] = MergeDecision(memo[left], memo[right])
                    stack.pop()
                else:
                    if not left_done:
                        stack.append(left)
                    if right not in memo:
                        stack.append(right)
            else:  # _TAPE_BUFFER
                below = int(a[i])
                if below in memo:
                    plan = plans[int(c[i])]
                    memo[i] = BufferDecision(
                        plan.node_id,
                        plan.by_resistance_desc[int(b[i])],
                        memo[below],
                    )
                    stack.pop()
                else:
                    stack.append(below)
        return memo[index]

    def ref(self, index: int) -> "TapeRef":
        """A decision-protocol handle for the record at ``index``."""
        return TapeRef(self, index, self.generation)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": self.length,
            "capacity": len(self.op),
            "plans": len(self.plans),
            "splices": len(self.splices),
            "generation": self.generation,
        }


#: Maximum provenance-chain depth before flattening.  Each re-solve's
#: archive may reference earlier archives through its spliced
#: decisions; unbounded, a long-lived session would pin one archive
#: per resolve.  Entries at the cap collapse to
#: :class:`~repro.core.candidate.ExpandedDecision` at archive time
#: (O(answer) once, amortized one flatten per cap-many resolves).
_CHAIN_LIMIT = 8


class TapeArchive:
    """An immutable copy of one solve's provenance tape.

    The live tape is rewound between solves, so frontier snapshots that
    must outlive a solve (the incremental engine's subtree memo) cannot
    hold tape indices into it.  Materializing every candidate's
    decision chain at capture time is exactly the per-candidate Python
    cost deferred provenance exists to avoid — so instead, the engine
    archives the whole tape **once per resolve** (four array copies
    plus two shallow list copies) and snapshots keep ``(archive, tape
    index)`` pairs.  Decisions are only built when a snapshot is
    actually spliced, and expanded only for the winning candidate
    (:class:`ArchivedDecision`).

    ``depth`` counts how many earlier archives remain reachable through
    this one's spliced decisions; entries that would exceed
    :data:`_CHAIN_LIMIT` are flattened on construction, so session
    memory holds at most a bounded chain of archives however many
    re-solves a session performs.
    """

    __slots__ = ("op", "a", "b", "c", "plans", "splices", "depth")

    def __init__(self, tape: "ProvenanceTape") -> None:
        length = tape.length
        self.op = tape.op[:length].copy()
        self.a = tape.a[:length].copy()
        self.b = tape.b[:length].copy()
        self.c = tape.c[:length].copy()
        self.plans = list(tape.plans)
        depth = 1
        splices: List[object] = []
        for obj in tape.splices:
            chain = getattr(obj, "chain_depth", 0)
            if chain >= _CHAIN_LIMIT:
                splices.append(ExpandedDecision(reconstruct_assignment(obj)))
            else:
                splices.append(obj)
                if chain + 1 > depth:
                    depth = chain + 1
        self.splices = splices
        self.depth = depth

    def nbytes(self) -> int:
        return 4 * self.op.nbytes if len(self.op) else 0


class ArchivedDecision:
    """A decision handle into a :class:`TapeArchive` (splice provenance).

    Implements the ``expand`` hook of
    :func:`repro.core.candidate.reconstruct_assignment` by walking the
    archived columns — no generation hazard (archives are immutable)
    and no per-candidate object graph until a root backtrace actually
    reaches this candidate.
    """

    __slots__ = ("archive", "index")

    def __init__(self, archive: TapeArchive, index: int) -> None:
        self.archive = archive
        self.index = index

    @property
    def chain_depth(self) -> int:
        """Archive hops reachable from here (chain-flattening input)."""
        return self.archive.depth

    def expand(self, assignment: Dict[int, object], stack: list) -> None:
        archive = self.archive
        op = archive.op
        a = archive.a
        b = archive.b
        c = archive.c
        plans = archive.plans
        splices = archive.splices
        pending = [self.index]
        while pending:
            index = pending.pop()
            kind = op[index]
            if kind == _TAPE_BUFFER:
                plan = plans[c[index]]
                assignment[plan.node_id] = plan.by_resistance_desc[b[index]]
                pending.append(a[index])
            elif kind == _TAPE_MERGE:
                pending.append(a[index])
                pending.append(b[index])
            elif kind == _TAPE_SPLICE:
                assignment.update(reconstruct_assignment(splices[a[index]]))
            # _TAPE_SINK carries no buffers.

    def __repr__(self) -> str:
        return f"ArchivedDecision({self.index})"


class TapeRef:
    """Deferred-provenance decision: a tape index awaiting backtrace.

    Implements the ``expand`` hook of
    :func:`repro.core.candidate.reconstruct_assignment`: the winning
    chain is walked iteratively over the tape's index columns — the
    only point in a SoA solve where provenance becomes Python objects,
    and it is linear in the *answer*, not in the candidates generated.
    """

    __slots__ = ("tape", "index", "generation")

    def __init__(self, tape: ProvenanceTape, index: int, generation: int) -> None:
        self.tape = tape
        self.index = index
        self.generation = generation

    def expand(self, assignment: Dict[int, object], stack: list) -> None:
        tape = self.tape
        if tape.generation != self.generation:
            raise AlgorithmError(
                "stale provenance reference: the solve that produced this "
                "candidate has ended and its tape was recycled; expand "
                "results before reusing the factory"
            )
        op = tape.op
        a = tape.a
        b = tape.b
        c = tape.c
        plans = tape.plans
        splices = tape.splices
        pending = [self.index]
        while pending:
            index = pending.pop()
            kind = op[index]
            if kind == _TAPE_BUFFER:
                plan = plans[c[index]]
                assignment[plan.node_id] = plan.by_resistance_desc[b[index]]
                pending.append(a[index])
            elif kind == _TAPE_MERGE:
                pending.append(a[index])
                pending.append(b[index])
            elif kind == _TAPE_SPLICE:
                # A spliced-in frontier: its decision object carries the
                # whole sub-assignment (possibly translated onto this
                # net's node ids — see SplicedFrontierDecision).
                assignment.update(reconstruct_assignment(splices[a[index]]))
            # _TAPE_SINK carries no buffers.

    def __repr__(self) -> str:
        return f"TapeRef({self.index}, gen={self.generation})"


# ----------------------------------------------------------------------
# Plan kernels: per-plan buffer columns as vectors
# ----------------------------------------------------------------------


class _PlanKernel:
    """The NumPy view of one :class:`BufferPlan`, built once, reused.

    Columns are in ``by_resistance_desc`` order, so broadcasting over
    them iterates buffer types exactly as the object backend's loops
    do.  Load-capped types keep their per-type scalars for the
    prefix-scan path (the hull shortcut is invalid under a cap).
    """

    __slots__ = ("size", "r", "c_in", "k", "limits", "cap_order",
                 "c_in_cap", "cap_identity", "has_caps", "uncapped",
                 "r_uncapped", "k_uncapped", "iota_u", "iota_b")

    def __init__(self, plan: BufferPlan) -> None:
        buffers = plan.by_resistance_desc
        self.size = len(buffers)
        self.r = np.array([b.driving_resistance for b in buffers],
                          dtype=np.float64)
        self.c_in = np.array([b.input_capacitance for b in buffers],
                             dtype=np.float64)
        self.k = np.array([b.intrinsic_delay for b in buffers],
                          dtype=np.float64)
        self.limits = np.array(
            [float("inf") if b.max_load is None else b.max_load
             for b in buffers],
            dtype=np.float64,
        )
        self.cap_order = np.array(plan.cap_order, dtype=np.intp)
        self.c_in_cap = self.c_in[self.cap_order]
        # Real libraries usually order C_in inversely to R, making the
        # cap permutation the identity — in which case the reorder
        # gathers are skipped entirely.
        self.cap_identity = bool(
            (self.cap_order == np.arange(self.size, dtype=np.intp)).all()
        )
        uncapped = [i for i, b in enumerate(buffers) if b.max_load is None]
        self.has_caps = len(uncapped) != self.size
        self.uncapped = np.array(uncapped, dtype=np.intp)
        self.r_uncapped = self.r[self.uncapped]
        self.k_uncapped = self.k[self.uncapped]
        self.iota_u = np.arange(len(uncapped), dtype=np.intp)
        self.iota_b = np.arange(self.size, dtype=np.intp)


def plan_kernel(plan: BufferPlan) -> _PlanKernel:
    """The (cached) kernel arrays of ``plan``.

    Cached on the plan that *owns* the sort orders, so the shared views
    :meth:`~repro.core.buffer_ops.BufferPlan.shared_view` hands out all
    reuse one kernel — mirroring how the orders themselves are shared.
    """
    owner = plan._shared_from or plan
    kernel = owner._kernel
    if kernel is None:
        kernel = _PlanKernel(owner)
        owner._kernel = kernel
    return kernel


def prime_plan_kernels(plans) -> None:
    """Build the kernels of ``plans`` eagerly (no-op without NumPy).

    Called by :func:`repro.core.schedule.compile_net` so the arrays are
    part of the compiled artifact's warm state, and by the batch
    engine's worker initializer so each worker pays the library's
    kernel build exactly once.
    """
    if np is None:
        return
    for plan in plans:
        plan_kernel(plan)


# ----------------------------------------------------------------------
# Selection kernels (no arithmetic: cutoff cannot change results)
# ----------------------------------------------------------------------


def _keep_indices(q, c):
    """Surviving indices of dominance pruning, or ``None`` for all-kept.

    Restatement of :func:`repro.core.pruning.prune_dominated`
    (selection only — no arithmetic, so trivially bit-identical): within
    each run of equal ``c`` keep the first maximum-``q`` candidate, then
    keep the strict running maxima of ``q`` across runs.  Short inputs
    run the shared scalar scan; long inputs the whole-array form (the
    common tie-free case is four kernels: a strict running-max mask).
    The ``None`` sentinel lets callers skip the compaction copies when
    nothing was dropped.
    """
    n = len(q)
    if n == 0:
        return None
    if n <= _KERNEL_CUTOFF:
        keep = prune_dominated_indices(q.tolist(), c.tolist())
        return None if len(keep) == n else keep
    if not bool((c[1:] == c[:-1]).any()):
        # No equal-c runs: survivors are exactly the strict running
        # maxima of q.
        keep_mask = np.empty(n, dtype=bool)
        keep_mask[0] = True
        np.greater(q[1:], np.maximum.accumulate(q)[:-1], out=keep_mask[1:])
        if keep_mask.all():
            return None
        return keep_mask.nonzero()[0]
    keep = _nonredundant_ties(q, c)
    return None if len(keep) == n else keep


def _nonredundant_indices(q, c):
    """Index form of :func:`_keep_indices` (parity tests, hull takes)."""
    keep = _keep_indices(q, c)
    if keep is None:
        return np.arange(len(q), dtype=np.intp)
    return keep


def _nonredundant_ties(q, c):
    """The general (equal-``c`` runs present) whole-array prune."""
    n = len(q)
    starts_mask = np.empty(n, dtype=bool)
    starts_mask[0] = True
    np.not_equal(c[1:], c[:-1], out=starts_mask[1:])
    starts = np.flatnonzero(starts_mask)
    group = np.cumsum(starts_mask) - 1
    group_max = np.maximum.reduceat(q, starts)
    at_max = q == group_max[group]
    # First at-max index per group: its within-group running count is 1.
    cumulative = np.cumsum(at_max)
    before_group = np.concatenate(([0], cumulative))[starts]
    winners = np.flatnonzero(at_max & (cumulative - before_group[group] == 1))
    # Strict running-max filter across group winners.
    winner_q = q[winners]
    keep = np.empty(len(winners), dtype=bool)
    keep[0] = True
    np.greater(winner_q[1:], np.maximum.accumulate(winner_q)[:-1], out=keep[1:])
    return winners[keep]


def _hull_indices(q, c):
    """Indices forming the upper-left convex hull of a nonredundant list.

    Short lists run the shared Graham scan
    (:func:`repro.core.pruning.hull_indices`); long lists first strip
    interior layers with whole-array passes (each pass simultaneously
    drops every point on/below its neighbours' chord — paper Eq. 2 —
    and the fixed point equals the Graham hull), then the scalar scan
    finishes the survivors.
    """
    n = len(q)
    crossover = _KERNEL_CUTOFF * _HULL_FACTOR
    if n <= crossover:
        return np.array(hull_indices(q.tolist(), c.tolist()), dtype=np.intp)
    idx = np.arange(n, dtype=np.intp)
    # Whole-array passes strip interior layers while the list is long;
    # once it is short (or a pass finds nothing), the scalar scan
    # finishes the job — removals cascade only one layer per pass, so
    # iterating vectorized passes to the fixed point would cost
    # O(depth * k) instead of the scan's O(k).
    while len(idx) > crossover:
        dq = np.diff(q[idx])
        dc = np.diff(c[idx])
        prunable = dq[:-1] * dc[1:] <= dq[1:] * dc[:-1]
        if not prunable.any():
            return idx
        keep = np.empty(len(idx), dtype=bool)
        keep[0] = True
        keep[-1] = True
        np.logical_not(prunable, out=keep[1:-1])
        idx = idx[keep]
    sq = q[idx]
    sc = c[idx]
    return idx[np.array(hull_indices(sq.tolist(), sc.tolist()), dtype=np.intp)]


def _walk_pointers_dense(r, hull_q, hull_c):
    """The O(b h) stop-matrix replay of the hull walk (exact fallback).

    V rows are the per-type value profiles along the hull; each type
    stops at the first non-improving step at/after the previous type's
    stop — the object walk's pointer rule on identical floats.
    """
    h = len(hull_q)
    rows = len(r)
    values = np.multiply.outer(r, hull_c)
    np.subtract(hull_q, values, out=values)
    stop = np.empty((rows, h), dtype=bool)
    stop[:, h - 1] = True
    if h > 1:
        np.less_equal(values[:, 1:], values[:, :-1], out=stop[:, : h - 1])
    pointers = stop.argmax(axis=1)
    if rows > 1 and bool((pointers[1:] < pointers[:-1]).any()):
        # Rounding broke the monotone-pointer shortcut (the first stops
        # are not nondecreasing): replay the carried walk row by row —
        # same comparisons, same result, just not in one kernel.
        carried = 0
        for row in range(rows):
            carried += int(stop[row, carried:].argmax())
            pointers[row] = carried
    vals = values[np.arange(rows, dtype=np.intp), pointers]
    return pointers, vals


def _merge_pairs(lq, lc, rq, rc):
    """The MERGE pairing kernel on raw columns (store-independent).

    The two-pointer walk emits the pair (i, j) exactly when
    ``max(lq[i-1], rq[j-1]) < min(lq[i], rq[j])``.  Split by binding
    side: left-binding pairs (``lq[i] <= rq[j]``) pair each ``i`` with
    the first ``j`` whose ``rq[j] >= lq[i]``; right-binding pairs
    (strict, so cross-list q ties are not emitted twice) symmetrically.

    Returns ``(pair_i, pair_j, pair_q, pair_c, keep)`` where ``keep``
    is the dominance-prune result of :func:`_keep_indices` — ``None``
    when every pair survives — already applied to ``pair_i`` /
    ``pair_j`` but **not** to ``pair_q`` / ``pair_c``, so callers can
    compose the prune gather with their own output placement (the
    store's arena write, the batched store's row write).  Shared by
    :meth:`SoAStore.merge` and the batch-axis engine so the two paths
    cannot drift.
    """
    left_partner = rq.searchsorted(lq, side="left")
    left_valid = left_partner < len(rq)
    right_partner = lq.searchsorted(rq, side="left")
    right_valid = right_partner < len(lq)
    right_valid &= lq[np.minimum(right_partner, len(lq) - 1)] != rq
    pair_i = np.concatenate(
        (left_valid.nonzero()[0], right_partner[right_valid])
    )
    pair_j = np.concatenate(
        (left_partner[left_valid], right_valid.nonzero()[0])
    )
    pair_q = np.concatenate((lq[left_valid], rq[right_valid]))
    # Emission order is increasing binding q (all values distinct:
    # within-list q is strictly increasing, cross-list ties were
    # routed to the left-binding side).
    order = pair_q.argsort(kind="stable")
    pair_i = pair_i[order]
    pair_j = pair_j[order]
    pair_q = pair_q[order]
    pair_c = lc[pair_i] + rc[pair_j]
    keep = _keep_indices(pair_q, pair_c)
    if keep is not None:
        pair_i = pair_i[keep]
        pair_j = pair_j[keep]
    return pair_i, pair_j, pair_q, pair_c, keep


def _best_under_load(q, c, resistance: float, limit: float, scratch_f8):
    """First argmax of ``q - R c`` over the ``c <= limit`` prefix.

    Returns ``(index, value)`` or ``(-1, -inf)`` when nothing is
    drivable — the vectorized twin of ``buffer_ops._scan_best``, on raw
    columns so the single-net and batch-axis stores share it.
    """
    count = int(c.searchsorted(limit, side="right"))
    if count == 0:
        return -1, _NEG_INF
    values = scratch_f8(count)
    np.multiply(c[:count], resistance, out=values)
    np.subtract(q[:count], values, out=values)
    index = int(values.argmax())
    return index, float(values[index])


def _generate_betas(q, c, d, plan: BufferPlan, tape: "ProvenanceTape",
                    scratch_f8, iota, scan: bool, hull_arrays=None):
    """The pruned, tape-registered buffered candidates of ``plan``.

    The store-independent core of :meth:`SoAStore._betas`, operating on
    raw ``q`` / ``c`` / ``d`` columns so the batch-axis engine can run
    it per lane (the load-capped and scan paths) against the shared
    group tape.  Returns ``(q, c, d)`` arrays (``d`` freshly minted
    tape indices) or ``None`` when no type emits a candidate.  ``scan``
    selects the exhaustive per-type argmax over the full list (Lillis);
    otherwise ``hull_arrays = (hull_q, hull_c, hull_d)`` drives the
    broadcast hull walk (the paper's O(k + b) step, executed as one
    (b × h) kernel).  The caller owns ``hull_arrays``.
    """
    kern = plan_kernel(plan)
    n = len(q)
    size = kern.size

    if scan:
        # All types at once: V[i, j] = q[j] - R_i * c[j] over the
        # whole list, load caps masked to -inf (never the argmax of
        # a non-empty prefix, matching the scan's strict-improvement
        # rule which likewise never selects -inf).
        values = np.multiply.outer(kern.r, c)
        np.subtract(q, values, out=values)
        if kern.has_caps:
            counts = c.searchsorted(kern.limits, side="right")
            masked = iota(n) >= counts[:, None]
            values[masked] = _NEG_INF
        else:
            counts = None
        best = values.argmax(axis=1)
        vals = values[kern.iota_b, best]
        beta_q = vals - kern.k
        below = d.take(best)
        valid = vals > _NEG_INF
        if counts is not None:
            valid &= counts > 0
        if not valid.all():
            order = kern.cap_order
            ordered = order[valid[order]]
            if len(ordered) == 0:
                return None
            bq = beta_q[ordered]
            bc = kern.c_in[ordered]
        elif kern.cap_identity:
            ordered = kern.iota_b
            bq = beta_q
            bc = kern.c_in
        else:
            ordered = kern.cap_order
            bq = beta_q[ordered]
            bc = kern.c_in_cap
    else:
        hull_q, hull_c, hull_d = hull_arrays
        if not kern.has_caps:
            # The common DATE-2005 case (no load caps): one
            # broadcast replay of the walk over all b types.
            pointers, vals = _walk_pointers_dense(kern.r, hull_q,
                                                  hull_c)
            beta_q = vals - kern.k
            below = hull_d.take(pointers)
            if kern.cap_identity:
                ordered = kern.iota_b
                bq = beta_q
            else:
                ordered = kern.cap_order
                bq = beta_q[ordered]
            bc = kern.c_in_cap
        else:
            beta_q = np.empty(size, dtype=np.float64)
            below = np.empty(size, dtype=np.intp)
            valid = np.zeros(size, dtype=bool)
            uncapped = kern.uncapped
            if len(uncapped):
                pointers, vals = _walk_pointers_dense(
                    kern.r_uncapped, hull_q, hull_c
                )
                beta_q[uncapped] = vals - kern.k_uncapped
                below[uncapped] = hull_d[pointers]
                # Unconditional, exactly like the object walk: an
                # uncapped type always emits its hull candidate.
                valid[uncapped] = True
            # Load-capped types cannot use the hull shortcut (the
            # constrained optimum may be an interior point): prefix
            # scan of the full list, per type.
            buffers = plan.by_resistance_desc
            for position in range(size):
                buffer = buffers[position]
                if buffer.max_load is None:
                    continue
                index, value = _best_under_load(
                    q, c, buffer.driving_resistance, buffer.max_load,
                    scratch_f8,
                )
                if index < 0 or not value > _NEG_INF:
                    continue
                beta_q[position] = value - buffer.intrinsic_delay
                below[position] = d[index]
                valid[position] = True
            order = kern.cap_order
            ordered = order[valid[order]]
            if len(ordered) == 0:
                return None
            bq = beta_q[ordered]
            bc = kern.c_in[ordered]

    # Emit in non-decreasing C_in order and prune (paper: the betas
    # are inserted as one sorted nonredundant batch).
    keep = prune_dominated_indices(bq.tolist(), bc.tolist())
    if len(keep) != len(ordered):
        ordered = ordered[keep]
        bq = bq[keep]
        bc = bc[keep]
        tape_below = below.take(ordered)
    elif ordered is kern.iota_b:
        tape_below = below
    else:
        tape_below = below.take(ordered)
    base = tape.append_buffers(tape_below, ordered, plan)
    kept = len(ordered)
    return bq, bc, np.arange(base, base + kept, dtype=np.intp)


class SoAStore(CandidateStore):
    """Candidates as a packed ``(2, k)`` value array plus a tape column.

    ``z[0]`` holds ``q``, ``z[1]`` holds ``c`` (one arena block, so
    gathers and compactions move both coordinates in single kernels);
    ``d`` holds tape indices.  Both blocks are *capacity-backed*: the
    logical candidate count is :attr:`n`, and every kernel operates on
    the ``[:n]`` prefix.  That is what makes the WIRE kernel fully in
    place — the Elmore shift writes through the prefix views and a
    prune that drops a few candidates just splices the prefix shorter,
    with no allocation at all.

    :meth:`release` recycles the blocks, after which the store must not
    be touched (``len()`` raises so misuse fails loudly).  The in-place
    operations (:meth:`add_wire`, :meth:`apply_buffer`, :meth:`insert`)
    return ``self`` — consistent with the object backend, whose
    add-wire also mutates the list it owns.
    """

    __slots__ = ("z", "d", "n", "factory")

    def __init__(self, z, d, n: int, factory: "SoAStoreFactory") -> None:
        self.z = z
        self.d = d
        self.n = n
        self.factory = factory

    def __len__(self) -> int:
        return self.n

    @property
    def q(self):
        """The slack column (logical prefix view)."""
        return self.z[0, : self.n]

    @property
    def c(self):
        """The load column (logical prefix view)."""
        return self.z[1, : self.n]

    def release(self) -> None:
        if self.z is not None:
            arena = self.factory.arena
            arena.recycle(self.z)
            arena.recycle(self.d)
        self.z = self.d = self.n = None

    def released(self) -> bool:
        return self.z is None

    def _compact(self, keep) -> None:
        """In-place gather of the surviving rows (``keep`` increasing).

        Few contiguous runs (the wire prune drops a candidate or two)
        splice the prefix with overlapping slice moves; scattered
        survivors fall back to one block-copy gather.
        """
        kept = len(keep)
        z = self.z
        d = self.d
        if isinstance(keep, list):
            runs = []
            run_start = prev = keep[0]
            for index in keep[1:]:
                if index != prev + 1:
                    runs.append((run_start, prev + 1))
                    run_start = index
                prev = index
            runs.append((run_start, prev + 1))
            if len(runs) <= _MAX_SPLICE_RUNS:
                dst = 0
                for start, stop in runs:
                    width = stop - start
                    if start != dst:
                        z[:, dst:dst + width] = z[:, start:stop]
                        d[dst:dst + width] = d[start:stop]
                    dst += width
                self.n = kept
                return
        else:
            jumps = (keep[1:] != keep[:-1] + 1).nonzero()[0]
            if len(jumps) < _MAX_SPLICE_RUNS:
                position = 0
                dst = 0
                for jump in jumps.tolist() + [kept - 1]:
                    start = int(keep[position])
                    stop = int(keep[jump]) + 1
                    width = stop - start
                    if start != dst:
                        z[:, dst:dst + width] = z[:, start:stop]
                        d[dst:dst + width] = d[start:stop]
                    dst += width
                    position = jump + 1
                self.n = kept
                return
        arena = self.factory.arena
        n = self.n
        z2 = arena.pair(kept)
        d2 = arena.ip_block(kept)
        z[0, :n].take(keep, out=z2[0, :kept])
        z[1, :n].take(keep, out=z2[1, :kept])
        d[:n].take(keep, out=d2[:kept])
        arena.recycle(z)
        arena.recycle(d)
        self.z = z2
        self.d = d2
        self.n = kept

    def _take(self, indices) -> "SoAStore":
        arena = self.factory.arena
        count = len(indices)
        n = self.n
        z2 = arena.pair(count)
        d2 = arena.ip_block(count)
        self.z[0, :n].take(indices, out=z2[0, :count])
        self.z[1, :n].take(indices, out=z2[1, :count])
        self.d[:n].take(indices, out=d2[:count])
        return SoAStore(z2, d2, count, self.factory)

    # -- WIRE ----------------------------------------------------------

    def add_wire(self, resistance: float, capacitance: float) -> "SoAStore":
        """Fused Elmore shift + dominance re-prune, fully in place."""
        if resistance == 0.0 and capacitance == 0.0:
            return self
        n = self.n
        if n == 0:
            return self
        z = self.z
        q = z[0, :n]
        c = z[1, :n]
        half_wire = capacitance / 2.0
        # q' = q - resistance * (half_wire + c); c' = c + capacitance,
        # staged through the factory's persistent scratch row so the
        # pass allocates nothing and writes straight into the store.
        scratch = self.factory.scratch_f8(n)
        np.add(c, half_wire, out=scratch)
        np.multiply(scratch, resistance, out=scratch)
        np.subtract(q, scratch, out=q)
        np.add(c, capacitance, out=c)
        # Pruned even at resistance == 0: the uniform c shift can round
        # neighbouring c values into a tie (same rule as the object
        # backend's add_wire, which this must stay bit-identical to).
        keep = _keep_indices(q, c)
        if keep is not None:
            self._compact(keep)
        return self

    # -- MERGE ---------------------------------------------------------

    def merge(self, other: "CandidateStore") -> "SoAStore":
        assert isinstance(other, SoAStore)
        if self.n == 0 or other.n == 0:
            return self if other.n == 0 else other
        lq = self.z[0, : self.n]
        lc = self.z[1, : self.n]
        ld = self.d[: self.n]
        rq = other.z[0, : other.n]
        rc = other.z[1, : other.n]
        rd = other.d[: other.n]
        pair_i, pair_j, pair_q, pair_c, keep = _merge_pairs(lq, lc, rq, rc)
        # Deferred provenance: the surviving pairs' predecessor indices
        # go to the tape as two gathered bulk writes — no decision
        # objects, no per-pair Python.
        base = self.factory.tape.append_merges(ld[pair_i], rd[pair_j])
        arena = self.factory.arena
        kept = len(pair_i)
        z = arena.pair(kept)
        d = arena.ip_block(kept)
        if keep is None:
            z[0, :kept] = pair_q
            z[1, :kept] = pair_c
        else:
            pair_q.take(keep, out=z[0, :kept])
            pair_c.take(keep, out=z[1, :kept])
        np.add(arena.iota(kept), base, out=d[:kept])
        return SoAStore(z, d, kept, self.factory)

    # -- BUFFER --------------------------------------------------------

    def convex_hull(self) -> "SoAStore":
        n = self.n
        return self._take(_hull_indices(self.z[0, :n], self.z[1, :n]))

    def _betas(self, plan: BufferPlan, scan: bool, hull_arrays=None):
        """The pruned, tape-registered buffered candidates of ``plan``.

        Thin binding of :func:`_generate_betas` to this store's columns
        and its factory's tape/scratch (see there for the contract).
        """
        n = self.n
        factory = self.factory
        return _generate_betas(
            self.z[0, :n], self.z[1, :n], self.d[:n], plan,
            factory.tape, factory.scratch_f8, factory.arena.iota,
            scan, hull_arrays,
        )

    def _insert_arrays(self, nq, nc, nd) -> None:
        """Theorem-2 sorted insertion plus the final prune, in place.

        Equal-``c`` ties place old candidates first (``side='right'``
        is the object backend's ``old.c <= new.c`` two-pointer rule).
        ``nq``/``nc``/``nd`` are read, never owned.
        """
        arena = self.factory.arena
        n = self.n
        m = len(nq)
        total = n + m
        z = self.z
        # Old candidates precede new in the concatenation, so the
        # stable sort keeps them first on equal c.
        all_q = np.concatenate((z[0, :n], nq))
        all_c = np.concatenate((z[1, :n], nc))
        order = all_c.argsort(kind="stable")
        sorted_q = all_q.take(order)
        sorted_c = all_c.take(order)
        keep = _keep_indices(sorted_q, sorted_c)
        # Composing the sort and the prune into one gather skips the
        # interleaved intermediate entirely: values and tape indices
        # land in their final blocks in a single pass.
        if keep is None:
            final = order
            kept = total
        else:
            final = order.take(keep)
            kept = len(keep)
        all_d = np.concatenate((self.d[:n], nd))
        out_z = arena.pair(kept)
        out_d = arena.ip_block(kept)
        all_q.take(final, out=out_z[0, :kept])
        all_c.take(final, out=out_z[1, :kept])
        all_d.take(final, out=out_d[:kept])
        arena.recycle(z)
        arena.recycle(self.d)
        self.z = out_z
        self.d = out_d
        self.n = kept

    def apply_buffer(
        self, plan: BufferPlan, generator: str = "hull",
        destructive: bool = False,
    ) -> "SoAStore":
        """The fused BUFFER kernel: generate, prune, insert — in place.

        One pass over arena storage replaces the convex-hull store, the
        beta store and the insertion store of the composed default
        (:meth:`repro.core.stores.base.CandidateStore.apply_buffer`),
        whose data flow — and therefore results — it reproduces
        exactly.
        """
        n = self.n
        if n == 0:
            return self
        if generator == "scan":
            betas = self._betas(plan, scan=True)
            if betas is not None:
                self._insert_arrays(*betas)
            return self
        z = self.z
        hull_idx = _hull_indices(z[0, :n], z[1, :n])
        # The hull is a subsequence: plain fancy gathers (transient,
        # one kernel per row) beat arena round-trips here.
        hull_z = z[:, :n].take(hull_idx, axis=1)
        hull_d = self.d[:n].take(hull_idx)
        betas = self._betas(plan, scan=False,
                            hull_arrays=(hull_z[0], hull_z[1], hull_d))
        if destructive:
            # The paper's Convexpruning frees interior candidates: only
            # the hull survives into the ongoing list.
            arena = self.factory.arena
            h = len(hull_idx)
            z2 = arena.pair(h)
            d2 = arena.ip_block(h)
            z2[:, :h] = hull_z
            d2[:h] = hull_d
            arena.recycle(z)
            arena.recycle(self.d)
            self.z = z2
            self.d = d2
            self.n = h
        if betas is not None:
            self._insert_arrays(*betas)
        return self

    # -- protocol generators (standalone beta stores) ------------------

    def _wrap_betas(self, betas) -> "SoAStore":
        bq, bc, bd = betas
        count = len(bq)
        arena = self.factory.arena
        z = arena.pair(count)
        d = arena.ip_block(count)
        z[0, :count] = bq
        z[1, :count] = bc
        d[:count] = bd
        return SoAStore(z, d, count, self.factory)

    def _empty(self) -> "SoAStore":
        return SoAStore(_EMPTY_PAIR, _EMPTY_IP, 0, self.factory)

    def generate_scan(self, plan: BufferPlan) -> "SoAStore":
        if self.n == 0:
            return self
        betas = self._betas(plan, scan=True)
        if betas is None:
            return self._empty()
        return self._wrap_betas(betas)

    def generate_hull(
        self, plan: BufferPlan, hull: Optional["CandidateStore"] = None
    ) -> "SoAStore":
        if self.n == 0:
            return self
        owns_hull = hull is None
        if owns_hull:
            hull = self.convex_hull()
        assert isinstance(hull, SoAStore)
        betas = self._betas(plan, scan=False,
                            hull_arrays=(hull.q, hull.c, hull.d[: hull.n]))
        if owns_hull:
            hull.release()
        if betas is None:
            return self._empty()
        return self._wrap_betas(betas)

    def insert(self, new: "CandidateStore") -> "SoAStore":
        assert isinstance(new, SoAStore)
        if new.n == 0:
            return self
        if self.n == 0:
            keep = _keep_indices(new.q, new.c)
            if keep is not None:
                new._compact(keep)
            return new
        self._insert_arrays(new.z[0, : new.n], new.z[1, : new.n],
                            new.d[: new.n])
        return self

    # -- root ----------------------------------------------------------

    def best_for_driver(self, resistance: float) -> Optional[BestCandidate]:
        n = self.n
        if n == 0:
            return None
        q = self.z[0, :n]
        c = self.z[1, :n]
        values = self.factory.scratch_f8(n)
        np.multiply(c, resistance, out=values)
        np.subtract(q, values, out=values)
        index = int(values.argmax())
        return BestCandidate(
            q=float(q[index]),
            c=float(c[index]),
            decision=self.factory.tape.ref(int(self.d[index])),
        )


class SoAStoreFactory(StoreFactory):
    """Per-net context: the provenance tape plus the scratch arena.

    One factory may serve many solves (the compiled execution layer
    reuses one per net); :meth:`begin_solve` rewinds the tape and resets
    the scratch arena without freeing their grown capacity, so repeat
    solves run with warm, recycled buffers.  Results of earlier solves
    are unaffected: a :class:`BufferingResult` holds the *expanded*
    assignment (plain dict), never tape storage, and any
    :class:`TapeRef` that escapes a solve fails loudly once the tape is
    rewound.
    """

    def __init__(self) -> None:
        if np is None:
            raise AlgorithmError(
                "the 'soa' candidate-store backend requires numpy, which is "
                "not installed; use backend='object' instead"
            )
        self.arena = ScratchArena()
        self.tape = ProvenanceTape(self.arena)
        self.solves = 0
        self._scratch = _EMPTY_F8
        # Tape-index -> materialized decision, shared by every frontier
        # snapshot of one solve (repeated expansion stays linear in the
        # distinct reachable records).  Dropped whenever the tape
        # rewinds — its keys are tape indices.
        self._materialize_memo: Dict[int, object] = {}

    def scratch_f8(self, n: int):
        """A persistent float64 scratch row of length ``n``.

        One per factory, grown monotonically and never recycled —
        transient per-kernel staging (the wire shift, root evaluation)
        uses it instead of arena round-trips.  Valid only within one
        store operation; the next call may hand out the same row.
        """
        scratch = self._scratch
        if len(scratch) < n:
            scratch = np.empty(ScratchArena._capacity(n), dtype=np.float64)
            self._scratch = scratch
        return scratch[:n]

    def begin_solve(self) -> None:
        self.solves += 1
        self.tape.reset()
        self.arena.reset()
        self._materialize_memo.clear()

    def end_solve(self) -> None:
        # The BufferingResult holds the expanded assignment, never tape
        # indices, so the records can go now instead of pinning the
        # whole solve's provenance until the next begin_solve.
        self.tape.reset()
        self._materialize_memo.clear()

    def sink(self, node_id: int, q: float, c: float) -> SoAStore:
        index = self.tape.append_sink(node_id)
        arena = self.arena
        z = arena.pair(1)
        d = arena.ip_block(1)
        z[0, 0] = q
        z[1, 0] = c
        d[0] = index
        return SoAStore(z, d, 1, self)

    def empty(self) -> SoAStore:
        return SoAStore(_EMPTY_PAIR, _EMPTY_IP, 0, self)

    def snapshot(self, store: CandidateStore):
        """Freeze a frontier: value copies plus *materialized* provenance.

        The tape is rewound on the next ``begin_solve``, so a snapshot
        must not hold tape indices: every candidate's decision chain is
        expanded into persistent decision objects here (memoized across
        the solve's snapshots via ``_materialize_memo``).  This is
        exactly the boundary that keeps stale :class:`TapeRef`\\ s from
        leaking into the frontier cache.
        """
        assert isinstance(store, SoAStore)
        n = store.n
        memo = self._materialize_memo
        tape = self.tape
        materialize = tape.materialize
        return (
            store.z[0, :n].tolist(),
            store.z[1, :n].tolist(),
            [materialize(index, memo) for index in store.d[:n].tolist()],
        )

    def snapshot_values(self, store: CandidateStore):
        """The cheap half of a frontier capture: three array copies.

        Returns ``(q, c, d)`` where ``d`` holds raw tape indices —
        valid only against a :class:`TapeArchive` of this solve's tape
        (:meth:`archive_tape`), which the incremental engine takes once
        per resolve.  This is what keeps capture overhead proportional
        to candidate *values*, not provenance graphs.
        """
        assert isinstance(store, SoAStore)
        n = store.n
        return (
            store.z[0, :n].copy(),
            store.z[1, :n].copy(),
            store.d[:n].copy(),
        )

    def archive_tape(self) -> TapeArchive:
        """Freeze the current solve's tape (see :class:`TapeArchive`)."""
        return TapeArchive(self.tape)

    def from_snapshot(self, q, c, decisions) -> SoAStore:
        """Splice a frozen frontier into the current solve.

        Values land in fresh arena blocks (the store will be mutated in
        place by downstream WIRE kernels); provenance enters the tape as
        one bulk run of ``_TAPE_SPLICE`` records pointing at the
        already-persistent decisions.
        """
        count = len(q)
        if count == 0:
            return self.empty()
        arena = self.arena
        z = arena.pair(count)
        d = arena.ip_block(count)
        z[0, :count] = q
        z[1, :count] = c
        base = self.tape.append_splices(decisions)
        np.add(arena.iota(count), base, out=d[:count])
        return SoAStore(z, d, count, self)

    def stats(self) -> Dict[str, object]:
        """Kernel-engine health for the serving layer's ``/stats``."""
        return {
            "solves": self.solves,
            "arena": self.arena.stats(),
            "tape": self.tape.stats(),
        }
