"""The bottom-up dynamic program shared by every insertion algorithm.

The engine walks the tree in post-order maintaining, per subtree, the
sorted nonredundant candidate list of Section 2.  The three operations
are exactly the paper's:

1. *add buffer* at a buffer position — pluggable (this is where the
   algorithms differ);
2. *add wire* when moving a child's list up through its incoming edge;
3. *merge* sibling branch lists at branching vertices.

At the root the driver turns the list into a single slack number, and
the winning candidate's decision DAG is expanded into an explicit
:class:`~repro.core.solution.BufferingResult`.

The *representation* of the candidate lists is pluggable too
(:mod:`repro.core.stores`): with ``backend="object"`` (this engine-level
function's default — the public :func:`~repro.core.api.insert_buffers`
defaults to ``"auto"``, which defers the choice to the execution router
(:mod:`repro.routing`; the default ``static`` policy keeps the
historical SoA-when-NumPy rule))
the engine operates on bare ``CandidateList`` objects exactly as the seed
code did — including the legacy list-level ``add_buffer`` /
``add_wire`` / ``merge`` callables used by the instrumentation modules —
while any other backend runs through the :class:`CandidateStore`
protocol, with ``add_buffer`` receiving the store (the built-in
algorithms route it to the store's fused
:meth:`~repro.core.stores.base.CandidateStore.apply_buffer`).  Store
ops may mutate in place and return the same store; the engine's
release bookkeeping only recycles operands that were actually
replaced.  Provenance may be deferred: the winning root candidate's
``decision`` can be a backend handle (the SoA tape reference) that
:func:`~repro.core.candidate.reconstruct_assignment` expands once, at
the end of the solve.

So is the *execution strategy* (:mod:`repro.core.schedule`):
:func:`run_dynamic_program` accepts either a plain
:class:`~repro.tree.routing_tree.RoutingTree` — walked as above — or a
:class:`~repro.core.schedule.CompiledNet`, interpreted as a flat
instruction stream with no tree-object access in the hot path.  Plain
trees compile themselves transparently: the first solve walks the tree
and caches a schedule, repeat solves run the interpreter.  Both paths
perform the same IEEE-754 operations on the same inputs in dependency
order, so their results are bit-identical.

There is a third executor of the same contract outside this module:
the incremental engine (:mod:`repro.incremental.engine`) runs its own
interpreter over a ``CompiledNet``'s instruction stream, skipping
clean subtree ranges and splicing memoized frontiers onto the stack.
It builds its per-backend operations with :func:`_resolve_ops` and
finishes through :func:`_finish`, so those two helpers — together with
the instruction semantics of ``_execute_schedule`` and the engine's
release discipline (a consumed store is released the moment it is no
longer reachable from the stack) — are a load-bearing internal
contract: change them in lockstep with that engine.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.buffer_ops import BufferPlan
from repro.core.candidate import (
    Candidate,
    CandidateList,
    SinkDecision,
    best_candidate_for_driver,
    reconstruct_assignment,
)
from repro.core.schedule import (
    OP_FINAL,
    OP_MERGE,
    OP_SINK,
    OP_WIRE,
    CompiledNet,
    auto_compile_enabled,
    cache_schedule,
    cached_schedule,
)
from repro.core.solution import BufferingResult, DPStats
from repro.errors import AlgorithmError
from repro.library.library import BufferLibrary
from repro.obs.profiler import instrument_ops, record_dp_stats
from repro.obs.spans import active_tracer
from repro.resilience.deadline import active_deadline
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: Signature of an add-buffer operation under the object backend: takes
#: the node's current candidate list and its :class:`BufferPlan`,
#: returns the new full list (old and new candidates, nonredundant,
#: sorted).  Under any other backend the first argument is the node's
#: :class:`~repro.core.stores.base.CandidateStore` instead.
AddBufferOp = Callable[[CandidateList, BufferPlan], CandidateList]


@lru_cache(maxsize=64)
def _full_library_plan(buffers) -> BufferPlan:
    """The whole-library :class:`BufferPlan`, cached per buffer tuple.

    Sharing across solves matters for the batch engine and the sweep
    experiments, which solve many nets against one library: each worker
    process sorts the library once, not once per net.
    """
    return BufferPlan(-1, buffers)


def build_plans(tree: RoutingTree, library: BufferLibrary) -> Dict[int, BufferPlan]:
    """Precompute a :class:`BufferPlan` per buffer position.

    Nodes that allow the whole library share one plan's sort orders via
    :meth:`BufferPlan.shared_view`; restricted nodes get a plan for
    their subset.  This mirrors the paper's one-off ``O(b log b)``
    library sort outside the main loop.
    """
    full_plan = _full_library_plan(library.buffers)
    plans: Dict[int, BufferPlan] = {}
    for node in tree.buffer_positions():
        if node.allowed_buffers is None:
            plan = BufferPlan.shared_view(node.node_id, full_plan)
        else:
            allowed = [b for b in library.buffers if b.name in node.allowed_buffers]
            if not allowed:
                continue  # effectively not a buffer position
            plan = BufferPlan(node.node_id, allowed)
        plans[node.node_id] = plan
    return plans


def _release_noop(store) -> None:
    """Store release under the object backend: bare lists, GC-managed."""


def _release_store(store) -> None:
    store.release()


def _resolve_ops(
    backend: str,
    add_wire: Optional[Callable],
    merge: Optional[Callable],
    factory=None,
) -> Tuple[Callable, Callable, Callable, Callable, Callable]:
    """The five backend-specific callables the engine loops over.

    Returns ``(sink_op, wire_op, merge_op, best_op, release_op)``.
    ``factory`` is only used (and created when ``None``) for non-object
    backends; reusing one across solves keeps its scratch state warm.
    Shared with the incremental engine's splice interpreter (see the
    module docstring), which passes its session-owned factory here.
    """
    if backend == "object":
        from repro.core.merge import merge_branches as default_merge
        from repro.core.wire_ops import add_wire as default_add_wire

        wire_op = add_wire if add_wire is not None else default_add_wire
        merge_op = merge if merge is not None else default_merge

        def sink_op(node_id: int, q: float, c: float) -> CandidateList:
            return [Candidate(q=q, c=c, decision=SinkDecision(node_id))]

        return (
            sink_op,
            wire_op,
            merge_op,
            best_candidate_for_driver,
            _release_noop,
        )

    if add_wire is not None or merge is not None:
        raise AlgorithmError(
            "list-level add_wire/merge overrides require backend='object'; "
            f"got backend={backend!r}"
        )
    if factory is None:
        from repro.core.stores import get_store_backend

        factory = get_store_backend(backend)()
    factory.begin_solve()
    wire_op = lambda store, r, c: store.add_wire(r, c)  # noqa: E731
    merge_op = lambda left, right: left.merge(right)  # noqa: E731
    best_op = lambda store, resistance: store.best_for_driver(resistance)  # noqa: E731
    return factory.sink, wire_op, merge_op, best_op, _release_store


def _execute_schedule(
    compiled: CompiledNet,
    plans: List[BufferPlan],
    sink_op: Callable,
    wire_op: Callable,
    merge_op: Callable,
    add_buffer: AddBufferOp,
    release: Callable,
):
    """Run the instruction stream; returns ``(root_list, peak, generated)``.

    The stack machine mirrors the tree walk's data flow exactly — each
    instruction consumes only values the tree walk would have had at
    that point — so every arithmetic result is bit-identical.  Stores a
    consumed operand no longer reachable from the stack are released to
    the backend (a no-op for bare object lists), which is what lets the
    SoA scratch arena recycle buffers mid-solve.
    """
    steps, wire_r, wire_c, sink_node, sink_q, sink_c = compiled.runtime()

    stack: List[object] = []
    push = stack.append
    pop = stack.pop
    peak = 0
    generated = 0
    deadline = active_deadline()
    # One thread-local read per solve; with no active profiler the ops
    # come back untouched and end_range is None, so the dispatch loop
    # below executes the uninstrumented instruction stream.
    sink_op, wire_op, merge_op, add_buffer, end_range = instrument_ops(
        sink_op, wire_op, merge_op, add_buffer
    )

    for op, arg in steps:
        code = op & 3
        if code == OP_WIRE:
            top = stack[-1]
            current = wire_op(top, wire_r[arg], wire_c[arg])
            if current is not top:
                release(top)
                stack[-1] = current
        elif code == OP_SINK:
            current = sink_op(sink_node[arg], sink_q[arg], sink_c[arg])
            generated += 1
            push(current)
        elif code == OP_MERGE:
            right = pop()
            left = pop()
            current = merge_op(left, right)
            generated += len(current)
            if current is not left:
                release(left)
            if current is not right:
                release(right)
            push(current)
        else:  # OP_BUFFER
            top = stack[-1]
            before = len(top)
            current = add_buffer(top, plans[arg])
            generated += max(len(current) - before, 0)
            if current is not top:
                release(top)
                stack[-1] = current
        if op & OP_FINAL:
            # Instruction-range boundary: one per tree node.  The
            # deadline poll and profiler hook each cost a single
            # is-not-None test when inactive.
            if len(current) > peak:
                peak = len(current)
            if deadline is not None:
                deadline.check("dp.schedule")
            if end_range is not None:
                end_range(len(current))

    assert len(stack) == 1, "schedule must reduce to the root list"
    return stack[0], peak, generated


def _finish(
    root_list,
    best_op: Callable,
    release: Callable,
    driver: Optional[Driver],
    algorithm: str,
    num_buffer_positions: int,
    library: BufferLibrary,
    peak_length: int,
    candidates_generated: int,
    started: float,
    backend: str,
) -> BufferingResult:
    """Turn the root list into the result object (shared by both paths)."""
    resistance = driver.resistance if driver is not None else 0.0
    best = best_op(root_list, resistance)
    assert best is not None  # a validated tree always yields candidates
    slack = best.q - (driver.delay(best.c) if driver is not None else 0.0)
    root_candidates = len(root_list)
    release(root_list)

    tracer = active_tracer()
    with tracer.span("backtrace") if tracer is not None else nullcontext():
        assignment = reconstruct_assignment(best.decision)

    elapsed = time.perf_counter() - started
    stats = DPStats(
        algorithm=algorithm,
        num_buffer_positions=num_buffer_positions,
        library_size=library.size,
        root_candidates=root_candidates,
        peak_list_length=peak_length,
        candidates_generated=candidates_generated,
        runtime_seconds=elapsed,
        backend=backend,
    )
    record_dp_stats(stats)
    return BufferingResult(
        slack=slack,
        assignment=assignment,
        driver_load=best.c,
        stats=stats,
    )


def _run_compiled(
    compiled: CompiledNet,
    library: BufferLibrary,
    add_buffer: AddBufferOp,
    algorithm: str,
    driver: Optional[Driver],
    backend: str,
) -> BufferingResult:
    """Solve a :class:`CompiledNet` with the interpreter loop."""
    compiled.check_library(library)
    driver = driver if driver is not None else compiled.driver
    plans = compiled.plans()
    factory = None if backend == "object" else compiled.factory(backend)
    sink_op, wire_op, merge_op, best_op, release = _resolve_ops(
        backend, None, None, factory=factory
    )

    started = time.perf_counter()
    tracer = active_tracer()
    try:
        with (
            tracer.span(
                "dp.schedule", backend=backend, algorithm=algorithm,
                instructions=len(compiled.ops),
            )
            if tracer is not None
            else nullcontext()
        ):
            root_list, peak_length, candidates_generated = _execute_schedule(
                compiled, plans, sink_op, wire_op, merge_op, add_buffer, release
            )
        result = _finish(
            root_list, best_op, release, driver, algorithm,
            compiled.num_buffer_positions, library, peak_length,
            candidates_generated, started, backend,
        )
    finally:
        # Also runs after a DeadlineExceeded abort: the next
        # begin_solve resets the arena, but releasing the tape now
        # keeps an aborted solve from pinning its provenance.
        if factory is not None:
            factory.end_solve()
    return result


def run_dynamic_program(
    tree: Union[RoutingTree, CompiledNet],
    library: BufferLibrary,
    add_buffer: AddBufferOp,
    algorithm: str,
    driver: Optional[Driver] = None,
    add_wire: Optional[Callable[[CandidateList, float, float], CandidateList]] = None,
    merge: Optional[Callable[[CandidateList, CandidateList], CandidateList]] = None,
    backend: str = "object",
) -> BufferingResult:
    """Run the bottom-up DP and return the optimal buffering.

    Args:
        tree: A routing tree, or a :class:`~repro.core.schedule.CompiledNet`
            from :func:`~repro.core.schedule.compile_net` (already
            validated and planned; solved by the interpreter loop with
            no tree-object access).  Plain trees are compiled and cached
            transparently after their first solve, so repeat solves take
            the interpreter path automatically (see
            :func:`repro.core.schedule.auto_compile`).
        library: The buffer library (defines ``b``).
        add_buffer: The pluggable add-buffer operation.  Operates on
            ``CandidateList`` under ``backend="object"`` and on the
            node's :class:`CandidateStore` under any other backend.
        algorithm: Name recorded in the result.
        driver: Source driver; defaults to ``tree.driver`` (or the
            driver recorded at compile time); ``None`` means an ideal
            driver (slack is simply the best ``q``).
        add_wire, merge: List-level overrides for the other two
            operations (used by instrumentation and the cost extension);
            default to the standard ones.  Object backend only, and they
            force the tree-walking path.
        backend: Candidate-store backend name
            (:func:`repro.core.stores.store_backend_names`), or
            ``"auto"``.

    Raises:
        AlgorithmError: If the tree fails validation, the backend is
            unknown, list-level overrides are combined with a non-object
            backend, or a compiled net is combined with overrides or a
            mismatched library.
    """
    from repro.core.stores import resolve_backend

    backend = resolve_backend(backend)
    has_overrides = add_wire is not None or merge is not None

    if isinstance(tree, CompiledNet):
        if has_overrides:
            raise AlgorithmError(
                "list-level add_wire/merge overrides require a plain "
                "RoutingTree; got a CompiledNet"
            )
        return _run_compiled(tree, library, add_buffer, algorithm, driver, backend)

    auto = auto_compile_enabled() and not has_overrides
    if auto:
        compiled = cached_schedule(tree, library)
        if compiled is not None:
            return _run_compiled(
                compiled, library, add_buffer, algorithm, driver, backend
            )

    try:
        tree.validate()
    except Exception as exc:
        raise AlgorithmError(f"invalid routing tree: {exc}") from exc

    driver = driver if driver is not None else tree.driver
    plans = build_plans(tree, library)
    sink_op, wire_op, merge_op, best_op, release = _resolve_ops(
        backend, add_wire, merge
    )

    started = time.perf_counter()

    lists: Dict[int, object] = {}
    peak_length = 0
    candidates_generated = 0
    deadline = active_deadline()
    tracer = active_tracer()
    sink_op, wire_op, merge_op, add_buffer, end_range = instrument_ops(
        sink_op, wire_op, merge_op, add_buffer
    )
    walk_handle = (
        tracer.begin("dp.walk", backend=backend, algorithm=algorithm)
        if tracer is not None
        else None
    )

    for node_id in tree.postorder():
        if deadline is not None:
            deadline.check("dp.walk")
        node = tree.node(node_id)
        if node.is_sink:
            current = sink_op(node_id, node.required_arrival, node.capacitance)
            candidates_generated += 1
        else:
            branch_lists: List[object] = []
            for child in tree.children_of(node_id):
                edge = tree.edge_to(child)
                child_list = lists.pop(child)
                wired = wire_op(child_list, edge.resistance, edge.capacitance)
                if wired is not child_list:
                    release(child_list)
                branch_lists.append(wired)
            current = branch_lists[0]
            for other in branch_lists[1:]:
                merged = merge_op(current, other)
                candidates_generated += len(merged)
                if merged is not current:
                    release(current)
                if merged is not other:
                    release(other)
                current = merged
            plan = plans.get(node_id)
            if plan is not None:
                before = len(current)
                buffered = add_buffer(current, plan)
                candidates_generated += max(len(buffered) - before, 0)
                if buffered is not current:
                    release(current)
                current = buffered

        if len(current) > peak_length:
            peak_length = len(current)
        if end_range is not None:
            end_range(len(current))
        lists[node_id] = current

    if walk_handle is not None:
        tracer.end(walk_handle)

    result = _finish(
        lists[tree.root_id], best_op, release, driver, algorithm,
        tree.num_buffer_positions, library, peak_length,
        candidates_generated, started, backend,
    )

    if auto:
        # Amortize the next solve: remember the flattened schedule.
        # The walk above already validated the tree and built its
        # plans, so compilation reuses both and only pays the flatten.
        cache_schedule(tree, library, validate=False, plans=plans)
    return result
