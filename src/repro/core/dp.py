"""The bottom-up dynamic program shared by every insertion algorithm.

The engine walks the tree in post-order maintaining, per subtree, the
sorted nonredundant candidate list of Section 2.  The three operations
are exactly the paper's:

1. *add buffer* at a buffer position — pluggable (this is where the
   algorithms differ);
2. *add wire* when moving a child's list up through its incoming edge;
3. *merge* sibling branch lists at branching vertices.

At the root the driver turns the list into a single slack number, and
the winning candidate's decision DAG is expanded into an explicit
:class:`~repro.core.solution.BufferingResult`.

The *representation* of the candidate lists is pluggable too
(:mod:`repro.core.stores`): with the default ``backend="object"`` the
engine operates on bare ``CandidateList`` objects exactly as the seed
code did — including the legacy list-level ``add_buffer`` /
``add_wire`` / ``merge`` callables used by the instrumentation modules —
while any other backend runs through the :class:`CandidateStore`
protocol, with ``add_buffer`` receiving the store.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Callable, Dict, List, Optional

from repro.core.buffer_ops import BufferPlan
from repro.core.candidate import (
    Candidate,
    CandidateList,
    SinkDecision,
    best_candidate_for_driver,
    reconstruct_assignment,
)
from repro.core.solution import BufferingResult, DPStats
from repro.errors import AlgorithmError
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: Signature of an add-buffer operation under the object backend: takes
#: the node's current candidate list and its :class:`BufferPlan`,
#: returns the new full list (old and new candidates, nonredundant,
#: sorted).  Under any other backend the first argument is the node's
#: :class:`~repro.core.stores.base.CandidateStore` instead.
AddBufferOp = Callable[[CandidateList, BufferPlan], CandidateList]


@lru_cache(maxsize=64)
def _full_library_plan(buffers) -> BufferPlan:
    """The whole-library :class:`BufferPlan`, cached per buffer tuple.

    Sharing across solves matters for the batch engine and the sweep
    experiments, which solve many nets against one library: each worker
    process sorts the library once, not once per net.
    """
    return BufferPlan(-1, buffers)


def build_plans(tree: RoutingTree, library: BufferLibrary) -> Dict[int, BufferPlan]:
    """Precompute a :class:`BufferPlan` per buffer position.

    Nodes that allow the whole library share one plan's sort orders via
    :meth:`BufferPlan.shared_view`; restricted nodes get a plan for
    their subset.  This mirrors the paper's one-off ``O(b log b)``
    library sort outside the main loop.
    """
    full_plan = _full_library_plan(library.buffers)
    plans: Dict[int, BufferPlan] = {}
    for node in tree.buffer_positions():
        if node.allowed_buffers is None:
            plan = BufferPlan.shared_view(node.node_id, full_plan)
        else:
            allowed = [b for b in library.buffers if b.name in node.allowed_buffers]
            if not allowed:
                continue  # effectively not a buffer position
            plan = BufferPlan(node.node_id, allowed)
        plans[node.node_id] = plan
    return plans


def run_dynamic_program(
    tree: RoutingTree,
    library: BufferLibrary,
    add_buffer: AddBufferOp,
    algorithm: str,
    driver: Optional[Driver] = None,
    add_wire: Optional[Callable[[CandidateList, float, float], CandidateList]] = None,
    merge: Optional[Callable[[CandidateList, CandidateList], CandidateList]] = None,
    backend: str = "object",
) -> BufferingResult:
    """Run the bottom-up DP and return the optimal buffering.

    Args:
        tree: A validated routing tree.
        library: The buffer library (defines ``b``).
        add_buffer: The pluggable add-buffer operation.  Operates on
            ``CandidateList`` under ``backend="object"`` and on the
            node's :class:`CandidateStore` under any other backend.
        algorithm: Name recorded in the result.
        driver: Source driver; defaults to ``tree.driver``; ``None``
            means an ideal driver (slack is simply the best ``q``).
        add_wire, merge: List-level overrides for the other two
            operations (used by instrumentation and the cost extension);
            default to the standard ones.  Object backend only.
        backend: Candidate-store backend name
            (:func:`repro.core.stores.store_backend_names`).

    Raises:
        AlgorithmError: If the tree fails validation, the backend is
            unknown, or list-level overrides are combined with a
            non-object backend.
    """
    try:
        tree.validate()
    except Exception as exc:
        raise AlgorithmError(f"invalid routing tree: {exc}") from exc

    driver = driver if driver is not None else tree.driver
    plans = build_plans(tree, library)

    if backend == "object":
        from repro.core.merge import merge_branches as default_merge
        from repro.core.wire_ops import add_wire as default_add_wire

        wire_op = add_wire if add_wire is not None else default_add_wire
        merge_op = merge if merge is not None else default_merge

        def sink_op(node_id: int, q: float, c: float) -> CandidateList:
            return [Candidate(q=q, c=c, decision=SinkDecision(node_id))]

        best_op = best_candidate_for_driver
    else:
        from repro.core.stores import get_store_backend

        if add_wire is not None or merge is not None:
            raise AlgorithmError(
                "list-level add_wire/merge overrides require backend='object'; "
                f"got backend={backend!r}"
            )
        factory = get_store_backend(backend)()
        sink_op = factory.sink
        wire_op = lambda store, r, c: store.add_wire(r, c)  # noqa: E731
        merge_op = lambda left, right: left.merge(right)  # noqa: E731
        best_op = lambda store, resistance: store.best_for_driver(resistance)  # noqa: E731

    started = time.perf_counter()

    lists: Dict[int, object] = {}
    peak_length = 0
    candidates_generated = 0

    for node_id in tree.postorder():
        node = tree.node(node_id)
        if node.is_sink:
            current = sink_op(node_id, node.required_arrival, node.capacitance)
            candidates_generated += 1
        else:
            branch_lists: List[object] = []
            for child in tree.children_of(node_id):
                edge = tree.edge_to(child)
                child_list = lists.pop(child)
                branch_lists.append(
                    wire_op(child_list, edge.resistance, edge.capacitance)
                )
            current = branch_lists[0]
            for other in branch_lists[1:]:
                current = merge_op(current, other)
                candidates_generated += len(current)
            plan = plans.get(node_id)
            if plan is not None:
                before = len(current)
                current = add_buffer(current, plan)
                candidates_generated += max(len(current) - before, 0)

        if len(current) > peak_length:
            peak_length = len(current)
        lists[node_id] = current

    root_list = lists[tree.root_id]
    resistance = driver.resistance if driver is not None else 0.0
    best = best_op(root_list, resistance)
    assert best is not None  # a validated tree always yields candidates
    slack = best.q - (driver.delay(best.c) if driver is not None else 0.0)

    elapsed = time.perf_counter() - started
    stats = DPStats(
        algorithm=algorithm,
        num_buffer_positions=tree.num_buffer_positions,
        library_size=library.size,
        root_candidates=len(root_list),
        peak_list_length=peak_length,
        candidates_generated=candidates_generated,
        runtime_seconds=elapsed,
        backend=backend,
    )
    return BufferingResult(
        slack=slack,
        assignment=reconstruct_assignment(best.decision),
        driver_load=best.c,
        stats=stats,
    )
