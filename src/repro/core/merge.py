"""The branch-merge operation of the dynamic program.

At a branching vertex the candidate lists of two child branches combine:
a joint candidate loads the vertex with ``c_l + c_r`` and its slack is
the worse branch, ``min(q_l, q_r)``.  Only pairings in which the
smaller-``q`` side is matched with the cheapest adequate partner can be
nonredundant, which the classic two-pointer walk enumerates directly in
``O(k_l + k_r)`` — the paper's third major operation.
"""

from __future__ import annotations

from repro.core.candidate import Candidate, CandidateList, MergeDecision
from repro.core.pruning import prune_dominated


def merge_branches(left: CandidateList, right: CandidateList) -> CandidateList:
    """Merge two sorted nonredundant branch lists into one.

    Both inputs must be sorted by strictly increasing ``c`` and ``q``;
    so is the output.  Each output candidate records a
    :class:`MergeDecision` pairing its two provenance decisions.
    """
    if not left or not right:
        # An empty branch list cannot occur for well-formed subtrees (a
        # subtree always has at least its unbuffered candidate), but the
        # identity behaviour is the sane degenerate answer.
        return left or right

    merged: CandidateList = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i], right[j]
        merged.append(
            Candidate(
                q=min(a.q, b.q),
                c=a.c + b.c,
                decision=MergeDecision(a.decision, b.decision),
            )
        )
        # Advance the binding (smaller-q) side; on a tie advance both,
        # since keeping either pointer would only raise c at the same q.
        if a.q < b.q:
            i += 1
        elif b.q < a.q:
            j += 1
        else:
            i += 1
            j += 1
    # Once one list is exhausted, pairing the other's remaining (higher
    # c, higher q) candidates cannot raise min(q) further: dominated.
    return prune_dominated(merged)
