"""Candidates: (Q, C) points with decision provenance.

A *candidate* for a subtree ``T_v`` (paper Section 2) is one way of
buffering ``T_v``, summarized upstream by two numbers:

* ``q`` — the slack at ``v`` under that buffering, and
* ``c`` — the downstream capacitance seen at ``v``.

Candidate ``a`` *dominates* ``a'`` when ``q(a) >= q(a')`` and
``c(a) <= c(a')``.  Every algorithm keeps, per subtree, the list of
nonredundant candidates sorted by strictly increasing ``c`` *and*
strictly increasing ``q`` — the representation all operations in
:mod:`repro.core` assume and preserve.

Each candidate also carries a *decision*, a node in a persistent DAG
recording how it was formed, so the winning candidate at the root can be
expanded into an explicit buffer assignment
(:func:`reconstruct_assignment`).  Wires do not create decisions (they
place no buffers); sinks, buffer insertions and branch merges do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.library.buffer_type import BufferType


class SinkDecision:
    """Terminal decision: the base candidate of a sink."""

    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def __repr__(self) -> str:
        return f"SinkDecision({self.node_id})"


class BufferDecision:
    """A buffer of type ``buffer`` inserted at ``node_id``.

    ``below`` is the decision of the candidate the buffer was applied to
    (the best candidate of the subtree hanging under the buffer).
    """

    __slots__ = ("node_id", "buffer", "below")

    def __init__(self, node_id: int, buffer: BufferType, below: "Decision") -> None:
        self.node_id = node_id
        self.buffer = buffer
        self.below = below

    def __repr__(self) -> str:
        return f"BufferDecision({self.node_id}, {self.buffer.name})"


class MergeDecision:
    """Two sibling branch candidates joined at a branching vertex."""

    __slots__ = ("left", "right")

    def __init__(self, left: "Decision", right: "Decision") -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return "MergeDecision(...)"


class ExpandedDecision:
    """A decision pre-expanded to its final ``{node id: buffer}`` form.

    Produced when a deferred-provenance chain is *flattened*: the
    incremental engine's spliced frontiers reference earlier solves'
    provenance (tape archives, translation wrappers), and without a
    bound those references could chain one per re-solve.  Once a chain
    reaches the cap it is collapsed into this terminal form — O(answer)
    once, after which expansion is a dict update and retains nothing
    but buffer types.
    """

    __slots__ = ("assignment",)

    def __init__(self, assignment: Dict[int, BufferType]) -> None:
        self.assignment = assignment

    def expand(self, assignment: Dict[int, "BufferType"], stack: list) -> None:
        assignment.update(self.assignment)

    def __repr__(self) -> str:
        return f"ExpandedDecision({len(self.assignment)} buffers)"


Decision = Union[SinkDecision, BufferDecision, MergeDecision]


class Candidate:
    """A (Q, C) candidate with provenance.

    Attributes:
        q: Slack at the subtree root under this candidate, seconds.
        c: Downstream capacitance at the subtree root, farads.
        decision: Provenance DAG node for assignment reconstruction.

    ``q`` and ``c`` are mutated in place by the add-wire operation (the
    owning list is private to the dynamic program); every other operation
    builds fresh candidates.
    """

    __slots__ = ("q", "c", "decision")

    def __init__(self, q: float, c: float, decision: Decision) -> None:
        self.q = q
        self.c = c
        self.decision = decision

    def dominates(self, other: "Candidate") -> bool:
        """Paper Section 2: at least as much slack for no more load."""
        return self.q >= other.q and self.c <= other.c

    def __repr__(self) -> str:
        return f"Candidate(q={self.q:.4e}, c={self.c:.4e})"


CandidateList = List[Candidate]


def reconstruct_assignment(decision: Decision) -> Dict[int, BufferType]:
    """Expand a decision DAG into ``{node_id: buffer_type}``.

    Iterative (decision chains are as deep as the tree) and linear in the
    number of buffers plus merges.

    Besides the three decision classes above, any object with an
    ``expand(assignment, stack)`` method is accepted: it must write its
    buffers into ``assignment`` directly (and may push further
    :class:`Decision` nodes onto ``stack``).  This is the *deferred
    provenance* hook — backends that record predecessor indices in a
    compact tape instead of building decision objects per candidate
    (:class:`repro.core.stores.soa.TapeRef`) expand only the winning
    root candidate here, once per solve.
    """
    assignment: Dict[int, BufferType] = {}
    stack: List[Decision] = [decision]
    while stack:
        node = stack.pop()
        if isinstance(node, BufferDecision):
            assignment[node.node_id] = node.buffer
            stack.append(node.below)
        elif isinstance(node, MergeDecision):
            stack.append(node.left)
            stack.append(node.right)
        elif not isinstance(node, SinkDecision):
            # Deferred-provenance reference (e.g. a SoA tape index).
            node.expand(assignment, stack)
        # SinkDecision carries no buffers.
    return assignment


def best_candidate_for_driver(
    candidates: CandidateList,
    resistance: float,
) -> Optional[Candidate]:
    """The candidate maximizing ``q - R * c``.

    Ties are broken toward minimum ``c`` (the paper's convention).  For
    a sorted candidate list this is what the source driver — or a
    prospective buffer — sees as the best buffering of the subtree.
    An intrinsic delay term would shift every value equally, so it never
    changes the argmax and is not a parameter here.

    Returns ``None`` for an empty list.
    """
    best: Optional[Candidate] = None
    best_value = float("-inf")
    for candidate in candidates:
        value = candidate.q - resistance * candidate.c
        # Strict improvement keeps the earliest (minimum-c) maximizer.
        if value > best_value:
            best_value = value
            best = candidate
    return best
