"""The add-buffer operation: the one step the paper makes faster.

Reaching a buffer position ``v`` with nonredundant candidate list
``N(T_v)``, each buffer type ``B_i`` spawns one new candidate

    beta_i = ( q = max over a of (q(a) - K_i - R_i * c(a)),  c = C_i )

(paper Eq. 1), inserted alongside the unbuffered candidates.

* :func:`generate_lillis` computes every ``beta_i`` by a full scan:
  ``O(b * k)`` — the inner loop that makes Lillis, Cheng & Lin's
  algorithm ``O(b^2 n^2)`` overall.

* :func:`generate_fast` is the paper's contribution: convex-prune the
  list (Lemma 3: every best candidate is on the hull), then walk the
  hull once while iterating buffer types in non-increasing driving
  resistance (Lemma 1: their best candidates move right monotonically;
  Lemma 4: a local maximum on the hull is global).  Cost ``O(k + b)``.

Both return the new candidates sorted by non-decreasing ``c`` and free of
internal dominance, ready for the ``O(k + b)`` sorted-merge insertion of
Theorem 2 (:func:`insert_candidates`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.candidate import (
    BufferDecision,
    Candidate,
    CandidateList,
)
from repro.core.pruning import convex_prune, prune_dominated
from repro.library.buffer_type import BufferType


class BufferPlan:
    """Per-node precomputation shared across the dynamic program.

    Holds the node's allowed buffer types in the two orders the
    operations need, so no per-visit sorting happens:

    Attributes:
        node_id: The buffer position this plan belongs to.
        by_resistance_desc: Allowed buffers, non-increasing ``R``.
        cap_order: Permutation such that iterating
            ``by_resistance_desc[i] for i in cap_order`` yields
            non-decreasing input capacitance (paper: "establish the
            order from buffer index i to the order in C_b" once).

    Array backends additionally attach a *plan kernel* — the ``R`` /
    ``C_in`` / intrinsic-delay / load-limit columns of
    ``by_resistance_desc`` as NumPy vectors — via the two private slots
    below.  The kernel is built lazily by
    :func:`repro.core.stores.soa.plan_kernel` (or eagerly at
    compile time by :func:`repro.core.schedule.compile_net`) and is
    cached on the *owning* plan so every shared view reuses one copy;
    this module itself never imports NumPy.
    """

    __slots__ = ("node_id", "by_resistance_desc", "cap_order",
                 "_kernel", "_shared_from")

    def __init__(self, node_id: int, buffers: Sequence[BufferType]) -> None:
        self.node_id = node_id
        self.by_resistance_desc: Tuple[BufferType, ...] = tuple(
            sorted(buffers, key=lambda b: (-b.driving_resistance, b.input_capacitance))
        )
        self.cap_order: Tuple[int, ...] = tuple(
            sorted(
                range(len(self.by_resistance_desc)),
                key=lambda i: self.by_resistance_desc[i].input_capacitance,
            )
        )
        self._kernel = None
        self._shared_from: Optional["BufferPlan"] = None

    @classmethod
    def shared_view(cls, node_id: int, full_plan: "BufferPlan") -> "BufferPlan":
        """A per-node plan sharing ``full_plan``'s precomputed orders.

        Nodes that allow the whole library need identical sort orders;
        only the ``node_id`` recorded in decisions differs.  This view
        reuses ``full_plan``'s tuples instead of re-sorting (the paper's
        one-off ``O(b log b)`` cost stays one-off), without re-running
        ``__init__``.  The backlink also makes every view share the
        owning plan's lazily-built kernel arrays.
        """
        plan = cls.__new__(cls)
        plan.node_id = node_id
        plan.by_resistance_desc = full_plan.by_resistance_desc
        plan.cap_order = full_plan.cap_order
        plan._kernel = None
        plan._shared_from = full_plan
        return plan

    def __len__(self) -> int:
        return len(self.by_resistance_desc)


def _scan_best(
    candidates: CandidateList, resistance: float, max_load: float
) -> Tuple[Candidate, float]:
    """Min-c argmax of ``q - R c`` over candidates with ``c <= max_load``.

    Returns ``(None, -inf)`` when no candidate is drivable.  Candidates
    are c-sorted, so the scan stops at the load limit.
    """
    best = None
    best_value = float("-inf")
    for candidate in candidates:
        if candidate.c > max_load:
            break
        value = candidate.q - resistance * candidate.c
        if value > best_value:
            best_value = value
            best = candidate
    return best, best_value


def generate_lillis(candidates: CandidateList, plan: BufferPlan) -> CandidateList:
    """All buffered candidates by exhaustive scan: ``O(b * k)``.

    Ties in ``q(a) - R_i c(a)`` resolve to the minimum-``c`` candidate
    (the scan runs in increasing ``c`` and only strict improvements move
    the argmax), matching the paper's definition of the best candidate.
    Buffer types with a ``max_load`` only consider candidates they can
    legally drive; a type that can drive nothing emits no candidate.
    """
    if not candidates:
        return []
    betas: List[Optional[Candidate]] = [None] * len(plan.by_resistance_desc)
    for index, buffer in enumerate(plan.by_resistance_desc):
        limit = buffer.max_load if buffer.max_load is not None else float("inf")
        best, best_value = _scan_best(candidates, buffer.driving_resistance, limit)
        if best is None:
            continue
        betas[index] = Candidate(
            q=best_value - buffer.intrinsic_delay,
            c=buffer.input_capacitance,
            decision=BufferDecision(plan.node_id, buffer, best.decision),
        )
    ordered = [betas[i] for i in plan.cap_order if betas[i] is not None]
    return prune_dominated(ordered)


def generate_fast(
    candidates: CandidateList,
    plan: BufferPlan,
    hull: CandidateList = None,
) -> CandidateList:
    """All buffered candidates via the hull walk: ``O(k + b)``.

    Args:
        candidates: The nonredundant list ``N(T_v)`` (sorted).
        plan: The node's buffer plan.
        hull: Optionally a precomputed ``convex_prune(candidates)``
            (the destructive mode reuses it as the surviving list).

    The walk advances only on strict improvement, so on a plateau of
    equal ``q - R c`` the leftmost (minimum ``c``) hull point wins —
    the same tie rule as :func:`generate_lillis`, which the equivalence
    tests rely on.

    Buffer types with a ``max_load`` cannot use the hull shortcut: under
    a load cap the constrained optimum may sit strictly inside the hull
    (Lemma 3 needs all resistances to be feasible), so those types fall
    back to a prefix scan of the full list.  Unconstrained types — the
    DATE-2005 setting — keep the O(k + b) walk.
    """
    if not candidates:
        return []
    if hull is None:
        hull = convex_prune(candidates)
    betas: List[Optional[Candidate]] = [None] * len(plan.by_resistance_desc)
    pointer = 0
    last = len(hull) - 1
    for index, buffer in enumerate(plan.by_resistance_desc):
        resistance = buffer.driving_resistance
        if buffer.max_load is not None:
            current, value = _scan_best(candidates, resistance, buffer.max_load)
            if current is None:
                continue
        else:
            current = hull[pointer]
            value = current.q - resistance * current.c
            while pointer < last:
                following = hull[pointer + 1]
                next_value = following.q - resistance * following.c
                if next_value <= value:
                    break
                pointer += 1
                current = following
                value = next_value
        betas[index] = Candidate(
            q=value - buffer.intrinsic_delay,
            c=buffer.input_capacitance,
            decision=BufferDecision(plan.node_id, buffer, current.decision),
        )
    ordered = [betas[i] for i in plan.cap_order if betas[i] is not None]
    return prune_dominated(ordered)


def insert_candidates(
    candidates: CandidateList, new_candidates: CandidateList
) -> CandidateList:
    """Theorem 2: merge the ``beta_i`` into the list in ``O(k + b)``.

    Both inputs must be sorted by non-decreasing ``c``; the result is
    the nonredundant union, sorted by strictly increasing ``c`` and
    ``q``.
    """
    if not new_candidates:
        return candidates
    if not candidates:
        return prune_dominated(new_candidates)
    merged: CandidateList = []
    i = j = 0
    while i < len(candidates) and j < len(new_candidates):
        if candidates[i].c <= new_candidates[j].c:
            merged.append(candidates[i])
            i += 1
        else:
            merged.append(new_candidates[j])
            j += 1
    merged.extend(candidates[i:])
    merged.extend(new_candidates[j:])
    return prune_dominated(merged)
