"""Compiled solve schedules: validate, plan and flatten a net **once**.

The dynamic program's hot loop does not need the tree *objects* at all —
it needs, in post-order, the paper's three operations with their scalar
arguments:

* **add wire** (paper op 2) with the edge's lumped ``R``/``C``;
* **merge** (paper op 3) of two sibling branch lists;
* **add buffer** (paper op 1) with the node's precomputed
  :class:`~repro.core.buffer_ops.BufferPlan`;

plus the sink base candidates that seed the recursion.  Yet every call
to :func:`repro.core.dp.run_dynamic_program` on a plain
:class:`~repro.tree.routing_tree.RoutingTree` re-validates the tree,
rebuilds every ``BufferPlan``, and walks the Python object graph
(``postorder()`` → ``node()`` → ``children_of()`` → ``edge_to()`` per
vertex).  For the solve-many workloads this library targets — the
Table 1 / Figure 3 / Figure 4 sweeps re-solve the *same* nets across
library sizes and algorithms, and :func:`repro.core.batch.solve_many`
buffers whole corpora — that fixed overhead is pure waste.

:func:`compile_net` pays it once.  It flattens the post-order walk into
a compact instruction stream over four op codes:

=========  ===============================================  ==========
op code    meaning                                          paper op
=========  ===============================================  ==========
``SINK``   push the sink's base candidate ``(q, c)``        (seed)
``WIRE``   propagate the top list through edge ``R``/``C``  add wire
``MERGE``  combine the top two lists                        merge
``BUFFER`` apply the position's ``BufferPlan`` to the top   add buffer
=========  ===============================================  ==========

executed by a tiny stack machine (:func:`repro.core.dp.run_dynamic_program`
recognizes a :class:`CompiledNet` and runs the interpreter loop — no
tree-object access in the hot path).  Wire parasitics and sink ``q``/``c``
live in flat ``array('d')`` payloads, op codes in ``bytes``, so a
``CompiledNet`` pickles in a fraction of the bytes of the object tree it
came from — which is exactly what the batch engine ships to worker
processes.

The instruction stream preserves the tree walk's data-dependency order,
so every float is produced by the same IEEE-754 operations on the same
inputs: results are **bit-identical** to the tree-walking path (the same
parity bar the SoA backend meets against the object backend; asserted by
``tests/test_schedule.py`` on a randomized corpus).

Repeat solves on plain trees get the same treatment automatically: the
first ``run_dynamic_program(tree, library, ...)`` walks the tree and
caches a compiled schedule in a :class:`weakref.WeakKeyDictionary`, and
every later solve of that (tree, library) pair runs the interpreter.
:func:`auto_compile` turns the caching off for instrumentation or A/B
timing.
"""

from __future__ import annotations

import weakref
from array import array
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.buffer_ops import BufferPlan
from repro.errors import AlgorithmError
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: Instruction op codes (low two bits) ...
OP_SINK = 0
OP_WIRE = 1
OP_MERGE = 2
OP_BUFFER = 3
#: ... plus the node-final flag: the last instruction of each tree
#: vertex carries it, so the interpreter samples peak-list-length at
#: exactly the points the tree walk does.
OP_FINAL = 4

_OP_MASK = 3


class CompiledNet:
    """One net, compiled against one library, ready for repeat solves.

    Everything a solve needs, with the tree objects flattened away:

    Attributes:
        ops: One byte per instruction: an op code (:data:`OP_SINK`,
            :data:`OP_WIRE`, :data:`OP_MERGE`, :data:`OP_BUFFER`) OR-ed
            with :data:`OP_FINAL` on each vertex's last instruction.
        args: Per-instruction argument (``array('q')``): index into the
            sink payload, the wire payload, or the plan table; unused
            (0) for ``MERGE``.
        wire_r / wire_c: Edge parasitics, in instruction-argument order.
        sink_node / sink_q / sink_c: Sink ids, required arrivals and
            load capacitances.
        library: The :class:`BufferLibrary` the plans were built for.
        driver: The tree's source driver at compile time.
        num_nodes / num_sinks / num_buffer_positions: Tree metadata
            (``num_nodes`` also guards the repeat-solve cache against
            trees that grew after compilation).

    Buffer plans are *not* stored directly: they are rebuilt lazily from
    ``(node_id, allowed-name)`` specs plus the library, so the pickled
    payload stays compact and workers re-share the one
    :func:`~repro.core.dp._full_library_plan` sort per process.
    Per-backend store factories created for this net are cached on the
    instance (and dropped from pickles), so repeat solves reuse the SoA
    backend's decision arena and scratch arena instead of reallocating
    them.
    """

    def __init__(
        self,
        ops: bytes,
        args: array,
        wire_r: array,
        wire_c: array,
        sink_node: array,
        sink_q: array,
        sink_c: array,
        plan_specs: List[Tuple[int, Optional[Tuple[str, ...]]]],
        library: BufferLibrary,
        driver: Optional[Driver],
        num_nodes: int,
        num_sinks: int,
        num_buffer_positions: int,
        start_of_node: Optional[Dict[int, int]] = None,
        final_of_node: Optional[Dict[int, int]] = None,
        wire_index_of: Optional[Dict[int, int]] = None,
    ) -> None:
        self.ops = ops
        self.args = args
        self.wire_r = wire_r
        self.wire_c = wire_c
        self.sink_node = sink_node
        self.sink_q = sink_q
        self.sink_c = sink_c
        self.plan_specs = plan_specs
        self.library = library
        self.driver = driver
        self.num_nodes = num_nodes
        self.num_sinks = num_sinks
        self.num_buffer_positions = num_buffer_positions
        #: Per-node instruction ranges: node ``v``'s subtree occupies
        #: instructions ``[start_of_node[v], final_of_node[v]]`` (the
        #: final one carries :data:`OP_FINAL` and leaves v's completed
        #: frontier on top of the stack).  The incremental engine skips
        #: and splices whole subtrees through these; plain solves never
        #: read them.
        self.start_of_node = start_of_node or {}
        self.final_of_node = final_of_node or {}
        #: ``child node id -> index into wire_r/wire_c`` (payload patching).
        self.wire_index_of = wire_index_of or {}
        self._plans: Optional[List[BufferPlan]] = None
        self._factories: Dict[str, object] = {}
        self._runtime: Optional[tuple] = None
        self._sink_index_of: Optional[Dict[int, int]] = None
        self._group_signature: Optional[tuple] = None

    # -- solve-time accessors ------------------------------------------

    def plans(self) -> List[BufferPlan]:
        """The ``BufferPlan`` table, rebuilt lazily after unpickling."""
        if self._plans is None:
            from repro.core.dp import _full_library_plan

            full_plan = _full_library_plan(self.library.buffers)
            plans: List[BufferPlan] = []
            for node_id, allowed_names in self.plan_specs:
                if allowed_names is None:
                    plans.append(BufferPlan.shared_view(node_id, full_plan))
                else:
                    allowed = [
                        b for b in self.library.buffers
                        if b.name in allowed_names
                    ]
                    plans.append(BufferPlan(node_id, allowed))
            from repro.core.stores.soa import prime_plan_kernels

            prime_plan_kernels(plans)
            self._plans = plans
        return self._plans

    def runtime(self) -> tuple:
        """Interpreter-ready payloads, unboxed once per process.

        The compact ``bytes``/``array`` encoding is ideal on the wire
        but boxes a fresh Python object per indexing; the hot loop
        instead reads these cached plain lists, whose elements are
        created once.  Returns ``(steps, wire_r, wire_c, sink_node,
        sink_q, sink_c)`` where ``steps`` is the zipped ``(op, arg)``
        instruction list.
        """
        if self._runtime is None:
            self._runtime = (
                list(zip(self.ops, self.args)),
                self.wire_r.tolist(),
                self.wire_c.tolist(),
                self.sink_node.tolist(),
                self.sink_q.tolist(),
                self.sink_c.tolist(),
            )
        return self._runtime

    def factory(self, backend: str):
        """A per-net, per-backend store factory, reused across solves.

        Reuse is what lets the SoA backend's scratch arena stay warm:
        the factory's :meth:`~repro.core.stores.base.StoreFactory.begin_solve`
        resets per-solve state while keeping the allocated buffers.
        """
        factory = self._factories.get(backend)
        if factory is None:
            from repro.core.stores import get_store_backend

            factory = get_store_backend(backend)()
            self._factories[backend] = factory
        return factory

    def factory_stats(self) -> Dict[str, Dict]:
        """Health counters of this net's per-backend store factories.

        Keyed by backend name; each value is the factory's
        :meth:`~repro.core.stores.base.StoreFactory.stats` dict (the
        SoA backend reports solve counts, scratch-arena block pools and
        provenance-tape capacity).  Only backends that have actually
        solved through this compiled net appear.  The serving layer
        aggregates this over its compiled-net cache for ``/stats``.
        """
        return {
            backend: factory.stats()
            for backend, factory in self._factories.items()
            if hasattr(factory, "stats")
        }

    # -- partition extraction (the parallel solver's surface) ----------

    def instruction_range(self, node_id: int) -> Tuple[int, int]:
        """Node ``node_id``'s subtree as an inclusive instruction range.

        Post-order flattening makes every subtree contiguous:
        instructions ``[start, final]`` compute exactly that subtree's
        frontier and leave it on top of the stack (the ``final``
        instruction carries :data:`OP_FINAL`).  Only available on
        schedules compiled in this process — the range maps are dropped
        from pickles (see :meth:`__getstate__`).
        """
        try:
            return self.start_of_node[node_id], self.final_of_node[node_id]
        except KeyError:
            raise AlgorithmError(
                f"no instruction range for node {node_id}: either the "
                "node is not part of this schedule or the schedule was "
                "unpickled (range maps do not ship; recompile locally)"
            ) from None

    def subschedule(self, node_id: int) -> "CompiledNet":
        """Extract node ``node_id``'s subtree as a standalone schedule.

        The slice ``ops[start:final+1]`` is already a complete,
        self-contained program (post-order contiguity: it consumes
        nothing below its own stack frame and leaves exactly one list).
        Payload arguments need only *rebasing*: sink, wire and plan
        entries are appended in emission order, so within any subtree
        range each kind's arguments are contiguous and ascending —
        subtracting the first occurrence per kind and slicing the
        payload arrays by the same window yields an equivalent
        standalone ``CompiledNet``.

        Node ids in ``sink_node``/``plan_specs`` are preserved verbatim,
        so a frontier solved from the extract speaks the parent
        schedule's coordinates — no translation on splice.  The extract
        has no driver (its frontier is an intermediate, never scored)
        and no range maps.
        """
        start, final = self.instruction_range(node_id)
        ops = self.ops[start:final + 1]
        raw_args = self.args[start:final + 1]
        bases = {OP_SINK: -1, OP_WIRE: -1, OP_BUFFER: -1}
        counts = {OP_SINK: 0, OP_WIRE: 0, OP_BUFFER: 0}
        args = array("q")
        for op, arg in zip(ops, raw_args):
            kind = op & _OP_MASK
            if kind == OP_MERGE:
                args.append(0)
                continue
            if bases[kind] < 0:
                bases[kind] = arg
            counts[kind] += 1
            args.append(arg - bases[kind])
        sink_base = max(bases[OP_SINK], 0)
        wire_base = max(bases[OP_WIRE], 0)
        plan_base = max(bases[OP_BUFFER], 0)
        num_nodes = sum(1 for op in ops if op & OP_FINAL)
        return CompiledNet(
            ops=ops,
            args=args,
            wire_r=self.wire_r[wire_base:wire_base + counts[OP_WIRE]],
            wire_c=self.wire_c[wire_base:wire_base + counts[OP_WIRE]],
            sink_node=self.sink_node[sink_base:sink_base + counts[OP_SINK]],
            sink_q=self.sink_q[sink_base:sink_base + counts[OP_SINK]],
            sink_c=self.sink_c[sink_base:sink_base + counts[OP_SINK]],
            plan_specs=self.plan_specs[
                plan_base:plan_base + counts[OP_BUFFER]],
            library=self.library,
            driver=None,
            num_nodes=num_nodes,
            num_sinks=counts[OP_SINK],
            num_buffer_positions=counts[OP_BUFFER],
        )

    # -- in-place payload patching (the incremental engine's surface) --

    def patch_sink(self, node_id: int, q: float, c: float) -> None:
        """Overwrite one sink's ``(required arrival, capacitance)``.

        An O(1) edit to the compiled payloads — no re-validate, no
        re-flatten.  Callers own the consistency contract: the tree this
        schedule was compiled from must have received the same edit
        (:class:`repro.incremental.engine.IncrementalSolver` does both
        sides).  Patch a *shared* schedule (the auto-compile cache, the
        server's compiled-net cache) and every other user sees the edit;
        the incremental engine therefore always compiles privately.
        """
        if self._sink_index_of is None:
            self._sink_index_of = {
                node: index for index, node in enumerate(self.sink_node)
            }
        index = self._sink_index_of[node_id]
        self.sink_q[index] = q
        self.sink_c[index] = c
        if self._runtime is not None:
            self._runtime[4][index] = q
            self._runtime[5][index] = c

    def patch_wire(
        self, child_id: int, resistance: float, capacitance: float
    ) -> None:
        """Overwrite the parasitics of the edge reaching ``child_id``.

        Same contract as :meth:`patch_sink`.
        """
        index = self.wire_index_of[child_id]
        self.wire_r[index] = resistance
        self.wire_c[index] = capacitance
        if self._runtime is not None:
            self._runtime[1][index] = resistance
            self._runtime[2][index] = capacitance

    def payload_nbytes(self) -> int:
        """Approximate resident/wire footprint of the compiled payloads.

        Counts the instruction stream and the parasitic/sink arrays —
        the parts that scale with net size and survive pickling.  The
        library, plan specs and per-process caches are excluded (the
        library is shared across nets; caches never ship).  The serving
        layer's ``/stats`` endpoint sums this over its compiled-net
        cache to report resident bytes.
        """
        arrays = (self.args, self.wire_r, self.wire_c,
                  self.sink_node, self.sink_q, self.sink_c)
        return len(self.ops) + sum(a.itemsize * len(a) for a in arrays)

    def matches_tree(self, tree: RoutingTree) -> bool:
        """Whether ``tree`` still looks like the tree compiled here.

        Guards the repeat-solve cache against in-place mutation: the
        structure (via ``num_nodes``), the driver and every sink's
        ``(required_arrival, capacitance)`` payload are compared.  Wire
        edits (:meth:`~repro.tree.routing_tree.RoutingTree.set_edge`)
        are invisible here, but every tree mutation also evicts the
        cache entry eagerly (:func:`invalidate_schedule`), so a stale
        schedule can no longer be looked up; mutating a node's private
        buffer-position fields by hand is the one hole left, and
        callers doing that must recompile explicitly.
        """
        if self.num_nodes != tree.num_nodes or self.driver != tree.driver:
            return False
        sink_q = self.sink_q
        sink_c = self.sink_c
        for index, node_id in enumerate(self.sink_node):
            node = tree.node(node_id)
            if (
                node.required_arrival != sink_q[index]
                or node.capacitance != sink_c[index]
            ):
                return False
        return True

    def check_library(self, library: BufferLibrary) -> None:
        """Raise unless ``library`` matches the one compiled against."""
        if library is self.library:
            return
        if library.buffers != self.library.buffers:
            raise AlgorithmError(
                "compiled net was built against a different buffer "
                "library; recompile with compile_net(tree, library)"
            )

    # -- pickling ------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_plans"] = None  # rebuilt lazily from plan_specs
        state["_factories"] = {}  # per-process solve state
        state["_runtime"] = None  # unboxed lazily per process
        state["_sink_index_of"] = None  # rebuilt lazily on first patch
        state["_group_signature"] = None  # recomputed lazily per process
        # The subtree-range/patch maps exist for the in-process
        # incremental engine only (which compiles privately and never
        # pickles); shipping ~3n dict entries to every batch worker
        # would defeat this encoding's compact-payload point.
        state["start_of_node"] = {}
        state["final_of_node"] = {}
        state["wire_index_of"] = {}
        return state

    def __len__(self) -> int:
        """Number of instructions in the schedule."""
        return len(self.ops)

    @property
    def num_instructions(self) -> int:
        """Instruction count as a named accessor.

        This is the size measure the execution router's cost model and
        the partitioned-solve threshold reason about; for a tree that
        has not been compiled yet the same number is available without
        compiling via
        :func:`repro.routing.features.estimate_instructions`.
        """
        return len(self.ops)

    def __repr__(self) -> str:
        return (
            f"CompiledNet(instructions={len(self.ops)}, "
            f"sinks={self.num_sinks}, "
            f"buffer_positions={self.num_buffer_positions}, "
            f"b={self.library.size})"
        )


def compile_net(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver] = None,
    validate: bool = True,
    plans: Optional[Dict[int, BufferPlan]] = None,
) -> CompiledNet:
    """Compile ``tree`` against ``library`` for repeat solving.

    Validation, :func:`~repro.core.dp.build_plans` and the post-order
    walk happen here, exactly once; the result drives the interpreter
    loop of :func:`repro.core.dp.run_dynamic_program` (pass the
    ``CompiledNet`` wherever a tree is accepted) and ships to
    :func:`repro.core.batch.solve_many` workers in place of the object
    tree.

    Args:
        tree: The routing tree to flatten.
        library: The buffer library the plans are built for.
        driver: Recorded source driver; defaults to ``tree.driver``.
        validate: Validate the tree first (disable only when the caller
            just validated the same tree).
        plans: Reuse an existing :func:`~repro.core.dp.build_plans`
            result for this exact (tree, library) pair instead of
            rebuilding it (the engine passes the plans of the solve it
            just finished).

    Raises:
        AlgorithmError: The tree fails validation.
    """
    from repro.core.dp import build_plans
    from repro.obs.spans import active_tracer

    tracer = active_tracer()
    compile_handle = (
        tracer.begin("compile", nodes=tree.num_nodes)
        if tracer is not None
        else None
    )

    if validate:
        try:
            tree.validate()
        except Exception as exc:
            raise AlgorithmError(f"invalid routing tree: {exc}") from exc

    if plans is None:
        plans = build_plans(tree, library)

    ops = bytearray()
    args = array("q")
    wire_r = array("d")
    wire_c = array("d")
    sink_node = array("q")
    sink_q = array("d")
    sink_c = array("d")
    plan_specs: List[Tuple[int, Optional[Tuple[str, ...]]]] = []
    plan_table: List[BufferPlan] = []
    emitted_children: Dict[int, int] = {}
    start_of_node: Dict[int, int] = {}
    final_of_node: Dict[int, int] = {}
    wire_index_of: Dict[int, int] = {}

    def emit(op: int, arg: int = 0) -> None:
        ops.append(op)
        args.append(arg)

    for node_id in tree.postorder():
        node = tree.node(node_id)
        children = tree.children_of(node_id)
        # Post-order makes every subtree a contiguous instruction
        # range: it starts where the first child's subtree started (or
        # at this very instruction for a sink).
        start_of_node[node_id] = (
            start_of_node[children[0]] if children else len(ops)
        )
        if node.is_sink:
            emit(OP_SINK | OP_FINAL, len(sink_node))
            final_of_node[node_id] = len(ops) - 1
            sink_node.append(node_id)
            sink_q.append(node.required_arrival)
            sink_c.append(node.capacitance)
        else:
            # All children (and their WIRE/MERGE glue) are already
            # emitted; only the position's add-buffer step remains.
            plan = plans.get(node_id)
            if plan is not None:
                emit(OP_BUFFER | OP_FINAL, len(plan_table))
                final_of_node[node_id] = len(ops) - 1
                plan_table.append(plan)
                allowed = node.allowed_buffers
                plan_specs.append(
                    (node_id, None if allowed is None else tuple(allowed))
                )

        if node_id == tree.root_id:
            continue

        # Moving up the incoming edge: wire the just-finished subtree
        # list, then fold it into the branches accumulated so far.  The
        # MERGE interleaving preserves the tree walk's left-to-right
        # merge order (and its decision-arena append order).
        edge = tree.edge_to(node_id)
        emit(OP_WIRE, len(wire_r))
        wire_index_of[node_id] = len(wire_r)
        wire_r.append(edge.resistance)
        wire_c.append(edge.capacitance)
        rank = emitted_children.get(edge.parent, 0)
        emitted_children[edge.parent] = rank + 1
        if rank:
            emit(OP_MERGE)
        # When the parent has no add-buffer step, its list is complete
        # the moment its last child folds in: flag that instruction as
        # the parent's final one so peak-length sampling matches the
        # tree walk.
        if (
            rank + 1 == len(tree.children_of(edge.parent))
            and edge.parent not in plans
        ):
            ops[-1] |= OP_FINAL
            final_of_node[edge.parent] = len(ops) - 1

    compiled = CompiledNet(
        ops=bytes(ops),
        args=args,
        wire_r=wire_r,
        wire_c=wire_c,
        sink_node=sink_node,
        sink_q=sink_q,
        sink_c=sink_c,
        plan_specs=plan_specs,
        library=library,
        driver=driver if driver is not None else tree.driver,
        num_nodes=tree.num_nodes,
        num_sinks=len(sink_node),
        num_buffer_positions=tree.num_buffer_positions,
        start_of_node=start_of_node,
        final_of_node=final_of_node,
        wire_index_of=wire_index_of,
    )
    # The plans just walked are the plan table; seed the lazy cache so
    # in-process solves never rebuild it (pickles still rebuild from
    # the specs).  Plan kernels — the R / C_in / intrinsic-delay
    # vectors the SoA buffer kernel broadcasts against — are built here
    # too, so they are part of the compiled artifact's warm state
    # rather than a first-solve cost (no-op without NumPy).
    from repro.core.stores.soa import prime_plan_kernels

    prime_plan_kernels(plan_table)
    compiled._plans = plan_table
    if compile_handle is not None:
        tracer.end(compile_handle, instructions=len(compiled.ops))
    return compiled


# ----------------------------------------------------------------------
# Repeat-solve cache
# ----------------------------------------------------------------------

#: Latest compiled schedule per live tree.  Weak keys: caching must not
#: keep trees alive, and a collected tree takes its schedule with it.
_SCHEDULE_CACHE: "weakref.WeakKeyDictionary[RoutingTree, CompiledNet]" = (
    weakref.WeakKeyDictionary()
)

_AUTO_COMPILE = True


def auto_compile_enabled() -> bool:
    """Whether plain-tree solves cache and reuse compiled schedules."""
    return _AUTO_COMPILE


def set_auto_compile(enabled: bool) -> bool:
    """Set the auto-compile flag; returns the previous value."""
    global _AUTO_COMPILE
    previous = _AUTO_COMPILE
    _AUTO_COMPILE = bool(enabled)
    return previous


@contextmanager
def auto_compile(enabled: bool) -> Iterator[None]:
    """Temporarily force the auto-compile flag (A/B timing, tests)."""
    previous = set_auto_compile(enabled)
    try:
        yield
    finally:
        set_auto_compile(previous)


def cached_schedule(
    tree: RoutingTree, library: BufferLibrary
) -> Optional[CompiledNet]:
    """The cached schedule for ``(tree, library)``, if still valid.

    A hit requires the library to hold the same buffers (the common
    sweep case passes the very same ``BufferLibrary`` object, which
    short-circuits the comparison) and the tree to still match the
    compiled payloads — structure, driver and sink timing/loads
    (:meth:`CompiledNet.matches_tree`), so in-place edits between
    solves fall back to a fresh walk instead of stale answers.
    """
    compiled = _SCHEDULE_CACHE.get(tree)
    if compiled is None or not compiled.matches_tree(tree):
        return None
    if (
        compiled.library is not library
        and compiled.library.buffers != library.buffers
    ):
        return None
    return compiled


def cache_schedule(
    tree: RoutingTree,
    library: BufferLibrary,
    validate: bool = True,
    plans: Optional[Dict[int, BufferPlan]] = None,
) -> CompiledNet:
    """Compile ``tree`` and remember the schedule for repeat solves."""
    compiled = compile_net(tree, library, validate=validate, plans=plans)
    _SCHEDULE_CACHE[tree] = compiled
    return compiled


def clear_schedule_cache() -> None:
    """Drop every cached schedule (benchmark hygiene)."""
    _SCHEDULE_CACHE.clear()


def invalidate_schedule(tree: RoutingTree) -> None:
    """Forget ``tree``'s cached schedule after an in-place edit.

    Called by every :class:`~repro.tree.routing_tree.RoutingTree`
    mutation, because a compiled schedule embeds wire parasitics that
    :func:`cached_schedule`'s ``matches_tree`` guard cannot see.
    """
    _SCHEDULE_CACHE.pop(tree, None)


# ----------------------------------------------------------------------
# Batch-axis grouping
# ----------------------------------------------------------------------


def group_signature(compiled: CompiledNet) -> tuple:
    """The structural identity that makes two schedules batchable.

    Two compiled nets with equal signatures execute the *same*
    instruction stream against the *same* plan table: same opcodes and
    arguments, same sink placement, same buffer-position specs, same
    vertex count.  Everything that may differ per lane is deliberately
    excluded — wire parasitics, sink required arrivals and loads (the
    multi-corner case), and the driver (evaluated per lane at the
    root).  The library is also excluded: group consumers solve a whole
    group against one caller-chosen library and
    :meth:`CompiledNet.check_library` rejects mismatched lanes.

    Cheap to compare (tuple of bytes) and cached per instance, so group
    formation over a batch is O(total instructions) once.
    """
    signature = compiled._group_signature
    if signature is None:
        signature = (
            compiled.ops,
            compiled.args.tobytes(),
            compiled.sink_node.tobytes(),
            tuple(
                (node_id, allowed if allowed is None else tuple(allowed))
                for node_id, allowed in compiled.plan_specs
            ),
            compiled.num_nodes,
        )
        compiled._group_signature = signature
    return signature


def run_compiled_group(
    nets: List[CompiledNet],
    library: BufferLibrary,
    algorithm: str = "fast",
    driver: Optional[Driver] = None,
    options: Optional[Dict[str, object]] = None,
    factory=None,
) -> list:
    """Solve structurally identical compiled nets as one batched walk.

    The batch-axis entry point: every instruction is fetched once and
    dispatched as one vectorized kernel across all lanes (see
    :mod:`repro.core.stores.batch_axis`).  ``nets`` must share one
    :func:`group_signature`.  Returns per-lane
    :class:`~repro.core.solution.BufferingResult`\\ s in input order,
    bit-identical to solving each net individually on the compiled-soa
    path.  Requires NumPy and an algorithm with a store ``add_buffer``
    op (:class:`repro.core.batch.SolverPool` probes both and falls back
    to per-net solves when either is missing).
    """
    from repro.core.stores.batch_axis import solve_group

    return solve_group(
        nets, library, algorithm=algorithm, driver=driver,
        options=options, factory=factory,
    )
