"""The classic single-buffer-type algorithm (van Ginneken, ISCAS 1990).

With one buffer type the add-buffer operation is a single ``O(k)`` scan,
giving the classic ``O(n^2)`` total.  This wrapper exists both for its
historical interface (a single :class:`BufferType`) and as the ``b = 1``
sanity baseline in the tests: on size-1 libraries all three algorithms
must agree exactly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.core.lillis import LillisAlgorithm
from repro.core.registry import InsertionAlgorithm, register_algorithm
from repro.core.solution import BufferingResult
from repro.errors import AlgorithmError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


@register_algorithm("van_ginneken")
class VanGinnekenAlgorithm(InsertionAlgorithm):
    """Single-type special case; requires a library of size 1."""

    complexity = "O(n^2)"
    summary = (
        "van Ginneken (ISCAS 1990): the classic single-buffer-type "
        "algorithm (b = 1 only)"
    )

    def add_buffer_op(self, backend: str, library: BufferLibrary):
        if library.size != 1:
            raise AlgorithmError(
                "van Ginneken's algorithm handles exactly one buffer type; "
                f"got a library of size {library.size}"
            )
        # With b = 1 the Lillis scan *is* van Ginneken's algorithm.
        return LillisAlgorithm().add_buffer_op(backend, library)

    def run(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        driver: Optional[Driver] = None,
        backend: str = "object",
    ) -> BufferingResult:
        if library.size != 1:
            raise AlgorithmError(
                "van Ginneken's algorithm handles exactly one buffer type; "
                f"got a library of size {library.size}"
            )
        result = LillisAlgorithm().run(
            tree, library, driver=driver, backend=backend
        )
        # Re-label: with b = 1 the Lillis scan *is* van Ginneken's
        # algorithm.
        return BufferingResult(
            slack=result.slack,
            assignment=result.assignment,
            driver_load=result.driver_load,
            stats=replace(result.stats, algorithm="van_ginneken"),
        )


def insert_buffers_van_ginneken(
    tree: RoutingTree,
    buffer_type: Union[BufferType, BufferLibrary],
    driver: Optional[Driver] = None,
    backend: str = "object",
) -> BufferingResult:
    """Optimal buffer insertion with a single buffer type, O(n^2).

    Args:
        tree: A validated routing tree.
        buffer_type: The buffer type, or a library of size exactly 1.
        driver: Source driver (defaults to ``tree.driver``).
        backend: Candidate-store backend (``"object"`` or ``"soa"``).

    Raises:
        AlgorithmError: If given a library with more than one type (use
            :func:`repro.core.lillis.insert_buffers_lillis` or
            :func:`repro.core.fast.insert_buffers_fast` instead).
    """
    if isinstance(buffer_type, BufferLibrary):
        library = buffer_type
    else:
        library = BufferLibrary([buffer_type])
    return VanGinnekenAlgorithm().run(
        tree, library, driver=driver, backend=backend
    )
