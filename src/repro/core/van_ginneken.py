"""The classic single-buffer-type algorithm (van Ginneken, ISCAS 1990).

With one buffer type the add-buffer operation is a single ``O(k)`` scan,
giving the classic ``O(n^2)`` total.  This wrapper exists both for its
historical interface (a single :class:`BufferType`) and as the ``b = 1``
sanity baseline in the tests: on size-1 libraries all three algorithms
must agree exactly.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.lillis import insert_buffers_lillis
from repro.core.solution import BufferingResult
from repro.errors import AlgorithmError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


def insert_buffers_van_ginneken(
    tree: RoutingTree,
    buffer_type: Union[BufferType, BufferLibrary],
    driver: Optional[Driver] = None,
) -> BufferingResult:
    """Optimal buffer insertion with a single buffer type, O(n^2).

    Args:
        tree: A validated routing tree.
        buffer_type: The buffer type, or a library of size exactly 1.
        driver: Source driver (defaults to ``tree.driver``).

    Raises:
        AlgorithmError: If given a library with more than one type (use
            :func:`repro.core.lillis.insert_buffers_lillis` or
            :func:`repro.core.fast.insert_buffers_fast` instead).
    """
    if isinstance(buffer_type, BufferLibrary):
        if buffer_type.size != 1:
            raise AlgorithmError(
                "van Ginneken's algorithm handles exactly one buffer type; "
                f"got a library of size {buffer_type.size}"
            )
        library = buffer_type
    else:
        library = BufferLibrary([buffer_type])

    result = insert_buffers_lillis(tree, library, driver=driver)
    # Re-label: with b = 1 the Lillis scan *is* van Ginneken's algorithm.
    stats = result.stats.__class__(
        algorithm="van_ginneken",
        num_buffer_positions=result.stats.num_buffer_positions,
        library_size=result.stats.library_size,
        root_candidates=result.stats.root_candidates,
        peak_list_length=result.stats.peak_list_length,
        candidates_generated=result.stats.candidates_generated,
        runtime_seconds=result.stats.runtime_seconds,
    )
    return BufferingResult(
        slack=result.slack,
        assignment=result.assignment,
        driver_load=result.driver_load,
        stats=stats,
    )
