"""Dominance pruning and the paper's convex pruning (Graham's scan).

Two prunes appear in the algorithms:

* **Dominance pruning** keeps the nonredundant set: candidates sorted by
  strictly increasing ``c`` and strictly increasing ``q``.  It restores
  the invariant after operations that may break the ``q`` ordering
  (add-wire) or introduce dominated points (inserting new buffered
  candidates).

* **Convex pruning** (paper Fig. 2, function ``Convexpruning``) further
  removes candidates strictly inside the upper-left convex hull of the
  (C, Q) point set.  Lemma 3 proves the best candidate for any buffer
  type survives, so buffered candidates may be generated from the hull
  alone.  The scan is Graham's scan specialized to pre-sorted points,
  hence linear time (Lemma 2).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.candidate import Candidate, CandidateList


def prune_dominated(candidates: CandidateList) -> CandidateList:
    """Reduce a c-sorted candidate list to its nonredundant subset.

    Input must be sorted by non-decreasing ``c`` (ties allowed, any ``q``
    order); output is sorted by strictly increasing ``c`` and ``q``.
    Among candidates tied in both ``q`` and ``c`` the earliest survives.
    Linear time.
    """
    result: CandidateList = []
    for candidate in candidates:
        if result and candidate.c < result[-1].c:
            raise ValueError("prune_dominated requires c-sorted input")
        # Equal-c candidates are adjacent; a strictly better q replaces
        # the kept one, an equal-or-worse q is dropped.
        if result and candidate.c == result[-1].c and candidate.q > result[-1].q:
            result.pop()
        if not result or candidate.q > result[-1].q:
            result.append(candidate)
    return result


def _left_turn_or_straight(a1: Candidate, a2: Candidate, a3: Candidate) -> bool:
    """Paper Eq. (2): true when ``a2`` must be pruned.

    With C as the x-axis and Q as the y-axis, ``a2`` lies on or below the
    segment ``a1 -> a3`` exactly when
    ``(q2 - q1) / (c2 - c1) <= (q3 - q2) / (c3 - c2)``; cross-multiplying
    by the positive denominators avoids the division.
    """
    return (a2.q - a1.q) * (a3.c - a2.c) <= (a3.q - a2.q) * (a2.c - a1.c)


def convex_prune(candidates: Sequence[Candidate]) -> CandidateList:
    """The surviving hull of ``Convexpruning``, non-destructively.

    Input must be a nonredundant list (strictly increasing ``c`` and
    ``q``); the result is the subsequence forming the upper-left convex
    hull: slopes between consecutive survivors strictly decrease.

    This is Graham's scan on pre-sorted points: each candidate is pushed
    once and popped at most once, so the scan is O(k) (Lemma 2).  The
    input list is not modified; the paper's destructive variant is simply
    ``lst[:] = convex_prune(lst)``, which
    :class:`repro.core.fast.FastBufferInsertion` exposes via its
    ``destructive_pruning`` flag.
    """
    hull: CandidateList = []
    for candidate in candidates:
        while len(hull) >= 2 and _left_turn_or_straight(
            hull[-2], hull[-1], candidate
        ):
            hull.pop()
        hull.append(candidate)
    return hull


def is_nonredundant(candidates: Sequence[Candidate]) -> bool:
    """Check the sorted-nonredundant invariant (test helper).

    True when ``c`` and ``q`` are both strictly increasing.
    """
    for prev, curr in zip(candidates, candidates[1:]):
        if not (curr.c > prev.c and curr.q > prev.q):
            return False
    return True


def is_convex(candidates: Sequence[Candidate]) -> bool:
    """Check the convex-hull invariant (test helper).

    True when the list is nonredundant and consecutive slopes strictly
    decrease — i.e. ``convex_prune`` would keep every point.
    """
    if not is_nonredundant(candidates):
        return False
    for a1, a2, a3 in zip(candidates, candidates[1:], candidates[2:]):
        if _left_turn_or_straight(a1, a2, a3):
            return False
    return True
