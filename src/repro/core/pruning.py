"""Dominance pruning and the paper's convex pruning (Graham's scan).

Two prunes appear in the algorithms:

* **Dominance pruning** keeps the nonredundant set: candidates sorted by
  strictly increasing ``c`` and strictly increasing ``q``.  It restores
  the invariant after operations that may break the ``q`` ordering
  (add-wire) or introduce dominated points (inserting new buffered
  candidates).

* **Convex pruning** (paper Fig. 2, function ``Convexpruning``) further
  removes candidates strictly inside the upper-left convex hull of the
  (C, Q) point set.  Lemma 3 proves the best candidate for any buffer
  type survives, so buffered candidates may be generated from the hull
  alone.  The scan is Graham's scan specialized to pre-sorted points,
  hence linear time (Lemma 2).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.candidate import Candidate, CandidateList


def prune_dominated(candidates: CandidateList) -> CandidateList:
    """Reduce a c-sorted candidate list to its nonredundant subset.

    Input must be sorted by non-decreasing ``c`` (ties allowed, any ``q``
    order); output is sorted by strictly increasing ``c`` and ``q``.
    Among candidates tied in both ``q`` and ``c`` the earliest survives.
    Linear time.
    """
    result: CandidateList = []
    for candidate in candidates:
        if result and candidate.c < result[-1].c:
            raise ValueError("prune_dominated requires c-sorted input")
        # Equal-c candidates are adjacent; a strictly better q replaces
        # the kept one, an equal-or-worse q is dropped.
        if result and candidate.c == result[-1].c and candidate.q > result[-1].q:
            result.pop()
        if not result or candidate.q > result[-1].q:
            result.append(candidate)
    return result


def _left_turn_or_straight(a1: Candidate, a2: Candidate, a3: Candidate) -> bool:
    """Paper Eq. (2): true when ``a2`` must be pruned.

    With C as the x-axis and Q as the y-axis, ``a2`` lies on or below the
    segment ``a1 -> a3`` exactly when
    ``(q2 - q1) / (c2 - c1) <= (q3 - q2) / (c3 - c2)``; cross-multiplying
    by the positive denominators avoids the division.
    """
    return (a2.q - a1.q) * (a3.c - a2.c) <= (a3.q - a2.q) * (a2.c - a1.c)


def convex_prune(candidates: Sequence[Candidate]) -> CandidateList:
    """The surviving hull of ``Convexpruning``, non-destructively.

    Input must be a nonredundant list (strictly increasing ``c`` and
    ``q``); the result is the subsequence forming the upper-left convex
    hull: slopes between consecutive survivors strictly decrease.

    This is Graham's scan on pre-sorted points: each candidate is pushed
    once and popped at most once, so the scan is O(k) (Lemma 2).  The
    input list is not modified; the paper's destructive variant is simply
    ``lst[:] = convex_prune(lst)``, which
    :class:`repro.core.fast.FastBufferInsertion` exposes via its
    ``destructive_pruning`` flag.
    """
    hull: CandidateList = []
    for candidate in candidates:
        while len(hull) >= 2 and _left_turn_or_straight(
            hull[-2], hull[-1], candidate
        ):
            hull.pop()
        hull.append(candidate)
    return hull


def prune_dominated_indices(q: Sequence[float], c: Sequence[float]) -> List[int]:
    """Index form of :func:`prune_dominated` over parallel ``q``/``c``.

    The same one-pass stack algorithm, tracking positions instead of
    candidate objects, so array backends (:mod:`repro.core.stores.soa`)
    share this selection logic instead of keeping a scalar twin: no
    arithmetic is involved, only comparisons on the given values, so the
    surviving set is bit-for-bit the one :func:`prune_dominated` keeps.
    """
    # Preallocated index store with a depth counter: the scan mutates no
    # list structure (no append/pop), only slots — measurably faster on
    # the hot mid-size lists this serves.
    kept: List[int] = [0] * len(q)
    depth = 0
    last_q = last_c = 0.0
    for i, qi in enumerate(q):
        ci = c[i]
        if depth:
            if ci == last_c and qi > last_q:
                depth -= 1
                if depth:
                    j = kept[depth - 1]
                    last_q = q[j]
                    last_c = c[j]
                else:
                    kept[0] = i
                    depth = 1
                    last_q = qi
                    last_c = ci
                    continue
            if qi > last_q:
                kept[depth] = i
                depth += 1
                last_q = qi
                last_c = ci
        else:
            kept[0] = i
            depth = 1
            last_q = qi
            last_c = ci
    del kept[depth:]
    return kept


def hull_indices(q: Sequence[float], c: Sequence[float]) -> List[int]:
    """Index form of :func:`convex_prune` over parallel ``q``/``c``.

    Graham's scan on a nonredundant (strictly increasing ``q`` and
    ``c``) point sequence, tracking positions; shared by the array
    backends for the same reason as :func:`prune_dominated_indices`.
    """
    # Preallocated index store plus the last two hull points' coordinates
    # in locals: the popping loop's predicate reads no list elements and
    # mutates no list structure.
    hull: List[int] = [0] * len(q)
    q1 = c1 = q2 = c2 = 0.0
    depth = 0
    for i, qi in enumerate(q):
        ci = c[i]
        while depth >= 2 and (q1 - q2) * (ci - c1) <= (qi - q1) * (c1 - c2):
            depth -= 1
            q1 = q2
            c1 = c2
            if depth >= 2:
                j = hull[depth - 2]
                q2 = q[j]
                c2 = c[j]
        hull[depth] = i
        depth += 1
        q2 = q1
        c2 = c1
        q1 = qi
        c1 = ci
    del hull[depth:]
    return hull


def is_nonredundant(candidates: Sequence[Candidate]) -> bool:
    """Check the sorted-nonredundant invariant (test helper).

    True when ``c`` and ``q`` are both strictly increasing.
    """
    for prev, curr in zip(candidates, candidates[1:]):
        if not (curr.c > prev.c and curr.q > prev.q):
            return False
    return True


def is_convex(candidates: Sequence[Candidate]) -> bool:
    """Check the convex-hull invariant (test helper).

    True when the list is nonredundant and consecutive slopes strictly
    decrease — i.e. ``convex_prune`` would keep every point.
    """
    if not is_nonredundant(candidates):
        return False
    for a1, a2, a3 in zip(candidates, candidates[1:], candidates[2:]):
        if _left_turn_or_straight(a1, a2, a3):
            return False
    return True
