"""Exhaustive-enumeration oracle for tiny instances.

Enumerates every assignment of {no buffer} union {allowed buffer types}
over all buffer positions and measures each with the independent timing
analysis in :mod:`repro.timing.buffered`.  Exponential, so guarded by an
explicit combination budget; exists purely as ground truth for the unit
and property tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.core.solution import BufferingResult, DPStats
from repro.errors import AlgorithmError, TimingError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.timing.buffered import evaluate_assignment
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: Refuse to enumerate more than this many assignments.
DEFAULT_MAX_COMBINATIONS = 2_000_000


def insert_buffers_brute_force(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver] = None,
    max_combinations: int = DEFAULT_MAX_COMBINATIONS,
) -> BufferingResult:
    """Optimal buffering by exhaustive enumeration (test oracle).

    Args:
        tree: A validated routing tree (keep it tiny).
        library: The buffer library.
        driver: Source driver (defaults to ``tree.driver``).
        max_combinations: Safety budget on the number of assignments.

    Raises:
        AlgorithmError: If the instance would exceed the budget.

    Tie behaviour: among equally optimal assignments the one enumerated
    first wins, which is *not* guaranteed to match the DP algorithms'
    minimum-capacitance tie rule — tests compare slacks, not
    assignments.
    """
    tree.validate()
    driver = driver if driver is not None else tree.driver

    positions = [node for node in tree.buffer_positions()]
    choice_sets: List[List[Optional[BufferType]]] = []
    total = 1
    for node in positions:
        choices: List[Optional[BufferType]] = [None]
        choices.extend(b for b in library.buffers if node.permits(b.name))
        choice_sets.append(choices)
        total *= len(choices)
        if total > max_combinations:
            raise AlgorithmError(
                f"brute force would enumerate > {max_combinations} assignments"
            )

    best_slack = float("-inf")
    best_assignment: Dict[int, BufferType] = {}
    evaluated = 0
    for combo in itertools.product(*choice_sets):
        assignment = {
            node.node_id: buffer
            for node, buffer in zip(positions, combo)
            if buffer is not None
        }
        evaluated += 1
        try:
            report = evaluate_assignment(tree, assignment, driver)
        except TimingError:
            # Load-limit violation: an infeasible assignment, skip it.
            continue
        if report.slack > best_slack:
            best_slack = report.slack
            best_assignment = assignment

    best_report = evaluate_assignment(tree, best_assignment, driver)
    stats = DPStats(
        algorithm="brute_force",
        num_buffer_positions=len(positions),
        library_size=library.size,
        root_candidates=evaluated,
        peak_list_length=evaluated,
        candidates_generated=evaluated,
        runtime_seconds=0.0,
    )
    return BufferingResult(
        slack=best_slack,
        assignment=best_assignment,
        driver_load=best_report.driver_load,
        stats=stats,
    )
