"""The add-wire operation of the dynamic program.

Propagating a candidate ``(q, c)`` up through a wire with lumped
resistance ``R_e`` and capacitance ``C_e`` (pi-model) gives

    q' = q - R_e * (C_e / 2 + c)        (Elmore delay of the wire)
    c' = c + C_e

Every candidate shifts by the same ``C_e``, so the ``c`` ordering is
preserved, but the ``-R_e * c`` term shrinks high-``c`` candidates' slack
faster, so the ``q`` ordering can break and dominated candidates appear —
hence the linear re-prune.  This matches the O(k) per-wire cost in both
Lillis et al. and the paper.
"""

from __future__ import annotations

from repro.core.candidate import CandidateList
from repro.core.pruning import prune_dominated


def add_wire(
    candidates: CandidateList, resistance: float, capacitance: float
) -> CandidateList:
    """Propagate ``candidates`` through a wire; returns the pruned list.

    Candidates are mutated in place (the dynamic program owns its lists);
    the returned list is the nonredundant subset, still sorted by
    strictly increasing ``c`` and ``q``.
    """
    if resistance == 0.0 and capacitance == 0.0:
        return candidates
    half_wire = capacitance / 2.0
    for candidate in candidates:
        candidate.q -= resistance * (half_wire + candidate.c)
        candidate.c += capacitance
    # Even at resistance == 0 (where every q survives unchanged) the
    # uniform c shift can round two neighbouring c values into a tie,
    # so the re-prune is unconditional to restore strictness.
    return prune_dominated(candidates)
