"""Result and statistics objects returned by the algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.library.buffer_type import BufferType
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree
from repro.units import to_ps


@dataclass(frozen=True)
class DPStats:
    """Bookkeeping from one dynamic-program run.

    Attributes:
        algorithm: Which algorithm produced the result.
        num_buffer_positions: The instance's ``n``.
        library_size: The instance's ``b``.
        root_candidates: Length of the root's nonredundant list.
        peak_list_length: Longest candidate list seen anywhere (the
            paper's memory discussion: the new algorithm costs ~2% more
            memory; here list peaks are identical across algorithms).
        candidates_generated: Total candidates materialized, a
            machine-independent work proxy.
        runtime_seconds: Wall-clock time of the DP proper.
        backend: Candidate-store backend the run used
            (:func:`repro.core.stores.store_backend_names`).
    """

    algorithm: str
    num_buffer_positions: int
    library_size: int
    root_candidates: int
    peak_list_length: int
    candidates_generated: int
    runtime_seconds: float
    backend: str = "object"


@dataclass(frozen=True)
class BufferingResult:
    """An optimal buffering of a net.

    Attributes:
        slack: The maximized slack at the driver output, seconds.
        assignment: ``{node_id: buffer_type}`` for every inserted
            buffer — always a fully materialized plain dict, even for
            backends that defer provenance during the solve (the SoA
            tape is backtraced before the result is constructed, so a
            result never references per-solve storage).
        driver_load: Capacitance the winning candidate presents to the
            driver, farads.
        stats: :class:`DPStats` for the run.
    """

    slack: float
    assignment: Dict[int, BufferType]
    driver_load: float
    stats: DPStats

    @property
    def num_buffers(self) -> int:
        """Number of buffers inserted."""
        return len(self.assignment)

    @property
    def total_cost(self) -> float:
        """Sum of the inserted buffers' abstract costs."""
        return sum(b.cost for b in self.assignment.values())

    def buffer_counts_by_type(self) -> Dict[str, int]:
        """How many of each buffer type the solution uses."""
        counts: Dict[str, int] = {}
        for buffer in self.assignment.values():
            counts[buffer.name] = counts.get(buffer.name, 0) + 1
        return counts

    def verify(
        self, tree: RoutingTree, driver: Optional[Driver] = None
    ) -> "TimingReport":
        """Re-measure this assignment with the independent timing oracle.

        Returns the :class:`repro.timing.buffered.TimingReport`; callers
        typically assert ``report.slack == result.slack`` (up to float
        tolerance).  Import is local to keep :mod:`repro.core` free of a
        circular dependency on :mod:`repro.timing`.
        """
        from repro.timing.buffered import evaluate_assignment

        return evaluate_assignment(tree, self.assignment, driver)

    def __str__(self) -> str:
        return (
            f"BufferingResult(slack={to_ps(self.slack):.2f}ps, "
            f"buffers={self.num_buffers}, algorithm={self.stats.algorithm!r})"
        )
