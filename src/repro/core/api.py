"""The library's front door: :func:`insert_buffers`."""

from __future__ import annotations

from typing import Optional

from repro.core.fast import insert_buffers_fast
from repro.core.lillis import insert_buffers_lillis
from repro.core.solution import BufferingResult
from repro.core.van_ginneken import insert_buffers_van_ginneken
from repro.errors import AlgorithmError
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: Algorithms selectable by name.
ALGORITHMS = ("fast", "lillis", "van_ginneken")


def insert_buffers(
    tree: RoutingTree,
    library: BufferLibrary,
    algorithm: str = "fast",
    driver: Optional[Driver] = None,
    **options,
) -> BufferingResult:
    """Maximize slack by optimal buffer insertion.

    This is the public entry point.  ``algorithm`` selects:

    * ``"fast"`` (default) — the paper's O(b n^2) algorithm.  Accepts
      ``destructive_pruning=True`` to run the literal DATE-2005
      pseudocode (see :mod:`repro.core.fast`).
    * ``"lillis"`` — the O(b^2 n^2) baseline.
    * ``"van_ginneken"`` — the classic algorithm; requires ``b == 1``.

    All algorithms return the same optimal slack; they differ in running
    time only (that difference being the paper's entire point).

    Args:
        tree: A validated routing tree.
        library: The buffer library.
        algorithm: One of :data:`ALGORITHMS`.
        driver: Source driver; defaults to ``tree.driver``; ``None``
            means an ideal driver.
        **options: Algorithm-specific flags.

    Returns:
        A :class:`~repro.core.solution.BufferingResult`.

    Raises:
        AlgorithmError: Unknown algorithm name or invalid options.
    """
    if algorithm == "fast":
        return insert_buffers_fast(tree, library, driver=driver, **options)
    if algorithm == "lillis":
        if options:
            raise AlgorithmError(f"unknown options for 'lillis': {sorted(options)}")
        return insert_buffers_lillis(tree, library, driver=driver)
    if algorithm == "van_ginneken":
        if options:
            raise AlgorithmError(
                f"unknown options for 'van_ginneken': {sorted(options)}"
            )
        return insert_buffers_van_ginneken(tree, library, driver=driver)
    raise AlgorithmError(
        f"unknown algorithm {algorithm!r}; choose one of {ALGORITHMS}"
    )
