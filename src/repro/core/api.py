"""The library's front door: :func:`insert_buffers`.

Dispatch is a registry lookup (:mod:`repro.core.registry`): the
``algorithm`` argument names a registered :class:`InsertionAlgorithm`
strategy, and the ``backend`` argument names a registered candidate
store (:mod:`repro.core.stores`) — or ``"auto"``, the default, which
defers the choice to the execution router (:mod:`repro.routing`): the
default ``static`` policy keeps the historical rule (SoA when NumPy is
importable), ``policy="model"`` picks the store the fitted cost model
predicts fastest for this request's size.  Third-party algorithms and
backends therefore plug in without touching this module.

The first positional argument may be a plain
:class:`~repro.tree.routing_tree.RoutingTree` *or* a
:class:`~repro.core.schedule.CompiledNet` from
:func:`~repro.core.schedule.compile_net`: compile a net once, then
re-solve it across algorithms, drivers and backends without paying for
validation, plan building or the tree walk again.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple, Union

from repro.core.registry import algorithm_names, get_algorithm
from repro.core.schedule import CompiledNet
from repro.core.solution import BufferingResult
from repro.core.stores import resolve_backend
from repro.library.library import BufferLibrary
from repro.resilience.deadline import Deadline, deadline_scope
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


def __getattr__(name: str) -> Tuple[str, ...]:
    # Kept for backward compatibility: the historical constant tuple is
    # now a live view of the registry.
    if name == "ALGORITHMS":
        return algorithm_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


_routers: dict = {}
_routers_lock = threading.Lock()


def _router_for(policy: Optional[str]):
    """A cached router per policy string (the api-level routing seam)."""
    from repro.routing.router import Router, default_policy

    key = policy if policy is not None else default_policy()
    with _routers_lock:
        router = _routers.get(key)
        if router is None:
            router = Router(policy=key)
            _routers[key] = router
        return router


def insert_buffers(
    tree: Union[RoutingTree, CompiledNet],
    library: BufferLibrary,
    algorithm: str = "fast",
    driver: Optional[Driver] = None,
    backend: str = "auto",
    policy: Optional[str] = None,
    deadline: Optional[Deadline] = None,
    **options,
) -> BufferingResult:
    """Maximize slack by optimal buffer insertion.

    This is the public entry point.  ``algorithm`` selects a registered
    strategy; the built-ins are:

    * ``"fast"`` (default) — the paper's O(b n^2) algorithm.  Accepts
      ``destructive_pruning=True`` to run the literal DATE-2005
      pseudocode (see :mod:`repro.core.fast`).
    * ``"lillis"`` — the O(b^2 n^2) baseline.
    * ``"van_ginneken"`` — the classic algorithm; requires ``b == 1``.

    All algorithms return the same optimal slack; they differ in running
    time only (that difference being the paper's entire point).
    ``backend`` selects how candidate lists are stored and operated on:
    ``"object"`` (Candidate objects), ``"soa"`` (structure-of-arrays
    over NumPy), or ``"auto"`` (the default), which hands the choice to
    the execution router: under the default ``policy="static"`` that
    is the historical rule — SoA whenever NumPy is importable — while
    ``policy="model"`` consults the fitted cost model, which typically
    keeps small nets on the object store (below the kernel-launch
    crossover) and large nets on SoA.  Every backend produces
    bit-identical results, so the choice only ever moves running time.

    Args:
        tree: A routing tree, or a pre-compiled net from
            :func:`repro.core.schedule.compile_net` (fastest for repeat
            solves; plain trees are also compiled and cached behind the
            scenes after their first solve).
        library: The buffer library.
        algorithm: A registered algorithm name
            (:func:`repro.core.registry.algorithm_names`).
        driver: Source driver; defaults to ``tree.driver``; ``None``
            means an ideal driver.
        backend: ``"auto"`` or a registered candidate-store backend name
            (:func:`repro.core.stores.store_backend_names`).
        policy: Routing policy for the ``"auto"`` decision (and, when
            set explicitly, for the walk/compiled schedule choice):
            ``"static"``, ``"model"``, or an ``always_*`` escape hatch
            (see :mod:`repro.routing.router`).  ``None`` follows the
            process default (:func:`repro.routing.router.default_policy`).
        deadline: Optional per-request wall budget
            (:class:`repro.resilience.Deadline`).  Checked cooperatively
            at instruction-range boundaries; an expired deadline raises
            :class:`~repro.errors.DeadlineExceeded` instead of returning
            a partial result.  Deadlines never change a completed
            result.
        **options: Algorithm-specific flags.

    Returns:
        A :class:`~repro.core.solution.BufferingResult`.

    Raises:
        AlgorithmError: Unknown algorithm or backend name, invalid
            options, or a compiled net whose library does not match.
        ValueError: Unknown ``policy``.
    """
    if deadline is not None:
        with deadline_scope(deadline):
            return insert_buffers(
                tree, library, algorithm=algorithm, driver=driver,
                backend=backend, policy=policy, **options,
            )
    strategy = get_algorithm(algorithm)
    strategy.validate_options(options)
    if backend == "auto" or policy is not None:
        from repro.routing.features import features_of

        router = _router_for(policy)
        plan = router.route(
            features_of(tree, library),
            backend=backend,
            supports_walk=isinstance(tree, RoutingTree),
        )
        resolved = resolve_backend(plan.backend)
        if plan.schedule_mode == "walk" and isinstance(tree, RoutingTree):
            # A pinned (or model-chosen) tree walk: keep the walk honest
            # by not swapping in a cached compiled schedule.
            from repro.core.schedule import auto_compile

            with auto_compile(False):
                return strategy.run(
                    tree, library, driver=driver, backend=resolved,
                    **options,
                )
    else:
        resolved = resolve_backend(backend)
    return strategy.run(
        tree, library, driver=driver, backend=resolved, **options
    )
