"""The library's front door: :func:`insert_buffers`.

Dispatch is a registry lookup (:mod:`repro.core.registry`): the
``algorithm`` argument names a registered :class:`InsertionAlgorithm`
strategy, and the ``backend`` argument names a registered candidate
store (:mod:`repro.core.stores`) — or ``"auto"``, the default, which
resolves to the fastest backend the environment supports.  Third-party
algorithms and backends therefore plug in without touching this module.

The first positional argument may be a plain
:class:`~repro.tree.routing_tree.RoutingTree` *or* a
:class:`~repro.core.schedule.CompiledNet` from
:func:`~repro.core.schedule.compile_net`: compile a net once, then
re-solve it across algorithms, drivers and backends without paying for
validation, plan building or the tree walk again.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.core.registry import algorithm_names, get_algorithm
from repro.core.schedule import CompiledNet
from repro.core.solution import BufferingResult
from repro.core.stores import resolve_backend
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


def __getattr__(name: str) -> Tuple[str, ...]:
    # Kept for backward compatibility: the historical constant tuple is
    # now a live view of the registry.
    if name == "ALGORITHMS":
        return algorithm_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def insert_buffers(
    tree: Union[RoutingTree, CompiledNet],
    library: BufferLibrary,
    algorithm: str = "fast",
    driver: Optional[Driver] = None,
    backend: str = "auto",
    **options,
) -> BufferingResult:
    """Maximize slack by optimal buffer insertion.

    This is the public entry point.  ``algorithm`` selects a registered
    strategy; the built-ins are:

    * ``"fast"`` (default) — the paper's O(b n^2) algorithm.  Accepts
      ``destructive_pruning=True`` to run the literal DATE-2005
      pseudocode (see :mod:`repro.core.fast`).
    * ``"lillis"`` — the O(b^2 n^2) baseline.
    * ``"van_ginneken"`` — the classic algorithm; requires ``b == 1``.

    All algorithms return the same optimal slack; they differ in running
    time only (that difference being the paper's entire point).
    ``backend`` selects how candidate lists are stored and operated on:
    ``"auto"`` (the default: structure-of-arrays when NumPy is
    available, object lists otherwise), ``"object"`` (Candidate
    objects) or ``"soa"`` (structure-of-arrays over NumPy); all
    produce bit-identical results.

    Args:
        tree: A routing tree, or a pre-compiled net from
            :func:`repro.core.schedule.compile_net` (fastest for repeat
            solves; plain trees are also compiled and cached behind the
            scenes after their first solve).
        library: The buffer library.
        algorithm: A registered algorithm name
            (:func:`repro.core.registry.algorithm_names`).
        driver: Source driver; defaults to ``tree.driver``; ``None``
            means an ideal driver.
        backend: ``"auto"`` or a registered candidate-store backend name
            (:func:`repro.core.stores.store_backend_names`).
        **options: Algorithm-specific flags.

    Returns:
        A :class:`~repro.core.solution.BufferingResult`.

    Raises:
        AlgorithmError: Unknown algorithm or backend name, invalid
            options, or a compiled net whose library does not match.
    """
    strategy = get_algorithm(algorithm)
    strategy.validate_options(options)
    return strategy.run(
        tree, library, driver=driver, backend=resolve_backend(backend), **options
    )
