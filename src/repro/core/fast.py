"""The paper's O(b n^2) algorithm (Li & Shi, DATE 2005).

Identical dynamic program to the baseline; the add-buffer operation is
replaced by the convex-pruning + monotone-hull-walk step of Section 3,
reducing it from ``O(b k)`` to ``O(k + b)`` per buffer position.

Two pruning modes are offered (see DESIGN.md for the analysis):

* ``destructive_pruning=False`` (default) — the hull is computed as a
  linear scan per buffer position and the full nonredundant list is
  retained.  Provably optimal on every tree; same asymptotics.
* ``destructive_pruning=True`` — the paper's literal pseudocode: the
  candidate list itself is replaced by its hull inside ``AddBuffer``.
  Optimal on 2-pin (path) nets; on multi-pin trees a branch merge can
  promote an interior point onto the merged hull, so this mode is a
  (usually exact) heuristic that can only under-report slack.
"""

from __future__ import annotations

from typing import Optional

from repro.core.buffer_ops import BufferPlan, generate_fast, insert_candidates
from repro.core.candidate import CandidateList
from repro.core.dp import run_dynamic_program
from repro.core.pruning import convex_prune
from repro.core.registry import InsertionAlgorithm, register_algorithm
from repro.core.solution import BufferingResult
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


def _add_buffer_keep_all(candidates: CandidateList, plan: BufferPlan) -> CandidateList:
    hull = convex_prune(candidates)
    new_candidates = generate_fast(candidates, plan, hull=hull)
    return insert_candidates(candidates, new_candidates)


def _add_buffer_destructive(
    candidates: CandidateList, plan: BufferPlan
) -> CandidateList:
    hull = convex_prune(candidates)
    new_candidates = generate_fast(candidates, plan, hull=hull)
    # The paper's Convexpruning frees interior candidates: only the hull
    # survives into the ongoing list.
    return insert_candidates(hull, new_candidates)


def _store_add_buffer_keep_all(store, plan: BufferPlan):
    # One fused kernel per position: hull, broadcast walk, beta prune,
    # sorted insertion (kernel backends override apply_buffer; others
    # inherit the composed default from the store protocol).
    return store.apply_buffer(plan, generator="hull", destructive=False)


def _store_add_buffer_destructive(store, plan: BufferPlan):
    return store.apply_buffer(plan, generator="hull", destructive=True)


@register_algorithm("fast")
class FastAlgorithm(InsertionAlgorithm):
    """Convex pruning + monotone hull walk: the paper's contribution."""

    complexity = "O(b n^2)"
    summary = (
        "Li & Shi (DATE 2005): convex-pruned hull walk makes the "
        "add-buffer step O(k + b)"
    )
    options = frozenset({"destructive_pruning"})

    def add_buffer_op(
        self,
        backend: str,
        library: BufferLibrary,
        destructive_pruning: bool = False,
    ):
        if backend == "object":
            return (
                _add_buffer_destructive
                if destructive_pruning
                else _add_buffer_keep_all
            )
        return (
            _store_add_buffer_destructive
            if destructive_pruning
            else _store_add_buffer_keep_all
        )

    def stats_label(self, destructive_pruning: bool = False) -> str:
        return "fast-destructive" if destructive_pruning else "fast"

    def run(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        driver: Optional[Driver] = None,
        backend: str = "object",
        destructive_pruning: bool = False,
    ) -> BufferingResult:
        add_buffer = self.add_buffer_op(
            backend, library, destructive_pruning=destructive_pruning
        )
        return run_dynamic_program(
            tree, library, add_buffer,
            algorithm=self.stats_label(destructive_pruning=destructive_pruning),
            driver=driver, backend=backend,
        )


def insert_buffers_fast(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver] = None,
    destructive_pruning: bool = False,
    backend: str = "object",
) -> BufferingResult:
    """Optimal buffer insertion in O(b n^2) time (the paper's algorithm).

    Args:
        tree: A validated routing tree.
        library: Buffer library of size ``b``.
        driver: Source driver (defaults to ``tree.driver``).
        destructive_pruning: Reproduce the paper's literal pseudocode
            (see module docstring); leave false for guaranteed optimality
            on multi-pin trees.
        backend: Candidate-store backend (``"object"`` or ``"soa"``).

    Returns:
        The optimal :class:`BufferingResult`.
    """
    return FastAlgorithm().run(
        tree, library, driver=driver, backend=backend,
        destructive_pruning=destructive_pruning,
    )
