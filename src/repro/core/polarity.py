"""Polarity-aware buffer insertion: inverters and signal-phase sinks.

Real libraries are dominated by *inverters* (smaller and faster than
back-to-back buffer pairs), and real nets have sinks that want the
inverted phase.  Lillis, Cheng & Lin's formulation handles this by
keeping, per subtree, one nonredundant candidate list for each signal
polarity at the subtree root; the DATE-2005 hull-walk speedup applies to
each list unchanged.  This module implements that extension on top of
the same operation kit as :mod:`repro.core.dp`.

Semantics: ``lists[+1]`` holds candidates that are valid when the signal
*arriving at the subtree root* has the source's polarity; ``lists[-1]``
when it arrives inverted.

* A sink with polarity ``p`` seeds ``lists[p]`` only.
* Wires transform both lists.
* A branch merge combines same-polarity lists (both branches see the
  same arriving signal); a polarity with an empty list in either branch
  stays empty.
* A non-inverting type buffers ``lists[p]`` into ``lists[p]``; an
  inverting type buffers ``lists[p]`` into ``lists[-p]``.
* The driver is non-inverting, so the answer is read from ``lists[+1]``
  at the root; if that list is empty the instance is infeasible (e.g. a
  negative sink with no inverter in the library).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.buffer_ops import (
    BufferPlan,
    generate_fast,
    generate_lillis,
    insert_candidates,
)
from repro.core.candidate import (
    Candidate,
    CandidateList,
    SinkDecision,
    best_candidate_for_driver,
    reconstruct_assignment,
)
from repro.core.merge import merge_branches
from repro.core.solution import BufferingResult, DPStats
from repro.core.wire_ops import add_wire
from repro.errors import AlgorithmError, InfeasibleError
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree

#: Per-subtree state: candidate list per arriving-signal polarity.
PolarityLists = Dict[int, CandidateList]

_POLARITIES = (1, -1)


class _PolarityPlans:
    """Per-node buffer plans split by inverting / non-inverting types."""

    __slots__ = ("non_inverting", "inverting")

    def __init__(self, node_id: int, buffers: List[BufferType]) -> None:
        non_inv = [b for b in buffers if not b.inverting]
        inv = [b for b in buffers if b.inverting]
        self.non_inverting = BufferPlan(node_id, non_inv) if non_inv else None
        self.inverting = BufferPlan(node_id, inv) if inv else None


def _build_polarity_plans(
    tree: RoutingTree, library: BufferLibrary
) -> Dict[int, _PolarityPlans]:
    plans: Dict[int, _PolarityPlans] = {}
    for node in tree.buffer_positions():
        allowed = [
            b for b in library.buffers
            if node.allowed_buffers is None or b.name in node.allowed_buffers
        ]
        if allowed:
            plans[node.node_id] = _PolarityPlans(node.node_id, allowed)
    return plans


def verify_polarities(
    tree: RoutingTree, assignment: Dict[int, BufferType]
) -> bool:
    """Whether ``assignment`` delivers every sink its required polarity.

    The source emits polarity +1; each inverting cell on the path flips
    it.  Independent of the DP — used as the oracle in tests.
    """
    polarity_at: Dict[int, int] = {tree.root_id: 1}
    for node_id in tree.preorder():
        if node_id == tree.root_id:
            continue
        parent = tree.edge_to(node_id).parent
        polarity = polarity_at[parent]
        buffer = assignment.get(node_id)
        if buffer is not None and buffer.inverting:
            polarity = -polarity
        polarity_at[node_id] = polarity
    return all(
        polarity_at[sink.node_id] == sink.polarity for sink in tree.sinks()
    )


class _PolarityOps:
    """The backend-specific operation kit of the polarity DP.

    The DP body below is written against this small vocabulary so it
    runs unchanged over bare candidate lists (the object backend's
    fast path) or any registered :class:`~repro.core.stores.base.StoreFactory`
    backend (e.g. the SoA kernel engine) — the same pluggability the
    main engine gets from :func:`repro.core.dp._resolve_ops`.
    """

    __slots__ = ("sink", "empty", "wire", "merge", "generate", "insert",
                 "best", "release")

    def __init__(self, sink, empty, wire, merge, generate, insert, best,
                 release) -> None:
        self.sink = sink
        self.empty = empty
        self.wire = wire
        self.merge = merge
        self.generate = generate
        self.insert = insert
        self.best = best
        self.release = release


def _object_ops(algorithm: str) -> _PolarityOps:
    generate = generate_fast if algorithm == "fast" else generate_lillis
    return _PolarityOps(
        sink=lambda node_id, q, c: [
            Candidate(q=q, c=c, decision=SinkDecision(node_id))
        ],
        empty=lambda: [],
        wire=add_wire,
        merge=merge_branches,
        generate=generate,
        insert=insert_candidates,
        best=best_candidate_for_driver,
        release=lambda lst: None,
    )


def _store_ops(factory, algorithm: str) -> _PolarityOps:
    factory.begin_solve()
    if algorithm == "fast":
        generate = lambda store, plan: store.generate_hull(plan)  # noqa: E731
    else:
        generate = lambda store, plan: store.generate_scan(plan)  # noqa: E731
    return _PolarityOps(
        sink=factory.sink,
        empty=factory.empty,
        wire=lambda store, r, c: store.add_wire(r, c),
        merge=lambda left, right: left.merge(right),
        generate=generate,
        insert=lambda store, new: store.insert(new),
        best=lambda store, resistance: store.best_for_driver(resistance),
        release=lambda store: store.release(),
    )


def insert_buffers_with_inverters(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[Driver] = None,
    algorithm: str = "fast",
    backend: str = "object",
) -> BufferingResult:
    """Maximum-slack buffering honouring inverters and sink polarities.

    Args:
        tree: A validated routing tree; sinks may carry ``polarity=-1``.
        library: Buffer library; types may carry ``inverting=True``.
        driver: Source driver (defaults to ``tree.driver``); treated as
            non-inverting.
        algorithm: ``"fast"`` (hull walk per polarity list, the
            DATE-2005 operation) or ``"lillis"`` (exhaustive scan) —
            both exact, used to cross-check each other in tests.
        backend: Candidate-store backend name or ``"auto"``
            (:func:`repro.core.stores.resolve_backend`); results are
            bit-identical across backends, like the main engine's.

    Returns:
        The optimal :class:`BufferingResult`; its assignment is
        polarity-correct by construction (re-checkable with
        :func:`verify_polarities`).

    Raises:
        InfeasibleError: If no buffering can deliver every sink its
            required polarity (e.g. negative sinks, no inverters).
        AlgorithmError: Unknown ``algorithm``/``backend`` or invalid
            tree.
    """
    from repro.core.stores import get_store_backend, resolve_backend

    if algorithm not in ("fast", "lillis"):
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; choose 'fast' or 'lillis'"
        )
    backend = resolve_backend(backend)
    if backend == "object":
        ops = _object_ops(algorithm)
    else:
        ops = _store_ops(get_store_backend(backend)(), algorithm)

    try:
        tree.validate()
    except Exception as exc:
        raise AlgorithmError(f"invalid routing tree: {exc}") from exc

    driver = driver if driver is not None else tree.driver
    plans = _build_polarity_plans(tree, library)
    started = time.perf_counter()

    states: Dict[int, PolarityLists] = {}
    peak_length = 0
    candidates_generated = 0

    for node_id in tree.postorder():
        node = tree.node(node_id)
        if node.is_sink:
            lists: PolarityLists = {1: ops.empty(), -1: ops.empty()}
            lists[node.polarity] = ops.sink(
                node_id, node.required_arrival, node.capacitance
            )
            candidates_generated += 1
        else:
            branch_states: List[PolarityLists] = []
            for child in tree.children_of(node_id):
                edge = tree.edge_to(child)
                child_lists = states.pop(child)
                wired: PolarityLists = {}
                for p in _POLARITIES:
                    out = ops.wire(child_lists[p], edge.resistance,
                                   edge.capacitance)
                    if out is not child_lists[p]:
                        ops.release(child_lists[p])
                    wired[p] = out
                branch_states.append(wired)
            lists = branch_states[0]
            for other in branch_states[1:]:
                combined: PolarityLists = {}
                for p in _POLARITIES:
                    if len(lists[p]) and len(other[p]):
                        merged = ops.merge(lists[p], other[p])
                        candidates_generated += len(merged)
                        if merged is not lists[p]:
                            ops.release(lists[p])
                        if merged is not other[p]:
                            ops.release(other[p])
                        combined[p] = merged
                    else:
                        # One branch cannot accept this arriving
                        # polarity: nor can the merged subtree.
                        ops.release(lists[p])
                        ops.release(other[p])
                        combined[p] = ops.empty()
                lists = combined

            plan = plans.get(node_id)
            if plan is not None:
                new_by_polarity: Dict[int, list] = {1: [], -1: []}
                for p in _POLARITIES:
                    if not len(lists[p]):
                        continue
                    if plan.non_inverting is not None:
                        new_by_polarity[p].append(
                            ops.generate(lists[p], plan.non_inverting)
                        )
                    if plan.inverting is not None:
                        new_by_polarity[-p].append(
                            ops.generate(lists[p], plan.inverting)
                        )
                for p in _POLARITIES:
                    for new_candidates in new_by_polarity[p]:
                        if len(new_candidates):
                            count = len(new_candidates)
                            out = ops.insert(lists[p], new_candidates)
                            candidates_generated += count
                            if out is not lists[p]:
                                ops.release(lists[p])
                            if out is not new_candidates:
                                ops.release(new_candidates)
                            lists[p] = out
                        elif new_candidates is not lists[p]:
                            ops.release(new_candidates)

        for p in _POLARITIES:
            if len(lists[p]) > peak_length:
                peak_length = len(lists[p])
        states[node_id] = lists

    root_positive = states[tree.root_id][1]
    if not len(root_positive):
        negative_sinks = [s.node_id for s in tree.sinks() if s.polarity == -1]
        raise InfeasibleError(
            "no polarity-correct buffering exists: sinks "
            f"{negative_sinks} need the inverted signal and the library "
            "offers no way to deliver it"
        )

    resistance = driver.resistance if driver is not None else 0.0
    best = ops.best(root_positive, resistance)
    assert best is not None
    slack = best.q - (driver.delay(best.c) if driver is not None else 0.0)

    stats = DPStats(
        algorithm=f"{algorithm}-inverters",
        num_buffer_positions=tree.num_buffer_positions,
        library_size=library.size,
        root_candidates=len(root_positive),
        peak_list_length=peak_length,
        candidates_generated=candidates_generated,
        runtime_seconds=time.perf_counter() - started,
        backend=backend,
    )
    return BufferingResult(
        slack=slack,
        assignment=reconstruct_assignment(best.decision),
        driver_load=best.c,
        stats=stats,
    )
