"""Pluggable insertion-algorithm registry.

The dispatch layer between :func:`repro.core.api.insert_buffers` and the
algorithms.  An algorithm is a subclass of :class:`InsertionAlgorithm`
registered under a name::

    from repro.core.registry import InsertionAlgorithm, register_algorithm

    @register_algorithm("mine")
    class MyAlgorithm(InsertionAlgorithm):
        complexity = "O(?)"
        summary = "my experimental strategy"

        def run(self, tree, library, driver=None, backend="object", **options):
            ...return a BufferingResult...

    insert_buffers(tree, library, algorithm="mine")

Third-party algorithms therefore plug in without touching core; the CLI
and the experiment harness enumerate :func:`algorithm_names` instead of
hardcoding tuples.  The built-in strategies (``fast``, ``lillis``,
``van_ginneken``) live in their own modules and are imported lazily on
first lookup, keeping this module import-cycle-free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, FrozenSet, Optional, Tuple, Type

from repro.core.solution import BufferingResult
from repro.errors import AlgorithmError
from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


class InsertionAlgorithm(ABC):
    """A buffer-insertion strategy selectable by name.

    Class attributes (documentation and validation metadata):

    Attributes:
        name: Registry name; set by :func:`register_algorithm`.
        complexity: Asymptotic running time, e.g. ``"O(b n^2)"``.
        summary: One-line description for ``--help`` and the README.
        options: Keyword options :meth:`run` accepts beyond ``driver``
            and ``backend``; anything else is rejected by the dispatcher
            with an :class:`AlgorithmError`.
    """

    name: str = ""
    complexity: str = ""
    summary: str = ""
    options: FrozenSet[str] = frozenset()

    @abstractmethod
    def run(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        driver: Optional[Driver] = None,
        backend: str = "object",
        **options,
    ) -> BufferingResult:
        """Solve one instance and return the optimal buffering."""

    def add_buffer_op(
        self, backend: str, library: BufferLibrary, **options
    ) -> Callable:
        """The algorithm's add-buffer operation as a bare callable.

        This is what makes a strategy *incrementally re-solvable*: the
        engine of :mod:`repro.incremental` drives the shared dynamic
        program itself (splicing memoized subtree frontiers into the
        instruction stream) and only needs the one operation the
        algorithms differ in.  The returned callable follows the
        :data:`repro.core.dp.AddBufferOp` contract for ``backend``.
        The built-ins all implement this; strategies that don't simply
        cannot be used in an :class:`~repro.incremental.engine.IncrementalSolver`.

        Raises:
            AlgorithmError: The strategy does not expose its add-buffer
                operation (default), or ``library``/``options`` are
                invalid for it.
        """
        raise AlgorithmError(
            f"algorithm {self.name!r} does not expose add_buffer_op and "
            "therefore cannot be re-solved incrementally"
        )

    def stats_label(self, **options) -> str:
        """The ``DPStats.algorithm`` label a run with ``options`` reports."""
        return self.name

    def validate_options(self, options: Dict[str, object]) -> None:
        """Reject unknown keyword options with the canonical message."""
        unknown = set(options) - set(self.options)
        if unknown:
            raise AlgorithmError(
                f"unknown options for {self.name!r}: {sorted(unknown)}"
            )


_REGISTRY: Dict[str, InsertionAlgorithm] = {}
_BUILTINS_LOADED = False


def register_algorithm(
    name: str,
) -> Callable[[Type[InsertionAlgorithm]], Type[InsertionAlgorithm]]:
    """Class decorator registering an :class:`InsertionAlgorithm`.

    The class is instantiated once at registration (strategies are
    stateless); re-registering the *same* class is a no-op so modules
    survive re-import, but claiming an already-taken name with a
    different class raises.

    Raises:
        AlgorithmError: ``name`` is registered to a different class.
    """

    def decorator(cls: Type[InsertionAlgorithm]) -> Type[InsertionAlgorithm]:
        existing = _REGISTRY.get(name)
        if existing is not None and type(existing) is not cls:
            raise AlgorithmError(
                f"algorithm {name!r} is already registered to "
                f"{type(existing).__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls()
        return cls

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (primarily for tests and plugins)."""
    _REGISTRY.pop(name, None)


def _ensure_builtins_loaded() -> None:
    """Import the built-in strategy modules (registration side effect)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.core.fast  # noqa: F401
    import repro.core.lillis  # noqa: F401
    import repro.core.van_ginneken  # noqa: F401


def get_algorithm(name: str) -> InsertionAlgorithm:
    """The registered strategy instance for ``name``.

    Raises:
        AlgorithmError: Unknown algorithm name.
    """
    _ensure_builtins_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; choose one of {algorithm_names()}"
        ) from None


def algorithm_names() -> Tuple[str, ...]:
    """Registered algorithm names, in registration order."""
    _ensure_builtins_loaded()
    return tuple(_REGISTRY)


def available_algorithms() -> Dict[str, InsertionAlgorithm]:
    """Name-to-strategy mapping (a copy; mutating it has no effect)."""
    _ensure_builtins_loaded()
    return dict(_REGISTRY)
