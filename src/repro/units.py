"""Unit helpers.

The library stores every physical quantity in SI units:

* resistance in ohms,
* capacitance in farads,
* time in seconds,
* distance in micrometres (the customary unit for on-chip wire lengths;
  per-unit-length parasitics are therefore "per micrometre").

The helpers below exist so that code reads in the units the paper quotes
(femtofarads, picoseconds, ohms per micrometre) while the arithmetic stays
in SI.  They are trivial multiplications on purpose — no unit *objects* are
introduced, because candidate-list inner loops must stay plain ``float``.
"""

from __future__ import annotations

#: One femtofarad in farads.
FF = 1e-15

#: One picofarad in farads.
PF = 1e-12

#: One picosecond in seconds.
PS = 1e-12

#: One nanosecond in seconds.
NS = 1e-9

#: One kiloohm in ohms.
KOHM = 1e3


def fF(value: float) -> float:
    """Convert a value in femtofarads to farads."""
    return value * FF


def pF(value: float) -> float:
    """Convert a value in picofarads to farads."""
    return value * PF


def ps(value: float) -> float:
    """Convert a value in picoseconds to seconds."""
    return value * PS


def ns(value: float) -> float:
    """Convert a value in nanoseconds to seconds."""
    return value * NS


def ohm(value: float) -> float:
    """Identity helper for readability: a value already in ohms."""
    return value


def kohm(value: float) -> float:
    """Convert a value in kiloohms to ohms."""
    return value * KOHM


def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds (for reporting)."""
    return seconds / PS


def to_fF(farads: float) -> float:
    """Convert farads to femtofarads (for reporting)."""
    return farads / FF


# TSMC 180 nm interconnect parameters quoted in Section 4 of the paper.
#: Wire resistance, ohms per micrometre.
TSMC180_WIRE_RES_PER_UM = 0.076
#: Wire capacitance, farads per micrometre.
TSMC180_WIRE_CAP_PER_UM = 0.118 * FF
