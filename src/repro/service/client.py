"""A small stdlib HTTP client for the ``repro serve`` endpoints.

:class:`ServiceClient` wraps :mod:`http.client` — one connection per
request, matching the server's ``Connection: close`` discipline — and
speaks the same JSON bodies the server parses.  It is what the
end-to-end tests and ``examples/serving.py`` use; any HTTP client works
just as well (the payloads are plain ``tree_to_dict`` /
``library_to_dict`` JSON).

    from repro.service import ServiceClient

    client = ServiceClient(port=8080)
    answer = client.solve(tree, library, algorithm="fast")
    print(answer["slack_seconds"], answer["cached"])
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ServiceError
from repro.library.library import BufferLibrary
from repro.tree.io import library_to_dict, tree_to_dict
from repro.tree.routing_tree import RoutingTree

_TreeSpec = Union[RoutingTree, Dict[str, Any]]
_LibrarySpec = Union[BufferLibrary, Dict[str, Any]]


def _net_spec(tree: _TreeSpec) -> Dict[str, Any]:
    return tree_to_dict(tree) if isinstance(tree, RoutingTree) else tree


def _library_spec(library: _LibrarySpec) -> Dict[str, Any]:
    if isinstance(library, BufferLibrary):
        return library_to_dict(library)
    return library


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.BufferServer`.

    Args:
        host: Server host.
        port: Server port.
        timeout: Socket timeout in seconds per request.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request_text(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> tuple:
        """One request; returns ``(status, raw response text)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {} if payload is None else {
                "Content-Type": "application/json"
            }
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        except OSError as exc:
            raise ServiceError(
                f"cannot reach repro server at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()
        return response.status, text

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, text = self._request_text(method, path, body)
        try:
            answer = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"{method} {path}: server returned non-JSON "
                f"({status}): {text[:200]!r}"
            ) from exc
        if status != 200:
            detail = answer.get("error", text) if isinstance(answer, dict) else text
            raise ServiceError(
                f"{method} {path} failed ({status}): {detail}"
            )
        return answer

    def solve(
        self,
        tree: _TreeSpec,
        library: _LibrarySpec,
        algorithm: str = "fast",
        backend: str = "auto",
        options: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        trace: bool = False,
    ) -> Dict[str, Any]:
        """``POST /solve`` one net; returns the answer object.

        The answer carries ``slack_seconds``, ``assignment`` (node id →
        buffer name, in *this* tree's ids), ``cached``, ``key`` and the
        original solve's ``stats``.  ``deadline_ms`` bounds the
        server-side solve; exceeding it fails with a 504.
        ``trace=True`` asks the server for a structured trace of this
        request: the answer gains a ``"trace"`` key holding a Chrome
        ``trace_event`` document (open it at https://ui.perfetto.dev).

        Raises:
            ServiceError: Transport failure or any non-200 response
                (the server's ``error`` detail is included).
        """
        body = {
            "net": _net_spec(tree),
            "library": _library_spec(library),
            "algorithm": algorithm,
            "backend": backend,
            "options": options or {},
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        path = "/solve?trace=1" if trace else "/solve"
        return self._request("POST", path, body)

    def solve_batch(
        self,
        trees: Sequence[_TreeSpec],
        library: _LibrarySpec,
        algorithm: str = "fast",
        backend: str = "auto",
        options: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """``POST /batch`` many nets sharing one library; answers in order."""
        body = {
            "nets": [_net_spec(tree) for tree in trees],
            "library": _library_spec(library),
            "algorithm": algorithm,
            "backend": backend,
            "options": options or {},
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        answer = self._request("POST", "/batch", body)
        return answer["results"]

    def healthz(self, deep: bool = False) -> Dict[str, Any]:
        """``GET /healthz``: liveness, version, uptime, worker count.

        ``deep=True`` additionally reports worker liveness, breaker
        states, admission pressure and cache pressure — and, like the
        shallow probe, fails with a 503 while the server is draining.
        """
        return self._request(
            "GET", "/healthz?deep=1" if deep else "/healthz"
        )

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``: request/cache counters and pool inventory."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """``GET /metrics``: Prometheus text exposition, verbatim.

        The one endpoint that answers ``text/plain`` instead of JSON —
        the raw scrape body is returned as a string.
        """
        status, text = self._request_text("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"GET /metrics failed ({status}): {text[:200]}")
        return text

    def create_session(
        self,
        tree: _TreeSpec,
        library: _LibrarySpec,
        algorithm: str = "fast",
        backend: str = "auto",
        options: Optional[Dict[str, Any]] = None,
    ) -> "ServiceSession":
        """``POST /session``: open a stateful incremental ECO session.

        The server keeps the net, its compiled schedule and its
        memoized subtree frontiers resident; use the returned
        :class:`ServiceSession` to apply edits and re-solve at
        dirty-path cost.  Sessions expire after the server's idle TTL
        and are evicted least recently used — callers should
        :meth:`~ServiceSession.delete` when done.
        """
        answer = self._request("POST", "/session", {
            "net": _net_spec(tree),
            "library": _library_spec(library),
            "algorithm": algorithm,
            "backend": backend,
            "options": options or {},
        })
        return ServiceSession(self, answer)


def _edit_spec(edit: Any) -> Dict[str, Any]:
    if isinstance(edit, dict):
        return edit
    # Typed edits from repro.incremental.edits serialize themselves.
    from repro.incremental.edits import edit_to_dict

    return edit_to_dict(edit)


class ServiceSession:
    """A handle to one server-side incremental session.

    Obtained from :meth:`ServiceClient.create_session`.  Edits may be
    passed as plain JSON dicts (``{"op": "set_sink_rat", ...}``) or as
    typed :class:`repro.incremental.edits.Edit` objects; node ids are
    the *serialized* ids of the net the session was created from
    (``created`` labels returned by :meth:`edit` extend that
    namespace).

    Attributes:
        session_id: The server-assigned session id.
        info: The creation answer (``num_nodes``, ``algorithm``, ...).
    """

    def __init__(self, client: ServiceClient, info: Dict[str, Any]) -> None:
        self._client = client
        self.info = info
        self.session_id: str = info["session"]

    def edit(self, *edits: Any) -> Dict[str, Any]:
        """``POST /session/{id}/edit``: apply one or more edits.

        Returns ``{"applied", "created", "removed", "num_nodes"}``; no
        solve happens until :meth:`resolve`.
        """
        return self._client._request(
            "POST", f"/session/{self.session_id}/edit",
            {"edits": [_edit_spec(edit) for edit in edits]},
        )

    def resolve(self) -> Dict[str, Any]:
        """``POST /session/{id}/resolve``: incremental re-solve.

        The answer has the ``/solve`` shape plus an ``incremental``
        block (``executed_fraction``, ``spliced_subtrees``, ...).
        """
        return self._client._request(
            "POST", f"/session/{self.session_id}/resolve"
        )

    def delete(self) -> Dict[str, Any]:
        """``DELETE /session/{id}``: close the session server-side."""
        return self._client._request(
            "DELETE", f"/session/{self.session_id}"
        )

    def __repr__(self) -> str:
        return f"ServiceSession({self.session_id!r})"
