"""Serving layer: canonical request hashing, result caching, HTTP server.

The solver core (:mod:`repro.core`) is a stateless compute kernel: every
call to :func:`~repro.core.api.insert_buffers` pays the full solve cost,
even for a net it has seen a thousand times.  This package adds the
stateful front end a traffic-serving deployment needs:

* :mod:`repro.service.canon` — canonical serialization and a stable
  content hash of ``(net, library, algorithm, backend, options)``, so
  structurally identical requests hit the same cache entry regardless of
  node naming, node numbering or child ordering;
* :mod:`repro.service.cache` — a thread-safe LRU + TTL result cache with
  hit/miss/eviction counters, storing compact solution payloads keyed by
  canonical hash;
* :mod:`repro.service.server` — an asyncio HTTP JSON server
  (``repro serve``) with ``/solve``, ``/batch``, stateful ``/session``
  endpoints (incremental ECO re-solve, backed by
  :mod:`repro.incremental`), ``/healthz`` and ``/stats``; cache-miss
  work shards across a persistent :class:`~repro.core.batch.SolverPool`;
* :mod:`repro.service.client` — a small stdlib client
  (:class:`ServiceClient` / :class:`ServiceSession`) used by the tests,
  ``examples/serving.py`` and ``examples/incremental_eco.py``.

Everything here is standard library only (the compute kernel underneath
may still use NumPy through the ``soa`` backend).
"""

from repro.service.cache import CacheStats, ResultCache, SolutionPayload
from repro.service.canon import (
    CanonicalNet,
    canonicalize,
    library_key,
    options_key,
    request_key,
)
from repro.service.client import ServiceClient, ServiceSession
from repro.service.server import BufferServer, serve

__all__ = [
    "CanonicalNet",
    "canonicalize",
    "library_key",
    "options_key",
    "request_key",
    "CacheStats",
    "ResultCache",
    "SolutionPayload",
    "ServiceClient",
    "ServiceSession",
    "BufferServer",
    "serve",
]
