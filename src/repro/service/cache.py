"""Thread-safe LRU + TTL result cache and compact solution payloads.

The serving layer's cache maps a canonical request hash
(:func:`repro.service.canon.request_key`) to a
:class:`SolutionPayload` — a flat, pickle-friendly record in the same
spirit as :class:`~repro.core.schedule.CompiledNet`'s wire encoding: no
tree objects, no :class:`~repro.library.buffer_type.BufferType`
instances, just scalars, names and canonical node indices.  A payload is
therefore small to keep resident in memory, cheap to copy, and — because
its assignment is expressed in *canonical indices*, not node ids — valid
for every tree in the request's structural equivalence class, not only
the instance that was solved.

:class:`ResultCache` is deliberately generic (any hashable key, any
value): the server uses a second instance to keep hot
:class:`~repro.core.schedule.CompiledNet` payloads resident so repeat
structures skip recompilation too.

Eviction is twofold and separately counted:

* **LRU** — ``maxsize`` caps the entry count; inserting into a full
  cache evicts the least recently *used* entry (``stats().evictions``);
* **TTL** — entries older than ``ttl`` seconds are dropped on access or
  insert (``stats().expirations``); ``ttl=None`` disables expiry.

All operations hold one internal lock, so the counters are exact even
under concurrent access (asserted by ``tests/test_cache.py`` with a
thread pool hammering a tiny cache).
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.core.solution import BufferingResult, DPStats
from repro.library.library import BufferLibrary
from repro.service.canon import CanonicalNet


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of one cache's counters.

    Attributes:
        hits: ``get`` calls that returned a live entry.
        misses: ``get`` calls that found nothing (or only an expired
            entry).
        evictions: Entries dropped by the LRU size bound.
        expirations: Entries dropped because their TTL ran out.
        size: Current number of live entries.
        maxsize: The LRU capacity.
        ttl: The time-to-live in seconds, or ``None`` for no expiry.
    """

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    maxsize: int
    ttl: Optional[float]

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when nothing was looked up yet."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``/stats`` endpoint's ``cache`` block)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "size": self.size,
            "maxsize": self.maxsize,
            "ttl_seconds": self.ttl,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """A thread-safe LRU + TTL mapping with exact hit/miss counters.

    Args:
        maxsize: Maximum number of entries; inserting beyond it evicts
            the least recently used entry.  Must be >= 1.
        ttl: Seconds an entry stays servable, or ``None`` (default) to
            keep entries until evicted.
        clock: Monotonic time source; injectable so the TTL tests don't
            sleep.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be > 0 or None, got {ttl}")
        self._maxsize = maxsize
        self._ttl = ttl
        self._clock = clock
        self._lock = Lock()
        self._entries: "OrderedDict[Hashable, Tuple[float, object]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def get(self, key: Hashable) -> Optional[object]:
        """The live value under ``key``, or ``None`` (counted either way)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry[0]):
                del self._entries[key]
                self._expirations += 1
                entry = None
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[1]

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) ``key``, evicting LRU/expired entries."""
        with self._lock:
            now = self._clock()
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (now, value)
            self._purge_expired(now)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def _expired(self, stamp: float) -> bool:
        return self._ttl is not None and self._clock() - stamp > self._ttl

    def _purge_expired(self, now: float) -> None:
        if self._ttl is None:
            return
        # Entries are stamped at insert and ordered by recency of *use*,
        # so expired ones can sit anywhere: scan, don't pop-from-front.
        dead = [
            key
            for key, (stamp, _) in self._entries.items()
            if now - stamp > self._ttl
        ]
        for key in dead:
            del self._entries[key]
            self._expirations += 1

    def clear(self) -> None:
        """Drop every entry (counters keep their totals)."""
        with self._lock:
            self._entries.clear()

    def discard(self, key: Hashable) -> bool:
        """Remove ``key`` if present (non-counting); True when removed.

        Explicit deletion, not eviction or expiry: the session store
        uses this for ``DELETE /session/{id}``.
        """
        with self._lock:
            return self._entries.pop(key, None) is not None

    def values(self) -> Tuple[object, ...]:
        """A snapshot of the live values, LRU-first (non-counting)."""
        with self._lock:
            return tuple(
                value
                for stamp, value in self._entries.values()
                if not self._expired(stamp)
            )

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                maxsize=self._maxsize,
                ttl=self._ttl,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Non-counting, non-LRU-touching membership probe (tests)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry[0])


@dataclass(frozen=True)
class SolutionPayload:
    """One cached solution, in canonical coordinates.

    Attributes:
        slack: Optimal slack at the driver output, seconds.
        driver_load: Load the winning candidate presents, farads.
        assignment: ``(canonical node index, buffer name)`` pairs —
            node-id-free, so the payload serves any structurally
            identical tree (see :mod:`repro.service.canon`).
        algorithm / backend: How the original solve ran.
        num_buffer_positions / library_size / root_candidates /
        peak_list_length / candidates_generated / runtime_seconds:
            The original solve's :class:`~repro.core.solution.DPStats`.
    """

    slack: float
    driver_load: float
    assignment: Tuple[Tuple[int, str], ...]
    algorithm: str
    backend: str
    num_buffer_positions: int
    library_size: int
    root_candidates: int
    peak_list_length: int
    candidates_generated: int
    runtime_seconds: float

    @classmethod
    def encode(
        cls, result: BufferingResult, canon: CanonicalNet
    ) -> "SolutionPayload":
        """Compress ``result`` using the canon of the tree it solves."""
        return cls(
            slack=result.slack,
            driver_load=result.driver_load,
            assignment=tuple(
                sorted(
                    (canon.index_of_node[node_id], buffer.name)
                    for node_id, buffer in result.assignment.items()
                )
            ),
            algorithm=result.stats.algorithm,
            backend=result.stats.backend,
            num_buffer_positions=result.stats.num_buffer_positions,
            library_size=result.stats.library_size,
            root_candidates=result.stats.root_candidates,
            peak_list_length=result.stats.peak_list_length,
            candidates_generated=result.stats.candidates_generated,
            runtime_seconds=result.stats.runtime_seconds,
        )

    def digest(self) -> str:
        """Content hash over every field (integrity check at cache reads).

        The server stores ``(payload, digest)`` pairs and re-derives the
        digest on every hit: a stored payload that was corrupted in
        place (a real memory fault, or the ``cache.payload`` injection
        site in tests) no longer matches and is treated as a miss
        instead of being served.  Frozen dataclass ``repr`` is
        deterministic field order, so the hash is stable across
        processes.
        """
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()

    def materialize(
        self, canon: CanonicalNet, library: BufferLibrary
    ) -> BufferingResult:
        """Rebuild a full :class:`BufferingResult` for ``canon``'s tree.

        ``canon`` may belong to a *different* tree than the one encoded
        from, as long as both share the same canonical key: the indices
        translate the assignment onto that tree's node ids.
        """
        return BufferingResult(
            slack=self.slack,
            assignment={
                canon.node_of_index[index]: library.get(name)
                for index, name in self.assignment
            },
            driver_load=self.driver_load,
            stats=DPStats(
                algorithm=self.algorithm,
                num_buffer_positions=self.num_buffer_positions,
                library_size=self.library_size,
                root_candidates=self.root_candidates,
                peak_list_length=self.peak_list_length,
                candidates_generated=self.candidates_generated,
                runtime_seconds=self.runtime_seconds,
                backend=self.backend,
            ),
        )
