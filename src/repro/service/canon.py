"""Canonical serialization and stable content hashing of solve requests.

Two requests that describe the *same electrical problem* must map to the
same cache key, even when the JSON they arrived in differs cosmetically:
node names, node ids and the order in which children were attached are
all solver-irrelevant.  Conversely, any change that can change the
optimal buffering — sink loads, required arrivals, wire parasitics,
buffer-position flags, ``allowed_buffers`` sets, sink polarities, the
driver, the library, the algorithm, the backend, the options — must
produce a different key.

:func:`canonicalize` computes a Merkle-style digest bottom-up: every
vertex hashes its own electrical payload together with the *sorted*
digests of its children (each prefixed with the connecting edge's
``R``/``C``), so the digest is invariant under child reordering and never
sees a name or an id.  Floats enter the hash via :meth:`float.hex`, so
two parasitics differing in the last ulp hash differently — the cache
only ever equates requests whose solves are numerically interchangeable.

Because a cached solution stores node *ids*, equating renamed trees
requires a translation step: :func:`canonicalize` therefore also assigns
every node a **canonical index** — its position in a pre-order walk that
visits children in sorted-digest order.  Structurally identical trees
get identical index assignments, so an assignment expressed in canonical
indices (see :class:`~repro.service.cache.SolutionPayload`) can be
encoded from the tree that was solved and materialized onto any other
tree with the same digest.  (When two sibling subtrees are themselves
identical, the sort order between them is arbitrary — and harmless: the
subtrees are interchangeable, so either mapping yields a valid optimal
assignment.)

Excluded from the hash by design: node names, node ids, ``position``
coordinates, edge ``length`` and the driver's ``name`` — the algorithms
never read them (see :mod:`repro.tree.node`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.library.library import BufferLibrary
from repro.tree.node import Driver
from repro.tree.routing_tree import RoutingTree


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _f(value: float) -> str:
    """Exact, repr-independent float encoding for hashing."""
    return float(value).hex()


@dataclass(frozen=True)
class CanonicalNet:
    """The canonical identity of one routing tree.

    Attributes:
        key: Hex digest of the canonical structure; equal for trees that
            differ only in names, ids, child order, positions or edge
            lengths.
        node_of_index: ``node_of_index[i]`` is the tree's node id at
            canonical index ``i`` (pre-order over sorted-digest children).
        index_of_node: The inverse mapping, ``{node_id: canonical index}``.
        subtree_keys: ``subtree_keys[i]`` is the Merkle digest of the
            subtree rooted at canonical index ``i`` (so
            ``subtree_keys[0] == key``).  Two equal entries — within one
            net or across nets — denote structurally and electrically
            interchangeable subtrees; the incremental engine
            (:mod:`repro.incremental`) keys its frontier memo on these.
    """

    key: str
    node_of_index: Tuple[int, ...]
    index_of_node: Dict[int, int]
    subtree_keys: Tuple[str, ...] = ()

    @property
    def num_nodes(self) -> int:
        return len(self.node_of_index)

    def subtree_key(self, node_id: int) -> str:
        """The Merkle digest of the subtree rooted at ``node_id``."""
        return self.subtree_keys[self.index_of_node[node_id]]


def _node_payload(tree: RoutingTree, node_id: int) -> str:
    node = tree.node(node_id)
    if node.is_sink:
        return (
            f"S(c={_f(node.capacitance)},q={_f(node.required_arrival)},"
            f"p={node.polarity:+d})"
        )
    if node.is_source:
        return "N()"
    allowed = node.allowed_buffers
    allowed_text = "*" if allowed is None else ",".join(sorted(allowed))
    return f"I(bp={int(node.is_buffer_position)},f=[{allowed_text}])"


def node_payload(tree: RoutingTree, node_id: int) -> str:
    """The canonical payload text of one vertex (public for the
    incremental engine, which recomputes digests along dirty paths)."""
    return _node_payload(tree, node_id)


def edge_entry(resistance: float, capacitance: float, digest: str) -> str:
    """The edge-prefixed entry string a child contributes to its parent."""
    return f"E(r={_f(resistance)},c={_f(capacitance)})" + digest


def digest_body(body: str) -> str:
    """Hash one canonical body text (the Merkle step, public form)."""
    return _digest(body)


def canonicalize(
    tree: RoutingTree, memo: Optional[Dict[str, str]] = None
) -> CanonicalNet:
    """Compute ``tree``'s canonical digest and node-index assignment.

    Runs in O(n log n) (one post-order pass hashing, one pre-order pass
    numbering; the log factor is the per-vertex child sort).  Both passes
    are iterative — path-shaped nets can be tens of thousands of vertices
    deep.

    Args:
        tree: The routing tree to canonicalize.
        memo: Optional ``{body text: digest}`` table shared across
            calls.  Structurally repeated subtrees produce the same
            body text at every level, so sharing one memo over a batch
            of nets hashes each repeated subtree once per request
            instead of once per occurrence (the server's ``/batch``
            path does this).
    """
    # Bottom-up: digest every subtree.  A child contributes through the
    # edge that reaches it, so moving a subtree to a different wire
    # changes the parent digest even when the subtree itself is equal.
    entry: Dict[int, str] = {}  # node id -> its edge-prefixed entry string
    digest: Dict[int, str] = {}
    children_sorted: Dict[int, List[int]] = {}
    for node_id in tree.postorder():
        kids = sorted(tree.children_of(node_id), key=entry.__getitem__)
        children_sorted[node_id] = kids
        body = _node_payload(tree, node_id)
        if kids:
            body += "[" + "|".join(entry[child] for child in kids) + "]"
        if memo is None:
            digest[node_id] = _digest(body)
        else:
            hashed = memo.get(body)
            if hashed is None:
                hashed = memo[body] = _digest(body)
            digest[node_id] = hashed
        if node_id != tree.root_id:
            edge = tree.edge_to(node_id)
            entry[node_id] = edge_entry(
                edge.resistance, edge.capacitance, digest[node_id]
            )

    # Top-down: number nodes in pre-order, children in sorted order.
    node_of_index: List[int] = []
    stack = [tree.root_id]
    while stack:
        node_id = stack.pop()
        node_of_index.append(node_id)
        stack.extend(reversed(children_sorted[node_id]))

    return CanonicalNet(
        key=digest[tree.root_id],
        node_of_index=tuple(node_of_index),
        index_of_node={
            node_id: index for index, node_id in enumerate(node_of_index)
        },
        subtree_keys=tuple(digest[node_id] for node_id in node_of_index),
    )


def library_key(library: BufferLibrary) -> str:
    """Stable digest of a buffer library's electrical content.

    Buffer *names* are included — solutions and ``allowed_buffers``
    restrictions refer to buffers by name, so renaming a buffer type is a
    semantic change.  Construction order is not: the entries are sorted.
    """
    entries = sorted(
        f"B(n={b.name!r},r={_f(b.driving_resistance)},"
        f"c={_f(b.input_capacitance)},k={_f(b.intrinsic_delay)},"
        f"cost={_f(b.cost)},inv={int(b.inverting)},"
        f"ml={'-' if b.max_load is None else _f(b.max_load)})"
        for b in library.buffers
    )
    return _digest("L[" + "|".join(entries) + "]")


def driver_key(driver: Optional[Driver]) -> str:
    """Stable encoding of a driver (its ``name`` is cosmetic: excluded)."""
    if driver is None:
        return "D(-)"
    return f"D(r={_f(driver.resistance)},k={_f(driver.intrinsic_delay)})"


def options_key(options: Optional[Dict[str, object]]) -> str:
    """Stable encoding of algorithm options (key-order independent)."""
    return json.dumps(options or {}, sort_keys=True, default=repr)


def request_key(
    net: Union[RoutingTree, CanonicalNet],
    library: BufferLibrary,
    algorithm: str = "fast",
    backend: str = "auto",
    options: Optional[Dict[str, object]] = None,
    driver: Optional[Driver] = None,
) -> str:
    """The cache key of one solve request.

    Covers everything that can influence the returned solution: the
    canonical net digest, the library content, the effective driver, the
    algorithm, the *resolved* backend (``"auto"`` hashes as whatever it
    resolves to, so explicit and automatic selection of the same backend
    share an entry; all backends return bit-identical results, but the
    key keeps them distinct entries anyway so ``stats.backend`` in a
    cached payload never lies), and the option flags.

    Args:
        net: The routing tree, or an already-computed
            :class:`CanonicalNet` (cheapest when the caller also needs
            the index mapping; pass ``driver`` explicitly then, since a
            ``CanonicalNet`` deliberately carries no driver).
        library: The buffer library.
        algorithm: Registered algorithm name.
        backend: Candidate-store backend name or ``"auto"``.
        options: Algorithm-specific flags.
        driver: Effective driver override; defaults to the net's own.
    """
    from repro.core.stores import resolve_backend

    if isinstance(net, CanonicalNet):
        net_key = net.key
        effective_driver = driver
    else:
        net_key = canonicalize(net).key
        effective_driver = driver if driver is not None else net.driver

    parts = (
        f"net={net_key}",
        f"lib={library_key(library)}",
        f"drv={driver_key(effective_driver)}",
        f"alg={algorithm}",
        f"backend={resolve_backend(backend)}",
        f"opts={options_key(options)}",
    )
    return _digest(";".join(parts))
