"""Asyncio HTTP JSON server: the ``repro serve`` front end.

A deliberately small HTTP/1.1 implementation over
:func:`asyncio.start_server` — standard library only, one connection per
request (``Connection: close``), JSON in and out.  Endpoints:

========================  ======  ==========================================
path                      method  purpose
========================  ======  ==========================================
``/solve``                POST    buffer one net; cached when an equivalent
                                  request was answered before
``/batch``                POST    buffer many nets sharing one library in
                                  one round trip; misses are sharded across
                                  the worker pool
``/session``              POST    open a stateful ECO session around one net
``/session/{id}/edit``    POST    apply typed edits to a session's net
``/session/{id}/resolve`` POST    incremental re-solve (dirty path only)
``/session/{id}``         DELETE  close a session
``/healthz``              GET     liveness probe: version, uptime, workers;
                                  ``?deep=1`` adds worker liveness, breaker
                                  states and cache pressure; 503 while
                                  draining
``/stats``                GET     request counters, cache counters, pool
                                  inventory, batch-axis grouping,
                                  incremental-engine health, execution-
                                  routing decisions and the resilience
                                  block (retries, trips, sheds, drains,
                                  deadline hits)
``/metrics``              GET     the same counters (plus latency, list-
                                  length and lane histograms and kernel
                                  profiler totals) as Prometheus text
                                  exposition format
========================  ======  ==========================================

**Observability.**  Every request is minted a correlation id at entry
(``request_id``, echoed in error payloads and stamped on spans and JSON
log lines); ``/solve?trace=1`` additionally collects a structured trace
of the request — route, compile, cache lookup, dispatch, sampled kernel
ranges, worker partitions re-parented across the process-pool boundary
— and returns it as a Chrome ``trace_event`` document under ``"trace"``
(open it at https://ui.perfetto.dev).  See ``docs/observability.md``.

**Resilience.**  The server is hardened along five axes (see
``docs/resilience.md``):

* **admission control** — at most ``max_inflight`` solve dispatches run
  concurrently; beyond that requests queue up to ``max_queue_depth``
  and are then *shed* with a 503 + ``Retry-After`` instead of piling
  onto a saturated pool;
* **request validation** — bodies above ``max_request_bytes`` are a
  413, nets with more than ``max_positions`` buffer positions a 422,
  both as clean JSON errors before any solve work starts;
* **deadlines** — a request's ``deadline_ms`` (or the server-wide
  default) becomes a :class:`~repro.resilience.deadline.Deadline`
  covering parse, cache lookup and solve; exceeding it is a 504;
* **graceful drain** — SIGTERM (or :meth:`BufferServer.request_drain`)
  stops admitting new work, finishes every in-flight request, flushes a
  final stats line and only then closes the socket and the pools;
* **cache integrity** — result-cache entries are stored with a content
  digest and re-verified on every hit; a corrupted payload is counted
  (``integrity_failures``) and treated as a miss, never served.

**Sessions.**  A session wraps an
:class:`~repro.incremental.engine.IncrementalSolver`: the server keeps
the net, its compiled schedule and its memoized subtree frontiers
resident between requests, so an edit-resolve round trip pays only the
dirty path instead of a full solve.  Session memory is bounded by a
documented two-part policy: (1) at most ``max_sessions`` sessions live
at once — beyond that the least recently *used* session is evicted, and
sessions idle longer than ``session_ttl`` seconds expire (both via the
same :class:`~repro.service.cache.ResultCache` machinery as results);
(2) all sessions share one byte-bounded
:class:`~repro.incremental.subtree_cache.FrontierCache`
(``frontier_cache_bytes``), so total frontier memory cannot grow with
session count — and structurally repeated subtrees *across* sessions
share entries.  Session solves always run inline in the serving
process (their state is in-process by construction), in the default
executor so the event loop stays responsive; concurrent requests to
one session serialize on a per-session lock.

Request flow for ``/solve`` (``/batch`` is the same per net):

1. parse the net and library from the JSON body
   (:func:`repro.tree.io.tree_from_dict` — validation happens here,
   once per net, never again downstream);
2. canonicalize (:func:`repro.service.canon.canonicalize`) and derive
   the request key;
3. cache hit → translate the stored
   :class:`~repro.service.cache.SolutionPayload` onto *this* request's
   node ids via the canonical index mapping and answer — no compile, no
   solve, no worker dispatch;
4. cache miss → fetch (or compile and remember) the
   :class:`~repro.core.schedule.CompiledNet` for this structure, solve
   it on the persistent :class:`~repro.core.batch.SolverPool` for this
   (library, algorithm, backend, options) context, store the payload,
   answer.

Solves run in the event loop's default thread-pool executor so the loop
keeps accepting requests while the kernel works; with ``jobs > 1`` the
pool additionally fans a batch's misses across worker processes, each of
which holds the library plan resident (see
:class:`~repro.core.batch.SolverPool`).

A ``/batch`` whose deduped misses contain structurally identical nets
under different parasitics or RATs (the multi-corner case) is solved
lane-parallel by the pool's batch-axis engine
(:mod:`repro.core.stores.batch_axis`): one vectorized interpreter pass
over the whole group instead of one per net, bit-identical per net.
``/stats`` reports the grouping under its ``batch_axis`` block.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import logging
import signal
import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.batch import SolverPool
from repro.core.registry import get_algorithm
from repro.core.schedule import CompiledNet, compile_net
from repro.core.stores import resolve_backend
from repro.errors import DeadlineExceeded, EditError, ReproError, WorkerCrashError
from repro.library.library import BufferLibrary
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    CounterGroup,
    MetricsRegistry,
    default_registry,
)
from repro.obs.spans import (
    Tracer,
    active_tracer,
    new_request_id,
    request_scope,
    trace_scope,
)
from repro.resilience import Deadline, should_corrupt
from repro.routing.router import default_policy, validate_policy
from repro.routing.workload import WorkloadLog, compiled_digest
from repro.service.cache import ResultCache, SolutionPayload
from repro.service.canon import (
    CanonicalNet,
    canonicalize,
    driver_key,
    library_key,
    options_key,
    request_key,
)
from repro.tree.io import library_from_dict, tree_from_dict

_JSON_HEADERS = "Content-Type: application/json\r\nConnection: close\r\n"
_TEXT_HEADERS = (
    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
    "Connection: close\r\n"
)
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: One record per request (INFO for 2xx, WARNING for 4xx/5xx), always
#: carrying the correlation id as an ``extra`` field — the event-loop
#: thread deliberately installs no ambient request scope, so the id
#: cannot come from :func:`repro.obs.spans.current_request_id` here.
#: Silent by default (no root handler is installed at INFO); ``repro
#: serve --log-json`` turns these into one JSON object per line.
_ACCESS_LOG = logging.getLogger("repro.service.access")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """A request-scoped error rendered as ``status`` + ``{"error": ...}``."""

    status = 500

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        if status is not None:
            self.status = status


class _BadRequest(_HttpError):
    """Client-side error; rendered as a 400 with an ``error`` field."""

    status = 400


class _TextPayload(str):
    """A pre-rendered ``text/plain`` response body (``GET /metrics``).

    The response writer JSON-encodes every payload by default; this
    marker subclass routes the body out verbatim under the Prometheus
    text-exposition content type instead.
    """


def _scoped_call(request_id, fn, tracer=None):
    """Run ``fn`` under the request's ambient observability scope.

    Executor threads do not inherit the event loop's thread-locals (and
    the loop thread deliberately installs none — it interleaves every
    request), so the correlation id and tracer are re-established here,
    on the thread that actually runs the solve.
    """
    with request_scope(request_id), trace_scope(tracer):
        return fn()


def _endpoint_label(path: str) -> str:
    """The latency-histogram label for a request path.

    Session paths fold their embedded id (``/session/{id}/edit`` →
    ``/session/edit``) so the label set stays small and fixed.
    """
    parts = path.partition("?")[0].strip("/").split("/")
    if parts and parts[0] == "session":
        return "/session/" + parts[2] if len(parts) == 3 else "/session"
    return "/" + parts[0] if parts and parts[0] else "/"


class BufferServer:
    """The serving state machine behind ``repro serve``.

    Owns the result cache, the compiled-net cache and the pool registry;
    :meth:`start` binds the listening socket (``port=0`` picks an
    ephemeral port — the tests' mode), :meth:`serve_forever` blocks.

    Args:
        host: Interface to bind.
        port: TCP port; ``0`` lets the kernel choose (see ``self.port``
            after :meth:`start`).
        jobs: Workers per :class:`~repro.core.batch.SolverPool`; ``1``
            solves inline in the serving process.
        cache_size: Result-cache capacity (entries).
        cache_ttl: Result-cache time-to-live in seconds; ``None`` keeps
            entries until evicted.
        max_pools: Distinct (library, algorithm, backend, options)
            contexts to keep warm; the least recently used pool beyond
            this is closed.
        max_sessions: Live incremental sessions to keep; the least
            recently used beyond this is evicted (its memory is
            reclaimed by garbage collection).
        session_ttl: Seconds an idle session stays alive; ``None``
            keeps sessions until evicted.
        frontier_cache_bytes: Byte bound of the frontier cache shared
            by every session (see the module docstring's memory
            policy).
        parallel_threshold: Instruction-count floor above which a
            single ``/solve`` net is partitioned across the pool's
            workers (see :mod:`repro.parallel`); ``None`` uses the
            calibrated default.  Only effective with ``jobs > 1``.
        policy: Server-wide execution-routing policy
            (:mod:`repro.routing.router`); ``None`` follows the process
            default (``"static"``).  A request may override it with its
            own ``"policy"`` field.
        workload_log: Path of an opt-in JSONL workload log; every
            routed solve (and every session re-solve) appends one
            record that ``repro replay`` can re-run offline.
        max_inflight: Solve dispatches allowed to run concurrently;
            further requests queue (admission control).
        max_queue_depth: Requests allowed to wait for an admission
            slot; beyond it the server load-sheds with a 503 +
            ``Retry-After`` rather than building an unbounded queue.
        max_request_bytes: Request-body size cap; larger bodies are
            rejected with a 413 before being read.
        max_positions: Per-net cap on buffer positions (the paper's
            ``n``); larger nets are rejected with a 422.  ``None``
            accepts any size.
        deadline_ms: Server-wide default solve deadline in
            milliseconds (a request's own ``deadline_ms`` overrides
            it); exceeding the deadline answers 504.  ``None`` means
            no default deadline.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = 1,
        cache_size: int = 1024,
        cache_ttl: Optional[float] = None,
        max_pools: int = 4,
        max_sessions: int = 32,
        session_ttl: Optional[float] = 3600.0,
        frontier_cache_bytes: int = 64 << 20,
        parallel_threshold: Optional[int] = None,
        policy: Optional[str] = None,
        workload_log: Optional[str] = None,
        max_inflight: int = 8,
        max_queue_depth: int = 32,
        max_request_bytes: int = _MAX_BODY_BYTES,
        max_positions: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        if max_pools < 1:
            raise ValueError(f"max_pools must be >= 1, got {max_pools}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if max_request_bytes < 1:
            raise ValueError(
                f"max_request_bytes must be >= 1, got {max_request_bytes}"
            )
        if max_positions is not None and max_positions < 1:
            raise ValueError(
                f"max_positions must be >= 1 or None, got {max_positions}"
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0 or None, got {deadline_ms}"
            )
        if jobs is None:
            import os

            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (or None), got {jobs}")
        if policy is not None:
            validate_policy(policy)
        self.host = host
        self.port = port
        self.jobs = jobs
        self.parallel_threshold = parallel_threshold
        self.policy = policy
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.max_request_bytes = max_request_bytes
        self.max_positions = max_positions
        self.deadline_ms = deadline_ms
        # One log shared by every pool (and the session path): pools
        # receive the instance, so closing it stays the server's job.
        self._workload_log = (
            WorkloadLog(workload_log) if workload_log is not None else None
        )
        self.results = ResultCache(maxsize=cache_size, ttl=cache_ttl)
        self.compiled = ResultCache(maxsize=max(cache_size // 4, 16))
        # Imported here, not at module top: the incremental engine uses
        # repro.service.canon's digest helpers, so a module-level import
        # would close a cycle through this package's __init__.
        from repro.incremental.subtree_cache import FrontierCache

        self.sessions = ResultCache(maxsize=max_sessions, ttl=session_ttl)
        self.frontiers = FrontierCache(max_bytes=frontier_cache_bytes)
        self._pools: "OrderedDict[Tuple, _PoolEntry]" = OrderedDict()
        self._max_pools = max_pools
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._gate: Optional[asyncio.Semaphore] = None
        self._waiting = 0
        self._active_requests = 0
        self._draining = False
        # Per-server registry: request counters, the uptime clock and
        # request-latency buckets live here (not in default_registry),
        # so two servers in one test process never bleed counts.
        # GET /metrics renders this registry plus the process-wide one.
        self.registry = MetricsRegistry()
        self._uptime = self.registry.uptime_clock(
            "repro_uptime_seconds",
            "Seconds since the serving socket was bound.",
        )
        self.counters = CounterGroup(self.registry, "repro_", {
            "requests_total":
                "HTTP requests received, any endpoint or outcome.",
            "solve_requests": "POST /solve requests admitted.",
            "batch_requests": "POST /batch requests admitted.",
            "nets_requested": "Nets received across /solve and /batch.",
            "nets_solved": "Nets actually solved (result-cache misses).",
            "worker_dispatches": "Solve dispatches onto a worker pool.",
            "session_creates": "Incremental sessions opened.",
            "session_edits": "Edits applied across all sessions.",
            "session_resolves": "Incremental re-solves across all sessions.",
            "errors": "Requests answered with an error status.",
            "sheds": "Requests shed by admission control (503).",
            "deadline_hits": "Requests that exceeded their deadline (504).",
            "rejected_payloads":
                "Requests rejected for size or position limits (413/422).",
            "integrity_failures":
                "Result-cache entries dropped by digest verification.",
            "drains": "Graceful-drain sequences started.",
        })
        self._request_seconds = self.registry.histogram(
            "repro_request_seconds",
            "Wall seconds per HTTP request, by endpoint.",
            LATENCY_BUCKETS,
        )
        # Aggregated dirty-instruction fractions over session re-solves
        # (the /stats "incremental" block's mean).
        self._session_fraction_sum = 0.0
        self._session_fraction_last = 0.0
        # Nets actually solved (cache misses), per resolved candidate-
        # store backend — with the kernel/arena health in /stats this is
        # what makes production pool sizing debuggable.
        self._solve_counter = self.registry.counter(
            "repro_solves_total",
            "Nets solved (cache misses), by resolved store backend.",
        )

    @property
    def solves_by_backend(self) -> Dict[str, int]:
        """Per-backend solve counts, read from the labeled counter."""
        return {
            dict(key).get("backend", ""): int(value)
            for key, value in self._solve_counter.series().items()
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the socket; returns the actual ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._gate = asyncio.Semaphore(self.max_inflight)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._uptime.restart()
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for entry in self._pools.values():
            entry.pool.close()
        self._pools.clear()
        if self._workload_log is not None:
            self._workload_log.close()

    async def drain(self, poll_interval: float = 0.05) -> None:
        """Graceful shutdown: refuse new work, finish in-flight, close.

        The sequence matters: first flip ``_draining`` (new solve
        admissions answer 503 + ``Retry-After``, ``/healthz`` reports
        ``"draining"``), then wait for every in-flight request to
        complete, flush a final stats line, and only *then* close the
        listening socket — closing it cancels ``serve_forever``, whose
        caller tears the pools down, so closing early would yank worker
        pools out from under in-flight solves.
        """
        if self._draining:
            return
        self._draining = True
        self.counters["drains"] += 1
        while self._active_requests > 0:
            await asyncio.sleep(poll_interval)
        self._flush_stats()
        if self._server is not None:
            self._server.close()

    def request_drain(self) -> None:
        """Thread-safe drain trigger (the SIGTERM handler, tests)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        asyncio.run_coroutine_threadsafe(self.drain(), loop)

    def _flush_stats(self) -> None:
        """One final machine-readable counters line before shutdown."""
        print(
            "repro serve: drained "
            + json.dumps({"counters": dict(self.counters)}, sort_keys=True)
        )

    @contextlib.asynccontextmanager
    async def _admit(self):
        """Admission control around one solve dispatch.

        Grants one of ``max_inflight`` concurrent slots; when all are
        busy, up to ``max_queue_depth`` requests wait their turn and
        anything beyond that is shed immediately with a 503 — bounded
        latency instead of an unbounded queue on a saturated pool.
        """
        if self._draining:
            raise _HttpError("server is draining", status=503)
        gate = self._gate
        if gate is None:  # not start()ed — direct handler tests
            yield
            return
        if gate.locked() and self._waiting >= self.max_queue_depth:
            self.counters["sheds"] += 1
            raise _HttpError(
                f"overloaded: {self.max_inflight} solves in flight and "
                f"{self._waiting} queued; retry later",
                status=503,
            )
        self._waiting += 1
        try:
            await gate.acquire()
        finally:
            self._waiting -= 1
        try:
            yield
        finally:
            gate.release()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        # One correlation id per request, minted before any parsing so
        # even a malformed request line gets a correlated error answer.
        # It rides as an explicit argument (not an ambient scope: the
        # event loop thread interleaves every request, so a thread-local
        # here would leak between them) and is re-installed as the
        # ambient scope inside executor threads and worker processes.
        request_id = new_request_id()
        endpoint: Optional[str] = None
        method, path = "-", "-"
        started = time.perf_counter()
        # The in-flight count covers the response write too: drain()
        # waits for it to reach zero before closing up, so a completed
        # solve is never cut off mid-answer.
        self._active_requests += 1
        try:
            try:
                method, path, body = await self._read_request(reader)
                endpoint = _endpoint_label(path)
                self.counters["requests_total"] += 1
                status, payload = await self._dispatch(
                    method, path, body, request_id
                )
            except _HttpError as exc:
                self.counters["errors"] += 1
                status, payload = exc.status, {"error": str(exc)}
            except (ConnectionError, asyncio.IncompleteReadError):
                writer.close()
                return
            except Exception as exc:  # never leak a traceback to the socket
                self.counters["errors"] += 1
                status, payload = 500, {"error": f"internal error: {exc}"}
            if status >= 400 and isinstance(payload, dict):
                payload.setdefault("request_id", request_id)
            extra = {
                "request_id": request_id,
                "status": status,
                "duration_ms": round(
                    (time.perf_counter() - started) * 1e3, 3
                ),
            }
            if status >= 400 and isinstance(payload, dict):
                extra["error"] = payload.get("error")
            _ACCESS_LOG.log(
                logging.WARNING if status >= 400 else logging.INFO,
                "%s %s -> %d", method, path, status, extra=extra,
            )
            if isinstance(payload, _TextPayload):
                body_bytes = str(payload).encode("utf-8")
                content_headers = _TEXT_HEADERS
            else:
                body_bytes = json.dumps(payload).encode("utf-8")
                content_headers = _JSON_HEADERS
            reason = _REASONS.get(status, "Error")
            # Shed/draining answers tell well-behaved clients when to
            # come back instead of leaving them to guess a backoff.
            retry_after = "Retry-After: 1\r\n" if status == 503 else ""
            head = (
                f"HTTP/1.1 {status} {reason}\r\n{content_headers}"
                f"{retry_after}"
                f"Content-Length: {len(body_bytes)}\r\n\r\n"
            )
            try:
                writer.write(head.encode("latin-1") + body_bytes)
                await writer.drain()
            except ConnectionError:
                pass
            finally:
                writer.close()
        finally:
            self._active_requests -= 1
            if endpoint is not None:
                self._request_seconds.observe(
                    time.perf_counter() - started, endpoint=endpoint
                )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value)
                except ValueError:
                    raise _BadRequest(
                        f"bad Content-Length: {value.strip()!r}"
                    ) from None
        if length > self.max_request_bytes:
            self.counters["rejected_payloads"] += 1
            raise _HttpError(
                f"request body too large ({length} bytes, "
                f"limit {self.max_request_bytes})",
                status=413,
            )
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, body

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        path, _, query = path.partition("?")
        routes = {
            "/solve": ("POST", self._handle_solve),
            "/batch": ("POST", self._handle_batch),
            "/session": ("POST", self._handle_session_create),
            "/healthz": ("GET", self._handle_healthz),
            "/stats": ("GET", self._handle_stats),
            "/metrics": ("GET", self._handle_metrics),
        }
        route = routes.get(path)
        if route is not None:
            expected_method, handler = route
            if method != expected_method:
                return 405, {"error": f"{path} requires {expected_method}"}
            return await handler(body, query, request_id)
        if path.startswith("/session/"):
            return await self._dispatch_session(method, path, body, request_id)
        return 404, {"error": f"unknown path {path!r}",
                     "paths": sorted(routes) + ["/session/{id}"]}

    async def _dispatch_session(
        self,
        method: str,
        path: str,
        body: bytes,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        parts = path.strip("/").split("/")
        # parts[0] == "session"; parts[1] = id; optional parts[2] = verb.
        if len(parts) == 2:
            if method != "DELETE":
                return 405, {"error": "/session/{id} requires DELETE"}
            return self._handle_session_delete(parts[1])
        if len(parts) == 3 and parts[2] in ("edit", "resolve"):
            if method != "POST":
                return 405, {"error": f"/session/{{id}}/{parts[2]} requires POST"}
            session = self._session(parts[1])
            if parts[2] == "edit":
                return await self._handle_session_edit(
                    session, body, request_id
                )
            return await self._handle_session_resolve(session, request_id)
        return 404, {
            "error": f"unknown session path {path!r}",
            "paths": ["/session/{id}", "/session/{id}/edit",
                      "/session/{id}/resolve"],
        }

    # -- endpoints -----------------------------------------------------

    async def _handle_healthz(
        self,
        body: bytes,
        query: str = "",
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        import repro

        draining = self._draining
        answer: Dict[str, Any] = {
            "status": "draining" if draining else "ok",
            "version": repro.__version__,
            "uptime_seconds": self._uptime.seconds(),
            "jobs": self.jobs,
        }
        params = dict(
            part.partition("=")[::2] for part in query.split("&") if part
        )
        if params.get("deep") in ("1", "true", "yes"):
            cache_stats = self.results.stats()
            answer["workers"] = [
                dict(entry.pool.worker_health(),
                     backend=entry.pool.backend,
                     in_flight=entry.in_flight)
                for entry in self._pools.values()
            ]
            answer["breakers"] = {
                axis: sum(
                    1
                    for entry in self._pools.values()
                    if entry.pool.breakers.breaker(axis).state != "closed"
                )
                for axis in ("parallel", "batch_axis")
            }
            answer["admission"] = {
                "in_flight_requests": self._active_requests,
                "queued": self._waiting,
                "max_inflight": self.max_inflight,
                "max_queue_depth": self.max_queue_depth,
            }
            answer["cache_pressure"] = {
                "results_size": cache_stats.size,
                "results_maxsize": cache_stats.maxsize,
                "results_fill": cache_stats.size / cache_stats.maxsize,
                "frontier_bytes": self.frontiers.stats().get("bytes", 0),
                "integrity_failures": self.counters["integrity_failures"],
            }
        return (503 if draining else 200), answer

    async def _handle_metrics(
        self,
        body: bytes,
        query: str = "",
        request_id: Optional[str] = None,
    ) -> Tuple[int, "_TextPayload"]:
        """Prometheus text exposition: server + process-wide registries.

        The server registry carries the request counters, latency
        buckets and the uptime gauge; the process default registry
        carries kernel, supervisor and routing instruments (fed without
        plumbing by the subsystems themselves).
        """
        text = self.registry.render() + default_registry().render()
        return 200, _TextPayload(text)

    async def _handle_stats(
        self,
        body: bytes,
        query: str = "",
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        compiled_bytes = sum(
            net.payload_nbytes() for net, _ in self.compiled.values()
        )
        # Kernel-engine health, aggregated over the compiled-net
        # cache's per-backend store factories: inline (jobs=1) pools
        # solve through these factories, so their scratch-arena block
        # pools and provenance-tape capacities show up here.  Worker
        # processes (jobs > 1) hold private factories the parent cannot
        # see; their activity is still visible via solves_by_backend.
        kernels: Dict[str, Dict[str, int]] = {}
        factories: Dict[str, int] = {}
        for net, _ in self.compiled.values():
            for backend, stats in net.factory_stats().items():
                bucket = kernels.setdefault(backend, {
                    "solves": 0,
                    "arena_free_blocks": 0,
                    "arena_lent_blocks": 0,
                    "arena_pooled_bytes": 0,
                    "tape_entries": 0,
                    "tape_capacity": 0,
                })
                factories[backend] = factories.get(backend, 0) + 1
                bucket["solves"] += stats.get("solves", 0)
                arena = stats.get("arena", {})
                bucket["arena_free_blocks"] += (
                    arena.get("free_blocks_f8", 0)
                    + arena.get("free_blocks_ip", 0)
                    + arena.get("free_blocks_pair", 0)
                )
                bucket["arena_lent_blocks"] += arena.get("lent_blocks", 0)
                bucket["arena_pooled_bytes"] += arena.get("pooled_bytes", 0)
                tape = stats.get("tape", {})
                bucket["tape_entries"] += tape.get("entries", 0)
                bucket["tape_capacity"] += tape.get("capacity", 0)
        for backend, bucket in kernels.items():
            bucket["factories"] = factories[backend]
        # Batch-axis health, aggregated over the warm pools: how much
        # of the traffic actually formed structural groups (the /batch
        # multi-corner case) versus falling back to per-net solves.
        batch_axis: Dict[str, Any] = {
            "pools_enabled": 0,
            "groups": 0,
            "lanes_histogram": {},
            "batched_solves": 0,
            "scalar_solves": 0,
            "arena_pooled_bytes": 0,
        }
        for entry in self._pools.values():
            pool_stats = entry.pool.batch_axis_stats()
            batch_axis["pools_enabled"] += 1 if pool_stats["enabled"] else 0
            batch_axis["groups"] += pool_stats["groups"]
            batch_axis["batched_solves"] += pool_stats["batched_solves"]
            batch_axis["scalar_solves"] += pool_stats["scalar_solves"]
            batch_axis["arena_pooled_bytes"] += (
                pool_stats["arena_pooled_bytes"]
            )
            histogram = batch_axis["lanes_histogram"]
            for lanes, count in pool_stats["lanes_histogram"].items():
                key = str(lanes)  # stable JSON schema: string keys
                histogram[key] = histogram.get(key, 0) + count
        # Partitioned-solve health over the warm pools: how many large
        # nets actually fanned out across workers, how balanced the
        # cuts were, and how much of the last solve stayed serial (the
        # splice/residual overhead).
        parallel: Dict[str, Any] = {
            "pools_enabled": 0,
            "parallel_solves": 0,
            "fallback_solves": 0,
            "partitions_total": 0,
            "last": None,
        }
        for entry in self._pools.values():
            pool_stats = entry.pool.parallel_stats()
            parallel["pools_enabled"] += 1 if pool_stats["enabled"] else 0
            parallel["parallel_solves"] += pool_stats["parallel_solves"]
            parallel["fallback_solves"] += pool_stats["fallback_solves"]
            parallel["partitions_total"] += pool_stats["partitions_total"]
            last = pool_stats["last"]
            if last is not None:
                parallel["last"] = {
                    "engaged": last["engaged"],
                    "reason": last["reason"],
                    "partitions": last["partitions"],
                    "cut_depths": list(last["cut_depths"]),
                    "coverage": last["coverage"],
                    "residual_fraction": last["residual_fraction"],
                    "workers": last["workers"],
                    "total_instructions": last["total_instructions"],
                    "plan_seconds": last["plan_seconds"],
                    "dispatch_seconds": last["dispatch_seconds"],
                    "worker_busy_seconds": last["worker_busy_seconds"],
                    "pool_utilization": last["pool_utilization"],
                }
        # Execution-routing health over the warm pools: which strategy
        # each routed request landed on, plus the shared cost model's
        # online-refinement telemetry.  Every pool's router feeds the
        # same process-wide model, so its stats are reported once.
        from repro.routing.cost_model import default_model

        routing: Dict[str, Any] = {
            "policy": self.policy if self.policy is not None
            else default_policy(),
            "decisions": 0,
            "decisions_by_strategy": {},
            "observations": 0,
            "model": default_model().stats(),
            "workload_records": (
                self._workload_log.records_written
                if self._workload_log is not None else 0
            ),
        }
        for entry in self._pools.values():
            pool_stats = entry.pool.routing_stats()
            routing["decisions"] += pool_stats["decisions"]
            routing["observations"] += pool_stats["observations"]
            by_strategy = routing["decisions_by_strategy"]
            for strategy, count in (
                pool_stats["decisions_by_strategy"].items()
            ):
                by_strategy[strategy] = by_strategy.get(strategy, 0) + count
        # Resilience health: supervised-retry/respawn/fallback totals
        # and breaker state over the warm pools, plus the server-side
        # admission, deadline, drain and cache-integrity counters.
        resilience: Dict[str, Any] = {
            "server": {
                "sheds": self.counters["sheds"],
                "deadline_hits": self.counters["deadline_hits"],
                "rejected_payloads": self.counters["rejected_payloads"],
                "integrity_failures": self.counters["integrity_failures"],
                "drains": self.counters["drains"],
                "draining": self._draining,
                "in_flight_requests": self._active_requests,
                "queued": self._waiting,
                "max_inflight": self.max_inflight,
                "max_queue_depth": self.max_queue_depth,
                "default_deadline_ms": self.deadline_ms,
            },
            "supervisor": {
                "retries": 0,
                "respawns": 0,
                "fallbacks": 0,
                "supervised_failures": 0,
            },
            "breaker_trips": 0,
            "breakers": {},
            "batch_group_fallbacks": 0,
            "partitioned_fallbacks": 0,
        }
        for entry in self._pools.values():
            pool_stats = entry.pool.resilience_stats()
            supervisor = resilience["supervisor"]
            for key, value in pool_stats["supervisor"].items():
                supervisor[key] = supervisor.get(key, 0) + value
            breakers = resilience["breakers"]
            for axis, breaker_stats in pool_stats["breakers"].items():
                bucket = breakers.setdefault(axis, {
                    "open": 0, "half_open": 0, "trips": 0,
                    "failures": 0, "successes": 0,
                })
                state = breaker_stats["state"]
                if state in ("open", "half_open"):
                    bucket[state] += 1
                bucket["trips"] += breaker_stats["trips"]
                bucket["failures"] += breaker_stats["failures"]
                bucket["successes"] += breaker_stats["successes"]
                resilience["breaker_trips"] += breaker_stats["trips"]
            resilience["batch_group_fallbacks"] += (
                pool_stats["batch_group_fallbacks"]
            )
            resilience["partitioned_fallbacks"] += (
                pool_stats["partitioned_fallbacks"]
            )
        session_stats = self.sessions.stats()
        live_sessions = tuple(self.sessions.values())
        resolves = self.counters["session_resolves"]
        return 200, {
            "uptime_seconds": self._uptime.seconds(),
            "counters": dict(self.counters),
            "solves_by_backend": dict(self.solves_by_backend),
            "kernels": kernels,
            "batch_axis": batch_axis,
            "parallel": parallel,
            "routing": routing,
            "resilience": resilience,
            "cache": self.results.stats().as_dict(),
            "compiled_cache": dict(
                self.compiled.stats().as_dict(),
                payload_bytes=compiled_bytes,
            ),
            "incremental": {
                "frontier_cache": self.frontiers.stats(),
                "sessions": {
                    "live": session_stats.size,
                    "max": session_stats.maxsize,
                    "created": self.counters["session_creates"],
                    "expired": session_stats.expirations,
                    "evicted": session_stats.evictions,
                    "ttl_seconds": session_stats.ttl,
                    "resident_bytes": sum(
                        session.nbytes() for session in live_sessions
                    ),
                },
                "resolves": resolves,
                "edits": self.counters["session_edits"],
                "last_executed_fraction": self._session_fraction_last,
                "mean_executed_fraction": (
                    self._session_fraction_sum / resolves if resolves else 0.0
                ),
            },
            "pools": [
                {
                    "algorithm": entry.pool.algorithm,
                    "backend": entry.pool.backend,
                    "policy": entry.pool.router.policy,
                    "jobs": entry.pool.jobs,
                    "library_size": entry.pool.library.size,
                    "in_flight": entry.in_flight,
                }
                for entry in self._pools.values()
            ],
        }

    async def _handle_solve(
        self,
        body: bytes,
        query: str = "",
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        async with self._admit():
            spec = _parse_body(body)
            net_spec = _require(spec, "net", dict)
            request = _SolveContext.from_spec(
                spec, self.policy, self.deadline_ms
            )
            params = dict(
                part.partition("=")[::2] for part in query.split("&") if part
            )
            tracer = (
                Tracer(request_id=request_id or new_request_id())
                if params.get("trace") in ("1", "true", "yes")
                else None
            )
            self.counters["solve_requests"] += 1
            self.counters["nets_requested"] += 1
            answers = await self._answer(
                request, [net_spec], request_id=request_id, tracer=tracer
            )
            answer = answers[0]
            if tracer is not None:
                answer["trace"] = tracer.to_chrome()
            return 200, answer

    async def _handle_batch(
        self,
        body: bytes,
        query: str = "",
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        async with self._admit():
            spec = _parse_body(body)
            net_specs = _require(spec, "nets", list)
            if not net_specs:
                raise _BadRequest("'nets' must contain at least one net")
            request = _SolveContext.from_spec(
                spec, self.policy, self.deadline_ms
            )
            self.counters["batch_requests"] += 1
            self.counters["nets_requested"] += len(net_specs)
            answers = await self._answer(
                request, net_specs, request_id=request_id
            )
            return 200, {"results": answers}

    # -- stateful sessions (incremental ECO re-solve) ------------------

    def _session(self, sid: str) -> "_Session":
        session = self.sessions.get(sid)
        if session is None:
            raise _BadRequest(
                f"unknown or expired session {sid!r} (sessions expire "
                "after the configured TTL and are evicted least recently "
                "used beyond max_sessions)"
            )
        # Re-stamp on every access: the TTL is an *idle* timeout (the
        # cache stamps entries at put time only), so an actively used
        # session must never expire mid-workflow.
        self.sessions.put(sid, session)
        return session

    async def _handle_session_create(
        self,
        body: bytes,
        query: str = "",
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        spec = _parse_body(body)
        net_spec = _require(spec, "net", dict)
        context = _SolveContext.from_spec(spec, self.policy)
        try:
            tree, id_map = tree_from_dict(net_spec, with_id_map=True)
        except ReproError as exc:
            raise _BadRequest(f"invalid net: {exc}") from exc
        from repro.incremental.engine import IncrementalSolver

        loop = asyncio.get_running_loop()
        try:
            # Construction validates, compiles and digests the net —
            # O(n) work that belongs off the event loop.
            solver = await loop.run_in_executor(
                None,
                lambda: _scoped_call(request_id, lambda: IncrementalSolver(
                    tree, context.library, algorithm=context.algorithm,
                    backend=context.backend, cache=self.frontiers,
                    **context.options,
                )),
            )
        except ReproError as exc:
            raise _BadRequest(str(exc)) from exc
        session = _Session(uuid.uuid4().hex[:16], solver, id_map)
        self.sessions.put(session.sid, session)
        self.counters["session_creates"] += 1
        return 200, {
            "session": session.sid,
            "num_nodes": tree.num_nodes,
            "num_sinks": tree.num_sinks,
            "algorithm": context.algorithm,
            "backend": solver.backend,
        }

    async def _handle_session_edit(
        self,
        session: "_Session",
        body: bytes,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        spec = _parse_body(body)
        edit_specs = _require(spec, "edits", list)
        if not edit_specs:
            raise _BadRequest("'edits' must contain at least one edit")
        loop = asyncio.get_running_loop()
        try:
            answer = await loop.run_in_executor(
                None,
                lambda: _scoped_call(
                    request_id, lambda: session.apply_edits(edit_specs)
                ),
            )
        except (EditError, ReproError) as exc:
            raise _BadRequest(str(exc)) from exc
        self.counters["session_edits"] += len(edit_specs)
        return 200, answer

    async def _handle_session_resolve(
        self,
        session: "_Session",
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        loop = asyncio.get_running_loop()
        try:
            answer = await loop.run_in_executor(
                None, lambda: _scoped_call(request_id, session.resolve)
            )
        except ReproError as exc:
            raise _BadRequest(str(exc)) from exc
        self.counters["session_resolves"] += 1
        fraction = session.solver.last_executed_fraction
        self._session_fraction_sum += fraction
        self._session_fraction_last = fraction
        self._record_session_resolve(session, answer)
        return 200, answer

    def _record_session_resolve(
        self, session: "_Session", answer: Dict[str, Any]
    ) -> None:
        """Feed a session re-solve's timing back to the routing model
        (and append it to the workload log when one is configured)."""
        from repro.routing.cost_model import default_model
        from repro.routing.features import features_of
        from repro.routing.router import ExecutionPlan

        solver = session.solver
        features = features_of(
            solver.compiled, kind="session",
            dirty_fraction=solver.last_executed_fraction,
        )
        plan = ExecutionPlan(backend=solver.backend, schedule_mode="splice")
        seconds = answer["stats"]["solve_runtime_seconds"]
        default_model().observe(plan, features, seconds)
        if self._workload_log is not None:
            self._workload_log.record(
                "session",
                digest=compiled_digest(solver.compiled),
                features=features,
                plan=plan,
                policy=(
                    self.policy if self.policy is not None
                    else default_policy()
                ),
                seconds=seconds,
                algorithm=solver.algorithm,
                options=dict(solver.options),
            )

    def _handle_session_delete(self, sid: str) -> Tuple[int, Dict]:
        session = self.sessions.get(sid)
        if session is None:
            raise _BadRequest(f"unknown or expired session {sid!r}")
        self.sessions.discard(sid)
        return 200, {"deleted": True, "session": sid}

    # -- the serving core ----------------------------------------------

    async def _answer(
        self,
        request: "_SolveContext",
        net_specs: List[Any],
        request_id: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[Dict[str, Any]]:
        """Answer every net of one request: cache hits + sharded misses."""
        # The deadline clock starts here: parse, canonicalize, cache
        # lookup and solve all spend from one budget.
        deadline = (
            Deadline.from_ms(request.deadline_ms)
            if request.deadline_ms is not None else None
        )
        records: List[_NetRecord] = []
        misses: List[_NetRecord] = []
        # One digest memo per request: structurally repeated subtrees —
        # within one net or across a batch's nets — hash once instead
        # of once per occurrence (see canonicalize's ``memo``).
        digest_memo: Dict[str, str] = {}
        # The parse/canonicalize/compile loop below is synchronous — no
        # awaits — so installing the ambient scope on the loop thread
        # for its duration is safe (no other request can interleave),
        # and compile + cache.lookup spans land on the tracer.
        with request_scope(request_id), trace_scope(tracer):
            self._prepare_records(
                request, net_specs, records, misses, digest_memo
            )

        if misses:
            await self._solve_misses(request, misses, deadline,
                                     request_id, tracer)

        return [record.render(request.library) for record in records]

    def _prepare_records(
        self,
        request: "_SolveContext",
        net_specs: List[Any],
        records: "List[_NetRecord]",
        misses: "List[_NetRecord]",
        digest_memo: Dict[str, str],
    ) -> None:
        """Parse, canonicalize, cache-probe and compile every net."""
        for index, net_spec in enumerate(net_specs):
            if not isinstance(net_spec, dict):
                raise _BadRequest(
                    f"nets[{index}] must be a net object, "
                    f"got {type(net_spec).__name__}"
                )
            try:
                # tree_from_dict re-assigns node ids; keep the map so
                # answers speak the ids the request was written in.
                tree, id_map = tree_from_dict(net_spec, with_id_map=True)
            except ReproError as exc:
                raise _BadRequest(f"invalid net at index {index}: {exc}") from exc
            if (
                self.max_positions is not None
                and tree.num_buffer_positions > self.max_positions
            ):
                self.counters["rejected_payloads"] += 1
                raise _HttpError(
                    f"net at index {index} has {tree.num_buffer_positions} "
                    f"buffer positions, above the server's max_positions "
                    f"limit of {self.max_positions}",
                    status=422,
                )
            canon = canonicalize(tree, memo=digest_memo)
            record = _NetRecord(
                key=request_key(
                    canon, request.library, algorithm=request.algorithm,
                    backend=request.backend, options=request.options,
                    driver=tree.driver,
                ),
                canon=canon,
                serialized_id={new: old for old, new in id_map.items()},
            )
            records.append(record)
            record.payload = self._cache_get(record.key)
            record.cached = record.payload is not None
            if record.payload is None:
                misses.append(record)
                # The compiled-net cache bridges trees: a hit hands back
                # the structure compiled from some earlier equivalent
                # tree together with *that* tree's canon, which is what
                # the solved assignment must be encoded against.  The
                # driver is part of the key: a CompiledNet embeds the
                # driver recorded at compile time and the pool solves
                # with driver=None (falling back to it), so reusing a
                # compiled net across drivers would solve with the
                # wrong one.
                compiled_key = (
                    canon.key, request.library_key, driver_key(tree.driver)
                )
                entry = self.compiled.get(compiled_key)
                if entry is None:
                    try:
                        # tree_from_dict already validated; skip re-validation.
                        entry = (
                            compile_net(tree, request.library, validate=False),
                            canon,
                        )
                    except ReproError as exc:
                        raise _BadRequest(
                            f"cannot compile net at index {index}: {exc}"
                        ) from exc
                    self.compiled.put(compiled_key, entry)
                record.compiled, record.base_canon = entry

    async def _solve_misses(
        self,
        request: "_SolveContext",
        misses: "List[_NetRecord]",
        deadline: Optional[Deadline],
        request_id: Optional[str],
        tracer: Optional[Tracer],
    ) -> None:
        """Solve the cache misses on the warm pool and fill payloads."""
        entry = self._pool_for(request)
        # Within one batch, identical nets are solved once: dedupe
        # by request key, keeping the (compiled, canon) pair of the
        # first occurrence so result node ids and canon agree.
        unique: "OrderedDict[str, Tuple[CompiledNet, CanonicalNet]]" = (
            OrderedDict()
        )
        for record in misses:
            unique.setdefault(
                record.key, (record.compiled, record.base_canon)
            )
        to_solve = [net for net, _ in unique.values()]
        self.counters["worker_dispatches"] += 1
        self.counters["nets_solved"] += len(to_solve)
        backend = entry.pool.backend
        self._solve_counter.inc(len(to_solve), backend=backend)
        loop = asyncio.get_running_loop()
        # in_flight bookkeeping happens on the event loop thread
        # (before and after the await), so LRU eviction never
        # terminates a pool another request is still solving on.
        entry.in_flight += 1
        try:
            # The deadline rides the call, not the ambient thread-
            # local: run_in_executor hops threads, so the scope is
            # re-established pool-side from the explicit argument.
            # The correlation id and tracer hop the same way, via
            # _scoped_call on the executor thread.
            results = await loop.run_in_executor(
                None,
                lambda: _scoped_call(
                    request_id,
                    lambda: entry.pool.solve(to_solve, deadline=deadline),
                    tracer=tracer,
                ),
            )
        except DeadlineExceeded as exc:
            self.counters["deadline_hits"] += 1
            raise _HttpError(str(exc), status=504) from exc
        except WorkerCrashError as exc:
            # Escapes only when supervised recovery itself failed;
            # a server fault, not a client one.
            raise _HttpError(f"worker pool failure: {exc}") from exc
        except ReproError as exc:
            raise _BadRequest(str(exc)) from exc
        finally:
            entry.in_flight -= 1
            if entry.evicted and entry.in_flight == 0:
                entry.pool.close()
        payload_by_key: Dict[str, SolutionPayload] = {}
        for (key, (_, base_canon)), result in zip(unique.items(), results):
            payload = SolutionPayload.encode(result, base_canon)
            payload_by_key[key] = payload
            self._cache_put(key, payload)
        for record in misses:
            record.payload = payload_by_key[record.key]

    def _cache_put(self, key: str, payload: SolutionPayload) -> None:
        """Store ``(payload, digest)`` so reads can verify integrity.

        The digest is computed *before* the ``cache.payload`` fault
        site may tamper with the stored copy — exactly the property a
        real in-memory corruption has — so the chaos tests prove the
        read-side verification actually catches it.
        """
        digest = payload.digest()
        if should_corrupt("cache.payload"):
            payload = dataclasses.replace(payload, slack=payload.slack + 1.0)
        self.results.put(key, (payload, digest))

    def _cache_get(self, key: str) -> Optional[SolutionPayload]:
        """A verified cache read: a corrupted payload is a miss.

        Serving a silently corrupted solution would break the bit-
        identical contract every other fallback path honors; instead
        the entry is dropped, counted, and the net re-solved.
        """
        tracer = active_tracer()
        if tracer is None:
            return self._cache_read(key)
        handle = tracer.begin("cache.lookup")
        payload = self._cache_read(key)
        tracer.end(handle, hit=payload is not None)
        return payload

    def _cache_read(self, key: str) -> Optional[SolutionPayload]:
        entry = self.results.get(key)
        if entry is None:
            return None
        payload, digest = entry
        if payload.digest() != digest:
            self.counters["integrity_failures"] += 1
            self.results.discard(key)
            return None
        return payload

    def _pool_for(self, request: "_SolveContext") -> "_PoolEntry":
        """The warm pool for this solve context (LRU over contexts).

        Evicting a pool that still has solves in flight only *marks* it;
        the last finishing solve closes it (see ``_answer``).
        """
        context_key = (
            request.library_key,
            request.algorithm,
            request.backend,
            request.policy,
            options_key(request.options),
        )
        entry = self._pools.get(context_key)
        if entry is None:
            entry = _PoolEntry(SolverPool(
                request.library,
                algorithm=request.algorithm,
                jobs=self.jobs,
                backend=request.backend,
                parallel_threshold=self.parallel_threshold,
                policy=request.policy,
                workload_log=self._workload_log,
                **request.options,
            ))
            self._pools[context_key] = entry
        self._pools.move_to_end(context_key)
        while len(self._pools) > self._max_pools:
            _, evicted = self._pools.popitem(last=False)
            evicted.evicted = True
            if evicted.in_flight == 0:
                evicted.pool.close()
        return entry


class _Session:
    """One live incremental session: solver + id translation + lock.

    The request's serialized node ids (whatever labels its JSON used)
    are the session's public namespace: edits arrive in it and answers
    are rendered back into it, exactly like ``/solve``.  Nodes created
    by structural edits get fresh serialized labels (the internal id
    when free, ``"eco<id>"`` otherwise) returned from the edit call.

    ``lock`` serializes apply/resolve across concurrent HTTP requests —
    solver state is mutable and single-threaded by design.  It is held
    inside executor threads, never on the event loop.
    """

    __slots__ = ("sid", "solver", "id_map", "serialized_of", "lock")

    def __init__(self, sid: str, solver, id_map: Dict[Any, int]) -> None:
        self.sid = sid
        self.solver = solver
        self.id_map = dict(id_map)
        self.serialized_of = {new: old for old, new in id_map.items()}
        self.lock = threading.Lock()

    def _label_for(self, internal_id: int) -> Any:
        label: Any = internal_id
        if label in self.id_map:
            label = f"eco{internal_id}"
            suffix = 2
            while label in self.id_map:
                label = f"eco{internal_id}_{suffix}"
                suffix += 1
        return label

    def apply_edits(self, edit_specs: List[Any]) -> Dict[str, Any]:
        """Parse, translate and apply a batch of edits (executor side)."""
        from repro.incremental.edits import edit_from_dict

        edits = []
        for index, edit_spec in enumerate(edit_specs):
            if not isinstance(edit_spec, dict):
                raise _BadRequest(
                    f"edits[{index}] must be an edit object, "
                    f"got {type(edit_spec).__name__}"
                )
            translated = dict(edit_spec)
            for field in ("node", "parent"):
                if field in translated:
                    serialized = translated[field]
                    internal = self.id_map.get(serialized)
                    if internal is None:
                        raise _BadRequest(
                            f"edits[{index}]: unknown node id "
                            f"{serialized!r}"
                        )
                    translated[field] = internal
            edits.append(edit_from_dict(translated))
        created: List[Any] = []
        removed: List[Any] = []
        applied = 0
        with self.lock:
            for edit in edits:
                try:
                    impact = self.solver.apply(edit)
                except ReproError as exc:
                    # Earlier edits of the batch are already applied
                    # (edits are not transactional); the error must say
                    # so — above all it must hand over any labels of
                    # nodes those edits created, or the client could
                    # never address them (and a blind full-batch retry
                    # would double-apply).
                    raise _BadRequest(
                        f"edits[{applied}] rejected: {exc} "
                        f"(the {applied} preceding edit(s) of this batch "
                        f"were applied; created={created!r}, "
                        f"removed={removed!r})"
                    ) from exc
                applied += 1
                for internal in impact.created:
                    label = self._label_for(internal)
                    self.id_map[label] = internal
                    self.serialized_of[internal] = label
                    created.append(label)
                for internal in impact.removed:
                    label = self.serialized_of.pop(internal, None)
                    if label is not None:
                        del self.id_map[label]
                        removed.append(label)
            num_nodes = self.solver.tree.num_nodes
        return {
            "session": self.sid,
            "applied": applied,
            "created": created,
            "removed": removed,
            "num_nodes": num_nodes,
        }

    def resolve(self) -> Dict[str, Any]:
        """Incremental re-solve, rendered in serialized ids (executor side)."""
        with self.lock:
            result = self.solver.resolve()
            solver = self.solver
            return {
                "session": self.sid,
                "slack_seconds": result.slack,
                "driver_load_farads": result.driver_load,
                "num_buffers": result.num_buffers,
                "assignment": {
                    str(self.serialized_of[node_id]): buffer.name
                    for node_id, buffer in sorted(result.assignment.items())
                },
                "algorithm": result.stats.algorithm,
                "backend": result.stats.backend,
                "stats": {
                    "root_candidates": result.stats.root_candidates,
                    "peak_list_length": result.stats.peak_list_length,
                    "candidates_generated": result.stats.candidates_generated,
                    "solve_runtime_seconds": result.stats.runtime_seconds,
                    "num_buffer_positions": result.stats.num_buffer_positions,
                    "library_size": result.stats.library_size,
                },
                "incremental": {
                    "executed_fraction": solver.last_executed_fraction,
                    "spliced_subtrees": solver.last_spliced_subtrees,
                    "resolves": solver.resolves,
                    "edits_applied": solver.edits_applied,
                },
            }

    def nbytes(self) -> int:
        """Approximate resident footprint (compiled payloads + tree)."""
        solver = self.solver
        return solver.compiled.payload_nbytes() + 200 * solver.num_nodes


class _PoolEntry:
    """A registered pool plus the bookkeeping safe eviction needs.

    ``in_flight`` and ``evicted`` are only touched from the event-loop
    thread, never from executor threads, so they need no lock.
    """

    __slots__ = ("pool", "in_flight", "evicted")

    def __init__(self, pool: SolverPool) -> None:
        self.pool = pool
        self.in_flight = 0
        self.evicted = False


class _NetRecord:
    """Per-net serving state: key, canon, id translation, payload."""

    __slots__ = ("key", "canon", "serialized_id", "compiled", "base_canon",
                 "payload", "cached")

    def __init__(
        self,
        key: str,
        canon: CanonicalNet,
        serialized_id: Dict[int, Any],
    ) -> None:
        self.key = key
        self.canon = canon
        self.serialized_id = serialized_id
        self.compiled: Optional[CompiledNet] = None
        self.base_canon: Optional[CanonicalNet] = None
        self.payload: Optional[SolutionPayload] = None
        self.cached = False

    def render(self, library: BufferLibrary) -> Dict[str, Any]:
        """The JSON answer for this net, in the request's node ids."""
        payload = self.payload
        assert payload is not None
        result = payload.materialize(self.canon, library)
        return {
            "key": self.key,
            "cached": self.cached,
            "slack_seconds": result.slack,
            "driver_load_farads": result.driver_load,
            "num_buffers": result.num_buffers,
            "assignment": {
                str(self.serialized_id[node_id]): buffer.name
                for node_id, buffer in sorted(result.assignment.items())
            },
            "algorithm": payload.algorithm,
            "backend": payload.backend,
            "stats": {
                "root_candidates": payload.root_candidates,
                "peak_list_length": payload.peak_list_length,
                "candidates_generated": payload.candidates_generated,
                "solve_runtime_seconds": payload.runtime_seconds,
                "num_buffer_positions": payload.num_buffer_positions,
                "library_size": payload.library_size,
            },
        }


class _SolveContext:
    """The per-request solve parameters, parsed and validated once."""

    def __init__(
        self,
        library: BufferLibrary,
        algorithm: str,
        backend: str,
        options: Dict[str, Any],
        policy: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.library = library
        self.algorithm = algorithm
        self.backend = backend
        self.options = options
        self.policy = policy
        self.deadline_ms = deadline_ms
        self.library_key = library_key(library)

    @classmethod
    def from_spec(
        cls,
        spec: Dict[str, Any],
        default_policy: Optional[str] = None,
        default_deadline_ms: Optional[float] = None,
    ) -> "_SolveContext":
        library_spec = _require(spec, "library", dict)
        try:
            library = library_from_dict(library_spec)
        except ReproError as exc:
            raise _BadRequest(f"invalid library: {exc}") from exc
        algorithm = spec.get("algorithm", "fast")
        if not isinstance(algorithm, str):
            raise _BadRequest("'algorithm' must be a string")
        backend = spec.get("backend", "auto")
        if not isinstance(backend, str):
            raise _BadRequest("'backend' must be a string")
        options = spec.get("options", {})
        if not isinstance(options, dict):
            raise _BadRequest("'options' must be an object")
        policy = spec.get("policy", default_policy)
        if policy is not None:
            if not isinstance(policy, str):
                raise _BadRequest("'policy' must be a string")
            try:
                validate_policy(policy)
            except ValueError as exc:
                raise _BadRequest(str(exc)) from exc
        deadline_ms = spec.get("deadline_ms", default_deadline_ms)
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise _BadRequest(
                    "'deadline_ms' must be a positive number of milliseconds"
                )
            deadline_ms = float(deadline_ms)
        try:
            get_algorithm(algorithm).validate_options(options)
            from repro.core.stores import get_store_backend

            get_store_backend(resolve_backend(backend))
            # Under an explicit routing policy an "auto" backend stays
            # "auto" all the way into the pool, so the router may pick
            # the store per net; otherwise keep the historical contract
            # of resolving it here (cache keys included).
            if policy is None and backend == "auto":
                backend = resolve_backend(backend)
        except ReproError as exc:
            raise _BadRequest(str(exc)) from exc
        return cls(library, algorithm, backend, options, policy, deadline_ms)


def _parse_body(body: bytes) -> Dict[str, Any]:
    if not body:
        raise _BadRequest("request body required")
    try:
        spec = json.loads(body)
    except json.JSONDecodeError as exc:
        raise _BadRequest(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(spec, dict):
        raise _BadRequest("request body must be a JSON object")
    return spec


def _require(spec: Dict[str, Any], field: str, kind: type) -> Any:
    value = spec.get(field)
    if not isinstance(value, kind):
        expected = {dict: "an object", list: "an array"}.get(kind, kind.__name__)
        raise _BadRequest(f"'{field}' must be {expected}")
    return value


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    jobs: Optional[int] = 1,
    cache_size: int = 1024,
    cache_ttl: Optional[float] = None,
    max_pools: int = 4,
    max_sessions: int = 32,
    session_ttl: Optional[float] = 3600.0,
    frontier_cache_bytes: int = 64 << 20,
    parallel_threshold: Optional[int] = None,
    policy: Optional[str] = None,
    workload_log: Optional[str] = None,
    max_inflight: int = 8,
    max_queue_depth: int = 32,
    max_request_bytes: int = _MAX_BODY_BYTES,
    max_positions: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    ready=None,
) -> None:
    """Run a :class:`BufferServer` until interrupted (the CLI's engine).

    SIGTERM triggers a graceful drain: no new admissions, in-flight
    requests complete, stats are flushed, then the socket and the
    worker pools close.  SIGINT (Ctrl-C) remains the immediate stop.

    Args:
        host, port, jobs, cache_size, cache_ttl, max_pools,
        max_sessions, session_ttl, frontier_cache_bytes,
        parallel_threshold, policy, workload_log, max_inflight,
        max_queue_depth, max_request_bytes, max_positions,
        deadline_ms: Forwarded to :class:`BufferServer`.
        ready: Optional callback invoked with the started server (tests
            use it to learn the ephemeral port and to retain a handle).
    """

    async def _run() -> None:
        server = BufferServer(
            host=host, port=port, jobs=jobs, cache_size=cache_size,
            cache_ttl=cache_ttl, max_pools=max_pools,
            max_sessions=max_sessions, session_ttl=session_ttl,
            frontier_cache_bytes=frontier_cache_bytes,
            parallel_threshold=parallel_threshold,
            policy=policy, workload_log=workload_log,
            max_inflight=max_inflight, max_queue_depth=max_queue_depth,
            max_request_bytes=max_request_bytes,
            max_positions=max_positions, deadline_ms=deadline_ms,
        )
        bound_host, bound_port = await server.start()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, server.request_drain)
        except (NotImplementedError, RuntimeError):
            # Platforms/threads without signal support still serve;
            # drain stays reachable via request_drain().
            pass
        print(f"repro serve: listening on http://{bound_host}:{bound_port} "
              f"(jobs={server.jobs}, cache={cache_size} entries"
              f"{'' if cache_ttl is None else f', ttl={cache_ttl}s'})")
        if ready is not None:
            ready(server)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            # Raised when stop() or drain() closes the listening socket
            # — the clean-shutdown path, not an error.
            pass
        finally:
            try:
                loop.remove_signal_handler(signal.SIGTERM)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: stopped")
