"""``route(features) -> ExecutionPlan``: one seam for every dispatch.

Before this module, strategy selection lived in four unrelated places:
``resolve_backend("auto")`` picked the store, the auto-compile cache
picked walk vs compiled, ``SolverPool`` batched any structural group
and partitioned any net over a fixed instruction threshold.  The
:class:`Router` subsumes all of them behind one policy string:

* ``"static"`` — reproduce the legacy heuristics exactly (the default;
  decisions are bit-for-bit what the scattered rules chose, so nothing
  changes for existing callers).
* ``"model"`` — ask the :class:`~repro.routing.cost_model.CostModel`
  for the cheapest plan among the candidates legal for this request.
* ``"always_X"`` / ``"never_X"`` — escape hatches that pin one axis and
  leave the rest on the static rule: ``always_object``, ``always_soa``,
  ``always_walk``, ``always_compiled``, ``always_splice``,
  ``always_scratch``, ``always_batch`` / ``never_batch``,
  ``always_parallel`` / ``never_parallel``, and the combined
  ``always_<backend>-<mode>`` form (e.g. ``always_object-walk``) used
  by the replay harness to pin a full solo plan.

Whatever the policy, the emitted plan is only ever a *choice among
bit-identical executions* — ``tests/test_routing.py`` proves every
candidate plan returns the same slack, assignment, driver load and DP
stats as the object/walk reference.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import default_registry
from repro.obs.spans import active_tracer
from repro.routing.cost_model import CostModel, default_model
from repro.routing.features import RequestFeatures

#: Schedule modes a plan can name.
SCHEDULE_MODES = ("walk", "compiled", "splice")

#: How decisively the model must favor a composite plan (batch axis or
#: partitioned) before the router takes it over the best simple plan.
#: Composite predictions stack two fitted components (a base curve and
#: a speedup surface / Amdahl residual), so their error bars are wider;
#: near a predicted tie the simple plan is the safer execution.
COMPOSITE_MARGIN = 1.15

#: The canonical policy tokens (the combined ``always_<backend>-<mode>``
#: form is accepted too; see :func:`validate_policy`).
POLICIES = (
    "static",
    "model",
    "always_object",
    "always_soa",
    "always_walk",
    "always_compiled",
    "always_splice",
    "always_scratch",
    "always_batch",
    "never_batch",
    "always_parallel",
    "never_parallel",
)


@dataclass(frozen=True)
class ExecutionPlan:
    """One fully resolved way to execute a request.

    Attributes:
        backend: Candidate-store backend (``"object"`` / ``"soa"``).
        schedule_mode: ``"walk"`` (tree walk), ``"compiled"`` (schedule
            interpreter; for sessions this is the from-scratch re-run),
            or ``"splice"`` (incremental dirty-path execution).
        batch_axis: Solve the request's structural group as one
            vectorized dispatch (implies ``soa``/``compiled``).
        parallel: Partition one large net across worker processes
            (implies ``compiled``).
    """

    backend: str
    schedule_mode: str
    batch_axis: bool = False
    parallel: bool = False

    def __post_init__(self) -> None:
        if self.schedule_mode not in SCHEDULE_MODES:
            raise ValueError(
                f"schedule_mode must be one of {SCHEDULE_MODES}, "
                f"got {self.schedule_mode!r}"
            )

    @property
    def strategy(self) -> str:
        """Compact label, e.g. ``soa-compiled+batch`` — the key used by
        decision counters, the cost model and the workload log."""
        label = f"{self.backend}-{self.schedule_mode}"
        if self.batch_axis:
            label += "+batch"
        if self.parallel:
            label += "+parallel"
        return label

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionPlan":
        names = {field for field in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class _Constraints:
    """A parsed policy: pinned axes are non-``None``."""

    use_model: bool = False
    backend: Optional[str] = None
    schedule_mode: Optional[str] = None
    batch_axis: Optional[bool] = None
    parallel: Optional[bool] = None

    def admits(self, plan: ExecutionPlan) -> bool:
        return (
            (self.backend is None or plan.backend == self.backend)
            and (self.schedule_mode is None
                 or plan.schedule_mode == self.schedule_mode)
            and (self.batch_axis is None
                 or plan.batch_axis == self.batch_axis)
            and (self.parallel is None or plan.parallel == self.parallel)
        )


def _parse_policy(policy: str) -> _Constraints:
    if policy == "static":
        return _Constraints()
    if policy == "model":
        return _Constraints(use_model=True)
    for prefix, value in (("always_", True), ("never_", False)):
        if not policy.startswith(prefix):
            continue
        axis = policy[len(prefix):]
        if axis in ("batch", "parallel"):
            key = "batch_axis" if axis == "batch" else "parallel"
            return _Constraints(**{key: value})
        if not value:
            break  # only batch/parallel have a "never_" form
        if axis == "scratch":
            # An explicit "re-solve sessions from scratch" pin.
            return _Constraints(schedule_mode="compiled")
        backend: Optional[str] = None
        mode: Optional[str] = None
        parts = axis.split("-", 1)
        if parts[0] in SCHEDULE_MODES:
            mode = parts[0]
        else:
            backend = parts[0] or None
            if len(parts) == 2:
                mode = parts[1]
        if mode is not None and mode not in SCHEDULE_MODES:
            break
        if backend is not None:
            from repro.core.stores import store_backend_names

            if backend not in store_backend_names():
                break
        if backend is not None or mode is not None:
            return _Constraints(backend=backend, schedule_mode=mode)
        break
    raise ValueError(
        f"unknown routing policy {policy!r}; expected one of {POLICIES} "
        "or the combined form 'always_<backend>-<mode>'"
    )


def validate_policy(policy: str) -> str:
    """Raise ``ValueError`` on an unknown policy string; return it."""
    _parse_policy(policy)
    return policy


_default_policy = "static"
_default_policy_lock = threading.Lock()


def default_policy() -> str:
    """The process-wide policy used when a caller passes ``policy=None``."""
    with _default_policy_lock:
        return _default_policy


def set_default_policy(policy: str) -> str:
    """Set (and return the previous) process-wide default policy."""
    global _default_policy
    validate_policy(policy)
    with _default_policy_lock:
        previous = _default_policy
        _default_policy = policy
    return previous


def _soa_available() -> bool:
    from repro.core.stores import resolve_backend

    return resolve_backend("auto") == "soa"


class Router:
    """Turns request features into :class:`ExecutionPlan` decisions.

    Args:
        policy: ``"static"``, ``"model"``, or an ``always_*`` /
            ``never_*`` escape hatch (see module docstring); ``None``
            follows :func:`default_policy`.
        model: Cost model for predictions and online refinement; the
            shared :func:`~repro.routing.cost_model.default_model` by
            default (so corrections pool process-wide).
        parallel_mode: The legacy ``SolverPool`` knob (``"auto"`` /
            ``"always"`` / ``"never"``), honored by the static rule.
        parallel_threshold: Instruction floor of the static
            partitioned-solve rule; defaults to
            :data:`repro.parallel.solver.DEFAULT_PARALLEL_THRESHOLD`.
    """

    def __init__(
        self,
        policy: Optional[str] = None,
        model: Optional[CostModel] = None,
        parallel_mode: str = "auto",
        parallel_threshold: Optional[int] = None,
    ) -> None:
        if policy is None:
            policy = default_policy()
        self.policy = validate_policy(policy)
        self._constraints = _parse_policy(policy)
        self._model = model
        self.parallel_mode = parallel_mode
        if parallel_threshold is None:
            from repro.parallel.solver import DEFAULT_PARALLEL_THRESHOLD

            parallel_threshold = DEFAULT_PARALLEL_THRESHOLD
        self.parallel_threshold = parallel_threshold
        self._lock = threading.Lock()
        self._decisions: Dict[str, int] = {}
        self._routed = 0
        self._observed = 0

    @property
    def model(self) -> CostModel:
        """The cost model (lazily the shared default artifact)."""
        if self._model is None:
            self._model = default_model()
        return self._model

    # -- candidate enumeration -----------------------------------------

    def candidate_plans(
        self,
        features: RequestFeatures,
        *,
        backend: str = "auto",
        supports_batch: bool = False,
        supports_parallel: bool = False,
        supports_walk: bool = False,
    ) -> List[ExecutionPlan]:
        """Every plan legal for this request, reference-most first.

        ``backend`` other than ``"auto"`` pins the store (a caller's
        explicit choice always wins over routing).  Capability flags
        describe the execution context: the batch axis needs a
        structural group on an soa context, partitioning needs a
        multi-process pool and a locally compiled net, walking needs
        the plain tree (a bare ``CompiledNet`` cannot walk).
        """
        if backend != "auto":
            backends = [backend]
        elif self._constraints.backend is not None:
            backends = [self._constraints.backend]
        else:
            backends = ["object"] + (["soa"] if _soa_available() else [])

        plans: List[ExecutionPlan] = []
        if features.kind == "session":
            for store in backends:
                plans.append(ExecutionPlan(store, "splice"))
                plans.append(ExecutionPlan(store, "compiled"))
        elif features.lanes > 1:
            for store in backends:
                plans.append(ExecutionPlan(store, "compiled"))
            if supports_batch:
                plans.append(
                    ExecutionPlan("soa", "compiled", batch_axis=True)
                )
        else:
            modes = (["walk"] if supports_walk else []) + ["compiled"]
            for store in backends:
                for mode in modes:
                    plans.append(ExecutionPlan(store, mode))
            if supports_parallel:
                for store in backends:
                    plans.append(
                        ExecutionPlan(store, "compiled", parallel=True)
                    )
        return plans

    # -- decision rules -------------------------------------------------

    def _static_plan(
        self,
        features: RequestFeatures,
        backend: str,
        supports_batch: bool,
        supports_parallel: bool,
    ) -> ExecutionPlan:
        """The legacy heuristics, verbatim, as one plan."""
        from repro.core.stores import resolve_backend

        store = resolve_backend(backend)
        if features.kind == "session":
            return ExecutionPlan(store, "splice")
        batch = supports_batch and features.lanes > 1
        if batch:
            return ExecutionPlan("soa", "compiled", batch_axis=True)
        parallel = supports_parallel and (
            self.parallel_mode == "always"
            or (
                self.parallel_mode == "auto"
                and features.instructions >= self.parallel_threshold
            )
        )
        return ExecutionPlan(store, "compiled", parallel=parallel)

    def route(
        self,
        features: RequestFeatures,
        *,
        backend: str = "auto",
        supports_batch: bool = False,
        supports_parallel: bool = False,
        supports_walk: bool = False,
    ) -> ExecutionPlan:
        """Pick the execution plan for one request under this policy."""
        tracer = active_tracer()
        route_handle = (
            tracer.begin("route", policy=self.policy)
            if tracer is not None
            else None
        )
        constraints = self._constraints
        plan = self._static_plan(
            features, backend, supports_batch, supports_parallel
        )
        candidates = None
        if constraints.use_model or constraints != _Constraints():
            candidates = [
                candidate
                for candidate in self.candidate_plans(
                    features,
                    backend=backend,
                    supports_batch=supports_batch,
                    supports_parallel=supports_parallel,
                    supports_walk=supports_walk,
                )
                if constraints.admits(candidate)
            ]
        if candidates:
            if constraints.use_model:
                model = self.model
                costs = {
                    candidate: model.predict(candidate, features)
                    for candidate in candidates
                }
                plan = min(candidates, key=costs.__getitem__)
                if plan.batch_axis or plan.parallel:
                    # Composite predictions stack two fitted components,
                    # so near a predicted tie prefer the simple plan.
                    simple = [
                        candidate for candidate in candidates
                        if not (candidate.batch_axis or candidate.parallel)
                    ]
                    if simple:
                        best_simple = min(simple, key=costs.__getitem__)
                        if not (
                            costs[plan] * COMPOSITE_MARGIN
                            < costs[best_simple]
                        ):
                            plan = best_simple
            elif not constraints.admits(plan):
                # A pinned axis the static rule disagrees with: take the
                # first admissible candidate whose free axes match the
                # static choice as closely as the enumeration allows.
                plan = min(
                    candidates,
                    key=lambda candidate: (
                        candidate.backend != plan.backend,
                        candidate.schedule_mode != plan.schedule_mode,
                        candidate.batch_axis != plan.batch_axis,
                        candidate.parallel != plan.parallel,
                    ),
                )
        with self._lock:
            self._routed += 1
            key = plan.strategy
            self._decisions[key] = self._decisions.get(key, 0) + 1
        default_registry().counter(
            "repro_routing_decisions_total",
            "Execution plans chosen, by strategy label.",
        ).inc(strategy=key)
        if route_handle is not None:
            tracer.end(route_handle, strategy=key)
        return plan

    # -- feedback and observability -------------------------------------

    def observe(
        self, plan: ExecutionPlan, features: RequestFeatures, seconds: float
    ) -> None:
        """Feed one measured execution back into the cost model.

        Runs under every policy (not just ``"model"``): static pools
        keep the shared model calibrated and the predicted-vs-actual
        error in ``/stats`` honest.
        """
        self.model.observe(plan, features, seconds)
        with self._lock:
            self._observed += 1

    def stats(self) -> dict:
        """The ``/stats`` ``routing`` block for one router."""
        with self._lock:
            decisions = dict(self._decisions)
            routed = self._routed
            observed = self._observed
        return {
            "policy": self.policy,
            "decisions": routed,
            "decisions_by_strategy": decisions,
            "observations": observed,
            "model": self.model.stats(),
        }
