"""The per-strategy latency predictor behind ``policy="model"``.

The model is deliberately boring: for each solo execution strategy
(``object-compiled``, ``soa-compiled``, ``object-walk``, ``soa-walk``)
it stores a piecewise-linear curve of solve seconds over the DP work
product ``positions^2 * library_size`` (the paper's O(b n^2) — see
:attr:`repro.routing.features.RequestFeatures.work`), and for the
composite strategies
it stores the few parameters that relate them to the solo curves — a
batch-axis speedup surface over ``(work, lanes)``, a splice
overhead fraction, and an Amdahl residual for the partitioned solve.
The coefficients are fitted **offline** by ``tools/fit_routing_model.py``
from the committed ``BENCH_PR2/4/5/6/7.json`` sweeps plus a small
micro-calibration run, and shipped as the versioned JSON artifact
``src/repro/routing/model_default.json``.

At runtime the model is refined **online**: every measured solve feeds
:meth:`CostModel.observe`, which nudges a per-strategy multiplicative
correction by an exponential moving average of the measured/predicted
ratio.  The correction adapts the committed curves to the current
machine without ever touching the artifact; ``/stats`` surfaces the
update count and the cumulative predicted-vs-actual error so drift is
visible from the outside.

Predictions are *costs for ranking*, not promises: the router only ever
compares strategies against each other on the same request, so a
machine-wide constant factor cancels out.  What must be right is the
ordering — which the parity-gated replay benchmark
(``benchmarks/bench_routing.py``) checks end to end.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.routing.features import RequestFeatures

#: Solo strategy keys every model artifact must provide curves for.
BASE_STRATEGIES = (
    "object-compiled",
    "soa-compiled",
    "object-walk",
    "soa-walk",
)

#: EMA weight of one new observation in the online correction.
EMA_ALPHA = 0.2

#: Clamp on one observation's measured/predicted ratio, so a single
#: scheduler hiccup cannot poison the correction.
_RATIO_CLAMP = (0.05, 20.0)

_DEFAULT_PATH = Path(__file__).with_name("model_default.json")
_default_model: Optional["CostModel"] = None
_default_lock = threading.Lock()


def _interp(knots: Sequence[Sequence[float]], x: float) -> float:
    """Piecewise-linear ``y(x)`` over sorted ``[x, y]`` knots.

    Below the first knot the curve is clamped flat (the first knot is a
    micro-calibrated launch-overhead floor, which does not shrink with
    the net); above the last knot the final segment's slope continues
    (underestimates O(n^2) growth, but preserves the strategy ordering,
    which is all routing consumes).
    """
    first = knots[0]
    if x <= first[0]:
        return first[1]
    for left, right in zip(knots, knots[1:]):
        if x <= right[0]:
            span = right[0] - left[0]
            t = (x - left[0]) / span if span else 1.0
            return left[1] + t * (right[1] - left[1])
    left, right = knots[-2], knots[-1]
    slope = (right[1] - left[1]) / (right[0] - left[0])
    return max(right[1] + slope * (x - right[0]), right[1] * 0.5)


def _bilinear(
    xs: Sequence[float], ys: Sequence[float],
    grid: Sequence[Sequence[float]], x: float, y: float,
) -> float:
    """Bilinear interpolation on a small rectangular grid, clamped to
    the grid's hull (``grid[i][j]`` is the value at ``xs[i], ys[j]``)."""

    def _bracket(axis: Sequence[float], value: float):
        value = min(max(value, axis[0]), axis[-1])
        for index in range(len(axis) - 1):
            if value <= axis[index + 1]:
                span = axis[index + 1] - axis[index]
                t = (value - axis[index]) / span if span else 0.0
                return index, t
        return len(axis) - 2, 1.0

    i, tx = _bracket(xs, x)
    j, ty = _bracket(ys, y)
    top = grid[i][j] * (1 - ty) + grid[i][j + 1] * ty
    bottom = grid[i + 1][j] * (1 - ty) + grid[i + 1][j + 1] * ty
    return top * (1 - tx) + bottom * tx


class CostModel:
    """Latency predictions per :class:`~repro.routing.router.ExecutionPlan`.

    Construct from a model-spec dict (:meth:`from_spec` validates), a
    JSON file (:meth:`from_file`), or use the committed default artifact
    via :func:`default_model`.  Instances are thread-safe: the serving
    layer shares one model across pools so online corrections pool too.
    """

    def __init__(self, spec: dict) -> None:
        version = spec.get("version")
        if not isinstance(version, str) or not version:
            raise ValueError("model spec has no version string")
        base = spec.get("base", {})
        missing = [key for key in BASE_STRATEGIES if key not in base]
        if missing:
            raise ValueError(f"model spec lacks base curves for {missing}")
        for key, curve in base.items():
            knots = curve.get("knots")
            if not knots or any(len(k) != 2 for k in knots):
                raise ValueError(f"base curve {key!r} has malformed knots")
            if sorted(k[0] for k in knots) != [k[0] for k in knots]:
                raise ValueError(f"base curve {key!r} knots are unsorted")
        self.version = version
        self.spec = spec
        self._base = {
            key: [list(map(float, k)) for k in curve["knots"]]
            for key, curve in base.items()
        }
        batch = spec.get("batch_axis", {})
        self._batch_work = batch.get("work")
        self._batch_lanes = batch.get("lanes")
        self._batch_speedup = batch.get("speedup")
        splice = spec.get("splice", {})
        self._splice_overhead = float(splice.get("overhead_fraction", 0.1))
        parallel = spec.get("parallel", {})
        self._parallel_residual = float(
            parallel.get("residual_fraction", 0.3)
        )
        self._parallel_overhead = float(
            parallel.get("overhead_seconds", 0.01)
        )
        self._lock = threading.Lock()
        self._scales: Dict[str, float] = {}
        self._updates = 0
        self._predicted_total = 0.0
        self._actual_total = 0.0
        self._abs_error_total = 0.0

    # -- construction ---------------------------------------------------

    @classmethod
    def from_spec(cls, spec: dict) -> "CostModel":
        return cls(spec)

    @classmethod
    def from_file(cls, path) -> "CostModel":
        return cls(json.loads(Path(path).read_text()))

    # -- prediction -----------------------------------------------------

    def _solo_seconds(self, backend: str, mode: str, work: float) -> float:
        key = f"{backend}-{mode}"
        curve = self._base.get(key)
        if curve is None:
            # Unknown mode (e.g. "splice" routed here by mistake) falls
            # back to the compiled curve of the same backend.
            curve = self._base[f"{backend}-compiled"]
        return _interp(curve, work)

    def _batch_speedup_at(self, work: float, lanes: float) -> float:
        if not self._batch_speedup:
            return max(1.0, min(lanes, 4.0))
        speedup = _bilinear(
            self._batch_work, self._batch_lanes,
            self._batch_speedup, work, lanes,
        )
        return max(speedup, 0.2)

    def predict_raw(self, plan, features: RequestFeatures) -> float:
        """Artifact-only prediction (no online correction), in seconds.

        The returned cost covers the *whole request*: for a group of
        ``features.lanes`` structurally identical nets it is the
        group-total time, so batched and sequential strategies compare
        directly.
        """
        work = float(features.work)
        mode = plan.schedule_mode
        if mode == "splice":
            base = self._solo_seconds(plan.backend, "compiled", work)
            fraction = min(max(features.dirty_fraction, 0.0), 1.0)
            return base * (fraction + self._splice_overhead)
        if plan.batch_axis:
            per_lane = self._solo_seconds("soa", "compiled", work)
            speedup = self._batch_speedup_at(work, float(features.lanes))
            return per_lane * features.lanes / speedup
        base = self._solo_seconds(plan.backend, mode, work)
        if plan.parallel:
            jobs = max(features.jobs, 1)
            residual = self._parallel_residual
            return (
                base * (residual + (1.0 - residual) / jobs)
                + self._parallel_overhead
            )
        return base * features.lanes

    def predict(self, plan, features: RequestFeatures) -> float:
        """Predicted seconds for ``plan``, online correction applied."""
        raw = self.predict_raw(plan, features)
        with self._lock:
            scale = self._scales.get(plan.strategy, 1.0)
        return raw * scale

    # -- online refinement ----------------------------------------------

    def observe(self, plan, features: RequestFeatures, seconds: float) -> None:
        """Fold one measured execution into the online correction.

        The per-strategy scale moves by an EMA of the clamped
        measured/predicted ratio; the cumulative predicted-vs-actual
        error (surfaced by ``/stats``) is accounted *before* the update,
        so it reflects the predictions routing actually used.
        """
        if seconds <= 0.0:
            return
        raw = self.predict_raw(plan, features)
        if raw <= 0.0:
            return
        key = plan.strategy
        with self._lock:
            scale = self._scales.get(key, 1.0)
            predicted = raw * scale
            self._updates += 1
            self._predicted_total += predicted
            self._actual_total += seconds
            self._abs_error_total += abs(predicted - seconds)
            ratio = seconds / raw
            low, high = _RATIO_CLAMP
            ratio = min(max(ratio, low), high)
            self._scales[key] = (1.0 - EMA_ALPHA) * scale + EMA_ALPHA * ratio
        # Outside the lock: the registry has its own.  A scrape of this
        # histogram reads calibration drift without a live /stats —
        # what `repro replay` and offline refits consume.
        from repro.obs.metrics import ROUTING_ERROR_BUCKETS, default_registry

        default_registry().histogram(
            "repro_routing_abs_error_seconds",
            "Absolute predicted-vs-actual error per routed execution.",
            ROUTING_ERROR_BUCKETS,
        ).observe(abs(predicted - seconds), strategy=key)

    def stats(self) -> dict:
        """Observability snapshot (the ``/stats`` ``routing.model`` block)."""
        with self._lock:
            return {
                "version": self.version,
                "online_updates": self._updates,
                "predicted_seconds": self._predicted_total,
                "actual_seconds": self._actual_total,
                "abs_error_seconds": self._abs_error_total,
                "scales": dict(self._scales),
            }


def default_model() -> CostModel:
    """The process-wide model over the committed default artifact.

    One shared instance means online corrections learned by any pool
    benefit every later router in the process — mirroring how the
    serving layer shares caches across requests.
    """
    global _default_model
    with _default_lock:
        if _default_model is None:
            _default_model = CostModel.from_file(_DEFAULT_PATH)
        return _default_model
