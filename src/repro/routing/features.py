"""Per-request feature extraction for execution routing.

A :class:`RequestFeatures` vector is everything the router and the cost
model are allowed to look at: quantities that are *already known* before
any solving happens — tree/schedule size counters, the library size, how
many structurally identical lanes arrived together, how many worker
processes the pool holds, and (for incremental sessions) the fraction of
the schedule the splice interpreter is expected to re-execute.  Feature
extraction never triggers validation, plan building or compilation; for
a plain :class:`~repro.tree.routing_tree.RoutingTree` the instruction
count is a closed-form estimate of what :func:`compile_net` would emit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional, Union

from repro.core.schedule import CompiledNet
from repro.library.library import BufferLibrary
from repro.tree.routing_tree import RoutingTree

#: Request kinds the router distinguishes: a (possibly grouped) solve
#: versus an incremental-session resolve.
KINDS = ("solve", "session")


@dataclass(frozen=True)
class RequestFeatures:
    """The feature vector of one routable request.

    Attributes:
        positions: Legal buffer positions ``n`` of one net (the DP's
            outer work axis).
        sinks: Sink count of one net.
        library_size: Buffer types ``b`` (the DP's inner work axis).
        instructions: Compiled schedule length (exact for a
            :class:`CompiledNet`, estimated for a plain tree) — the
            quantity the partitioned-solve threshold is expressed in.
        lanes: Structurally identical nets arriving as one group
            (``1`` for a solo solve) — the batch-axis width.
        jobs: Worker processes available to the caller's pool.
        dirty_fraction: For ``kind="session"``, the fraction of the
            schedule expected to re-execute after the pending edits
            (``1.0`` means a full re-run; scratch solves always use
            ``1.0``).
        kind: ``"solve"`` or ``"session"``.
    """

    positions: int
    sinks: int
    library_size: int
    instructions: int
    lanes: int = 1
    jobs: int = 1
    dirty_fraction: float = 1.0
    kind: str = "solve"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )

    @property
    def work(self) -> int:
        """The DP work product ``positions^2 * library_size`` — the
        cost model's piecewise-linear abscissa.

        Quadratic in ``n`` because that is the paper's complexity
        (O(b n^2)): candidate-list lengths grow with the subtree they
        summarize, so per-position cost is itself ~linear in ``n``.  A
        linear ``n * b`` axis systematically underpredicts sink-heavy
        nets whose lists are long at small position counts.
        """
        return self.positions * self.positions * self.library_size

    def with_(self, **changes) -> "RequestFeatures":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-dict form (workload-log JSONL payload)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RequestFeatures":
        """Inverse of :meth:`to_dict`; ignores unknown keys so old logs
        survive feature-vector growth."""
        names = {field for field in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})


def estimate_instructions(tree: RoutingTree) -> int:
    """What ``len(compile_net(tree, ...).ops)`` will be, without compiling.

    The flattener emits one instruction per sink, one per edge (every
    non-root node has exactly one entry edge), one per buffer position,
    and one merge per extra child — and because every leaf is a sink,
    the merge count collapses to ``num_sinks - 1`` for any topology.
    """
    return (
        2 * tree.num_sinks
        + tree.num_nodes
        + tree.num_buffer_positions
        - 2
    )


def features_of(
    net: Union[RoutingTree, CompiledNet],
    library: Optional[BufferLibrary] = None,
    *,
    lanes: int = 1,
    jobs: int = 1,
    dirty_fraction: float = 1.0,
    kind: str = "solve",
) -> RequestFeatures:
    """Extract the routing feature vector from a net, without solving.

    Args:
        net: A plain tree or a compiled schedule.  Compiled nets carry
            exact counters; trees use :func:`estimate_instructions`.
        library: The buffer library (its size is a feature).  Optional
            for a :class:`CompiledNet`, which remembers its library.
        lanes: Group width this net arrived with (batch axis).
        jobs: Worker processes available.
        dirty_fraction: Expected re-executed schedule fraction
            (sessions only; see :class:`RequestFeatures`).
        kind: ``"solve"`` or ``"session"``.
    """
    if isinstance(net, CompiledNet):
        lib = library if library is not None else net.library
        return RequestFeatures(
            positions=net.num_buffer_positions,
            sinks=net.num_sinks,
            library_size=lib.size,
            instructions=net.num_instructions,
            lanes=lanes,
            jobs=jobs,
            dirty_fraction=dirty_fraction,
            kind=kind,
        )
    if library is None:
        raise ValueError("library is required for a plain RoutingTree")
    return RequestFeatures(
        positions=net.num_buffer_positions,
        sinks=net.num_sinks,
        library_size=library.size,
        instructions=estimate_instructions(net),
        lanes=lanes,
        jobs=jobs,
        dirty_fraction=dirty_fraction,
        kind=kind,
    )
