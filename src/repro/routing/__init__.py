"""Cost-model-driven execution routing.

The repository accumulated four genuinely different ways to solve the
same net — object vs SoA candidate stores, walk vs compiled schedules,
scratch vs incremental splice, sequential vs batch-axis vs partitioned
parallel — and, until this package, four scattered hardcoded rules for
picking between them.  Routing pulls every one of those dispatch
decisions behind a single observable seam:

* :mod:`repro.routing.features` — a cheap per-request feature vector
  (positions, sinks, library size, instruction count, lanes, workers,
  edit dirty-fraction) extracted from a
  :class:`~repro.core.schedule.CompiledNet` or tree without solving.
* :mod:`repro.routing.cost_model` — a per-strategy latency predictor,
  piecewise-linear in the DP work product ``positions x library_size``,
  fitted offline from the committed ``BENCH_PR*.json`` sweeps (the
  versioned artifact ``model_default.json`` ships with the package) and
  refined online by EMA updates from measured solve times.
* :mod:`repro.routing.router` — ``route(features) -> ExecutionPlan``
  with ``policy="static" | "model" | "always_*"`` escape hatches.
  ``static`` reproduces the legacy hardcoded heuristics bit-for-bit;
  ``model`` asks the cost model; ``always_*`` pins an axis.
* :mod:`repro.routing.workload` — an opt-in JSONL workload log written
  by :class:`~repro.core.batch.SolverPool` and the server, plus
  :func:`~repro.routing.workload.replay`, which re-runs a captured log
  under any policy and reports per-request and aggregate regret
  against the observed best plan.

The doctrine is unchanged from every earlier subsystem: routing may
only *pick* answers, never change them.  ``tests/test_routing.py``
proves every plan the router can emit bit-identical to the object/walk
reference path.
"""

from repro.routing.cost_model import CostModel, default_model
from repro.routing.features import RequestFeatures, features_of
from repro.routing.router import (
    POLICIES,
    ExecutionPlan,
    Router,
    default_policy,
    set_default_policy,
)
from repro.routing.workload import WorkloadLog, read_log, replay

__all__ = [
    "CostModel",
    "ExecutionPlan",
    "POLICIES",
    "RequestFeatures",
    "Router",
    "WorkloadLog",
    "default_model",
    "default_policy",
    "features_of",
    "read_log",
    "replay",
    "set_default_policy",
]
