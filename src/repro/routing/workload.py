"""Workload capture and offline replay for execution routing.

**Capture.**  A :class:`WorkloadLog` is an opt-in, append-only JSONL
file: one line per routed request, recording the request digest, the
routing feature vector, the chosen :class:`ExecutionPlan`, the policy
that chose it, and the measured wall seconds.  ``capture="full"``
additionally embeds the serialized net(s), library and (for sessions)
edits, which is what makes a log *replayable* on another machine or
under another policy.  :class:`~repro.core.batch.SolverPool` and the
HTTP server write these logs when asked (``workload_log=``; the CLI
exposes ``repro serve --workload-log``).

**Replay.**  :func:`replay` re-runs a captured log under any set of
policies and reports *regret*: for every request it measures every
candidate plan once (best-of-``repeats`` wall time), checks the
results bit-identical across plans, and then charges each policy the
measured time of the plan it would have chosen.  Because every policy
is priced from the same measurement table, the comparison is
deterministic given one replay run: the oracle is the per-request
minimum, and a policy's regret is how far above that minimum its
choices land.  ``repro replay`` is the CLI wrapper;
``benchmarks/bench_routing.py`` turns the same report into the gated
``BENCH_PR8.json``.

The log schema (``v: 1``) is locked by the committed corpus
``tests/data/workload_mixed.jsonl`` and its tier-1 replay test.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.schedule import CompiledNet, auto_compile, compile_net
from repro.core.solution import BufferingResult
from repro.errors import ReproError
from repro.routing.features import RequestFeatures
from repro.routing.router import ExecutionPlan, Router

#: Workload-log schema version (bump on breaking record changes).
SCHEMA_VERSION = 1

#: Keys every record carries, whatever its kind.
RECORD_KEYS = (
    "v", "kind", "digest", "policy", "algorithm", "options",
    "plan", "features", "seconds",
)

#: Record kinds.
KINDS = ("solve", "batch", "session")


class ReplayError(ReproError):
    """A workload log cannot be replayed (schema or payload problem)."""


def compiled_digest(net: CompiledNet) -> str:
    """A content digest of one compiled net (payload + library).

    The serving layer keys requests by the canonical tree digest
    (:mod:`repro.service.canon`); a pool fed bare compiled nets has no
    tree to canonicalize, so the workload log hashes the flat schedule
    payload instead — equal payloads solve identically, which is all a
    log consumer needs the digest for (dedup and corpus bookkeeping).
    """
    from repro.service.canon import driver_key, library_key

    digest = hashlib.sha1()
    digest.update(bytes(net.ops))
    for array in (
        net.args, net.wire_r, net.wire_c,
        net.sink_node, net.sink_q, net.sink_c,
    ):
        digest.update(memoryview(array).cast("B"))
    digest.update(library_key(net.library).encode())
    digest.update(driver_key(net.driver).encode())
    return digest.hexdigest()


def group_digest(nets: Sequence[CompiledNet]) -> str:
    """Digest of a structural group: the lane digests, in lane order."""
    digest = hashlib.sha1()
    for net in nets:
        digest.update(compiled_digest(net).encode())
    return digest.hexdigest()


class WorkloadLog:
    """An append-only JSONL log of routed requests (thread-safe).

    Args:
        path: Log file path (opened lazily, appended to) or any object
            with a ``write(str)`` method.
        capture: ``"features"`` (default) records digests, features,
            plans and timings only; ``"full"`` additionally asks the
            caller to attach replayable payloads (nets, library, edits)
            via ``payload=``.
    """

    def __init__(self, path, capture: str = "features") -> None:
        if capture not in ("features", "full"):
            raise ValueError(
                f"capture must be 'features' or 'full', got {capture!r}"
            )
        self.capture = capture
        self.records_written = 0
        self._lock = threading.Lock()
        if hasattr(path, "write"):
            self.path: Optional[Path] = None
            self._file = path
        else:
            self.path = Path(path)
            self._file = None

    def record(
        self,
        kind: str,
        *,
        digest: str,
        features: RequestFeatures,
        plan: ExecutionPlan,
        policy: str,
        seconds: float,
        algorithm: str = "fast",
        options: Optional[dict] = None,
        payload: Optional[dict] = None,
    ) -> dict:
        """Append one record; returns the dict that was written."""
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        entry = {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "digest": digest,
            "policy": policy,
            "algorithm": algorithm,
            "options": dict(options or {}),
            "plan": plan.to_dict(),
            "features": features.to_dict(),
            "seconds": seconds,
        }
        if payload and self.capture == "full":
            entry.update(payload)
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            if self._file is None:
                self._file = self.path.open("a")
            self._file.write(line + "\n")
            self._file.flush()
            self.records_written += 1
        return entry

    def close(self) -> None:
        with self._lock:
            if self._file is not None and self.path is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "WorkloadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_log(path) -> List[dict]:
    """Parse a JSONL workload log, validating the schema version."""
    records = []
    for number, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReplayError(f"{path}:{number}: not JSON: {exc}") from exc
        if record.get("v") != SCHEMA_VERSION:
            raise ReplayError(
                f"{path}:{number}: unsupported record version "
                f"{record.get('v')!r} (expected {SCHEMA_VERSION})"
            )
        missing = [key for key in RECORD_KEYS if key not in record]
        if missing:
            raise ReplayError(f"{path}:{number}: record lacks {missing}")
        if record["kind"] not in KINDS:
            raise ReplayError(
                f"{path}:{number}: unknown kind {record['kind']!r}"
            )
        records.append(record)
    return records


# -- replay ------------------------------------------------------------


def _result_fingerprint(result: BufferingResult) -> tuple:
    """Everything a solve answers, minus wall time and store label —
    the bit-identity contract routing must preserve."""
    stats = result.stats
    return (
        result.slack,
        tuple(sorted(result.assignment.items())),
        result.driver_load,
        stats.algorithm,
        stats.num_buffer_positions,
        stats.library_size,
        stats.root_candidates,
        stats.peak_list_length,
        stats.candidates_generated,
    )


def _supports_batch(library, algorithm: str, options: dict) -> bool:
    """Mirror of ``SolverPool._context_supports_batch_axis``."""
    from repro.core.registry import get_algorithm
    from repro.core.stores import resolve_backend
    from repro.core.stores.batch_axis import batch_axis_available
    from repro.errors import AlgorithmError

    if resolve_backend("auto") != "soa" or not batch_axis_available():
        return False
    try:
        get_algorithm(algorithm).add_buffer_op("soa", library, **options)
    except AlgorithmError:
        return False
    return True


class _LoadedRequest:
    """One record rehydrated into executable form."""

    def __init__(self, record: dict, index: int) -> None:
        from repro.tree.io import library_from_dict, tree_from_dict

        self.record = record
        self.index = index
        self.kind = record["kind"]
        self.algorithm = record["algorithm"]
        self.options = dict(record["options"])
        if "library" not in record:
            raise ReplayError(
                f"record {index}: no embedded library — only "
                "capture='full' logs can be replayed"
            )
        self.library = library_from_dict(record["library"])
        self.features = RequestFeatures.from_dict(record["features"])
        if self.kind == "batch":
            self.tree_dicts = record["nets"]
        else:
            self.tree_dicts = [record["net"]]
        self.trees = [tree_from_dict(data) for data in self.tree_dicts]
        self.compiled = [
            compile_net(tree, self.library) for tree in self.trees
        ]
        self.edits = record.get("edits", [])

    def fresh_trees(self):
        from repro.tree.io import tree_from_dict

        return [tree_from_dict(data) for data in self.tree_dicts]


def _measure_solve(
    loaded: _LoadedRequest, plan: ExecutionPlan, repeats: int
) -> tuple:
    """Best-of-``repeats`` seconds and the results for a solo/batch plan."""
    from repro.core.api import insert_buffers
    from repro.core.schedule import run_compiled_group

    library = loaded.library
    algorithm = loaded.algorithm
    options = loaded.options
    best = None
    results: List[BufferingResult] = []
    for _ in range(max(repeats, 1)):
        if plan.batch_axis:
            start = time.perf_counter()
            results = run_compiled_group(
                loaded.compiled, library,
                algorithm=algorithm, options=options,
            )
            elapsed = time.perf_counter() - start
        elif plan.schedule_mode == "walk":
            with auto_compile(False):
                start = time.perf_counter()
                results = [
                    insert_buffers(
                        tree, library, algorithm=algorithm,
                        backend=plan.backend, **options,
                    )
                    for tree in loaded.trees
                ]
                elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            results = [
                insert_buffers(
                    net, library, algorithm=algorithm,
                    backend=plan.backend, **options,
                )
                for net in loaded.compiled
            ]
            elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, results


def _measure_session(
    loaded: _LoadedRequest, plan: ExecutionPlan, repeats: int
) -> tuple:
    """Best-of-``repeats`` resolve seconds and the result for a session.

    ``splice`` times the incremental dirty-path resolve after the
    recorded edits; ``compiled`` times the from-scratch alternative
    (compile + interpret the edited net) the router weighs it against.
    The baseline solve and the edit application are setup, not timed.
    """
    from repro.core.api import insert_buffers
    from repro.incremental.engine import IncrementalSolver

    best = None
    result: Optional[BufferingResult] = None
    for _ in range(max(repeats, 1)):
        tree = loaded.fresh_trees()[0]
        solver = IncrementalSolver(
            tree, loaded.library, algorithm=loaded.algorithm,
            backend=plan.backend, **loaded.options,
        )
        solver.resolve()
        for edit in loaded.edits:
            solver.apply(edit)
        if plan.schedule_mode == "splice":
            start = time.perf_counter()
            result = solver.resolve()
            elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            compiled = compile_net(solver.tree, loaded.library)
            result = insert_buffers(
                compiled, loaded.library, algorithm=loaded.algorithm,
                backend=plan.backend, **loaded.options,
            )
            elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, [result]


def replay(
    records: Union[Sequence[dict], str, Path],
    policies: Sequence[str] = ("static", "model"),
    repeats: int = 3,
    parallel_threshold: Optional[int] = None,
) -> dict:
    """Re-run a captured workload under ``policies``; report regret.

    Every candidate plan of every request is measured once
    (best-of-``repeats``); plans must agree bit-identically or the
    replay aborts with :class:`ReplayError` — a routing bug, not a
    measurement artifact.  Policies are then priced from that shared
    table.  ``"static"`` (the legacy heuristics) is always evaluated,
    requested or not, because it is the baseline the gate compares
    against.  Partitioned plans are excluded: replay runs in-process,
    and a one-process pool cannot measure multi-process speedups
    honestly.

    Returns the report dict (see ``docs/benchmarks.md`` for the field
    reference used by ``BENCH_PR8.json``).
    """
    if isinstance(records, (str, Path)):
        records = read_log(records)
    from repro.routing.cost_model import CostModel, _DEFAULT_PATH

    # A private model instance keeps replay deterministic: the shared
    # default model may carry online corrections from earlier solves.
    model = CostModel.from_file(_DEFAULT_PATH)
    policy_names = list(dict.fromkeys(["static", *policies]))
    routers = {
        name: Router(
            policy=name, model=model, parallel_threshold=parallel_threshold
        )
        for name in policy_names
    }

    totals = {name: 0.0 for name in policy_names}
    regrets = {name: 0.0 for name in policy_names}
    decisions: Dict[str, Dict[str, int]] = {
        name: {} for name in policy_names
    }
    oracle_total = 0.0
    logged_total = 0.0
    per_request = []
    parity_checked = 0

    for index, record in enumerate(records):
        loaded = _LoadedRequest(record, index)
        features = loaded.features
        supports_batch = (
            loaded.kind == "batch"
            and _supports_batch(loaded.library, loaded.algorithm,
                                loaded.options)
        )
        enumerator = routers["static"]
        if loaded.kind == "session":
            from repro.core.stores import resolve_backend

            backend = resolve_backend("auto")
            candidates = enumerator.candidate_plans(
                features, backend=backend
            )
        else:
            candidates = enumerator.candidate_plans(
                features,
                supports_batch=supports_batch,
                supports_walk=True,
            )

        measured: Dict[str, float] = {}
        reference: Optional[List[tuple]] = None
        for plan in candidates:
            if loaded.kind == "session":
                seconds, results = _measure_session(loaded, plan, repeats)
            else:
                seconds, results = _measure_solve(loaded, plan, repeats)
            measured[plan.strategy] = seconds
            fingerprints = [_result_fingerprint(r) for r in results]
            if reference is None:
                reference = fingerprints
            elif fingerprints != reference:
                raise ReplayError(
                    f"record {index}: plan {plan.strategy} changed the "
                    "answer — routing parity violated"
                )
            parity_checked += 1

        best_strategy = min(measured, key=measured.get)
        best_seconds = measured[best_strategy]
        oracle_total += best_seconds
        logged_total += record["seconds"]

        chosen = {}
        for name in policy_names:
            if loaded.kind == "session":
                plan = routers[name].route(features, backend=backend)
            else:
                plan = routers[name].route(
                    features,
                    supports_batch=supports_batch,
                    supports_walk=True,
                )
            if plan.strategy not in measured:
                raise ReplayError(
                    f"record {index}: policy {name} chose unmeasured "
                    f"plan {plan.strategy}"
                )
            chosen[name] = plan.strategy
            totals[name] += measured[plan.strategy]
            regrets[name] += measured[plan.strategy] - best_seconds
            bucket = decisions[name]
            bucket[plan.strategy] = bucket.get(plan.strategy, 0) + 1

        per_request.append({
            "index": index,
            "kind": loaded.kind,
            "digest": record["digest"],
            "features": features.to_dict(),
            "measured_seconds": measured,
            "best": best_strategy,
            "logged_seconds": record["seconds"],
            "chosen": chosen,
            "regret_seconds": {
                name: measured[chosen[name]] - best_seconds
                for name in policy_names
            },
        })

    report_policies = {}
    static_total = totals["static"]
    for name in policy_names:
        total = totals[name]
        report_policies[name] = {
            "total_seconds": total,
            "regret_seconds": regrets[name],
            "speedup_vs_oracle": oracle_total / total if total else 1.0,
            "speedup_vs_static": static_total / total if total else 1.0,
            "decisions_by_strategy": decisions[name],
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "requests": len(records),
        "repeats": repeats,
        "parity_checked": parity_checked,
        "model_version": model.version,
        "oracle_seconds": oracle_total,
        "logged_seconds": logged_total,
        "policies": report_policies,
        "per_request": per_request,
    }
