"""Edit-replay benchmark of the incremental engine: ``BENCH_PR5.json``.

Replays a randomized single-edit ECO workload over the Figure 4 trunk
(the paper's long-candidate-list net) and measures, per edit, an
incremental session re-solve against a from-scratch
:func:`~repro.core.api.insert_buffers` of the identically edited net —
asserting **bit-identical** slack at every step, so the speedups below
can never come from solving a different problem.

The replay mixes the three canonical ECO edit classes:

* ``sink`` — the trunk's sink moves its required arrival or load
  (alternating RAT/cap).  On a *trunk* this is the engine's worst case
  by construction: every vertex is an ancestor of the single sink, so
  the dirty path is the whole net and the re-solve degenerates to a
  full solve plus capture overhead (expected speedup ~1x; reported
  honestly).
* ``wire`` — a uniformly random segment is re-parasitized (re-route /
  re-length).  The subtree below the segment is clean and splices from
  the frontier cache; cost is the path above, so speedups range from
  ~1x (sink-side edits) to ~100x (driver-side edits).
* ``driver`` — the source driver is resized.  The driver sits outside
  every subtree digest, so the re-solve is a single argmax over the
  memoized root frontier (three to four orders of magnitude faster).

Per position count and backend the file records each class's
total-time speedup and the **headline: the geometric mean of per-edit
speedups over the whole mix** — the standard cross-workload benchmark
aggregate, which weights every edit equally instead of letting the
slowest class's wall time drown out the others.  A multi-sink companion
net (where dirty paths are genuinely short and *every* class wins) is
measured alongside for context; the CI gate reads the trunk numbers.

``ci_gate`` thresholds are embedded in the output and enforced by
``tools/perf_gate.py`` against a freshly generated file: at every point
with at least ``min_positions`` actual positions, each backend's
headline geomean speedup must be at least ``min_speedup``.

Run::

    PYTHONPATH=src python benchmarks/bench_incremental.py \\
        [--out BENCH_PR5.json] [--scale 1.0] [--edits-per-class 6]
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import os
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.api import insert_buffers
from repro.core.schedule import clear_schedule_cache
from repro.experiments.workloads import FIG4_NET, build_net
from repro.incremental import (
    IncrementalSolver,
    SetSinkCap,
    SetSinkRAT,
    SetWire,
    SwapDriver,
)
from repro.library.generators import paper_library
from repro.tree.builders import random_tree_net
from repro.tree.node import Driver
from repro.tree.segmenting import segment_to_position_count
from repro.units import ps

#: Figure 4 position counts at scale 1.0 (subset of the full sweep —
#: the replay solves from scratch once per edit, so the n^2 points are
#: budgeted carefully; 1000+ is where the CI gate applies).
TRUNK_SWEEP = (1000, 4000, 8000)
LIBRARY_SIZE = 32

CI_GATE = {
    # Points with at least this many *actual* positions are gated.
    "min_positions": 1000,
    # Geometric-mean per-edit speedup floor on the gated backend.
    "min_speedup": 5.0,
    # The gate pins the production path: whatever backend="auto"
    # resolves to on the measuring machine ("backend" is filled in at
    # generation time).  The other backend's replay is still recorded
    # for trend tracking, just not gated — its slowest class (object
    # full-path re-solves pay eager per-candidate capture) sits close
    # enough to the floor that CI noise would make the gate flaky.
}


def _backends() -> List[str]:
    from repro.core.stores import resolve_backend

    return ["object"] if resolve_backend("auto") == "object" else [
        "object", "soa"
    ]


def _edit_classes(tree, rng) -> Dict[str, Callable]:
    sinks = [
        (node.node_id, node.required_arrival, node.capacitance)
        for node in tree.sinks()
    ]
    internals = [
        node.node_id for node in tree.nodes()
        if not node.is_sink and not node.is_source
    ]

    def sink_edit():
        node, rat, cap = rng.choice(sinks)
        if rng.random() < 0.5:
            return SetSinkRAT(node=node,
                              required_arrival=rat * rng.uniform(0.85, 1.15))
        return SetSinkCap(node=node,
                          capacitance=cap * rng.uniform(0.7, 1.4))

    def wire_edit():
        node = rng.choice(internals)
        edge = tree.edge_to(node)
        return SetWire(
            node=node,
            resistance=edge.resistance * rng.uniform(0.6, 1.6),
            capacitance=edge.capacitance * rng.uniform(0.6, 1.6),
        )

    def driver_edit():
        return SwapDriver(resistance=rng.uniform(100.0, 400.0))

    return {"sink": sink_edit, "wire": wire_edit, "driver": driver_edit}


def replay(
    tree, library, backend: str, edits_per_class: int, seed: int,
    classes: Optional[List[str]] = None,
) -> Dict:
    """One edit-replay measurement on ``tree`` (which it mutates)."""
    rng = random.Random(seed)
    solver = IncrementalSolver(tree, library, algorithm="fast",
                               backend=backend)
    started = time.perf_counter()
    baseline = solver.resolve()
    initial_seconds = time.perf_counter() - started

    makers = _edit_classes(tree, rng)
    if classes is not None:
        makers = {name: makers[name] for name in classes}
    # Interleave classes so background drift hits all of them equally.
    schedule = [
        name for _ in range(edits_per_class) for name in makers
    ]
    per_class: Dict[str, Dict[str, object]] = {
        name: {"incremental_seconds": 0.0, "scratch_seconds": 0.0,
               "edits": 0, "speedups": []}
        for name in makers
    }
    log_speedups: List[float] = []
    fractions: List[float] = []

    for name in schedule:
        edit = makers[name]()
        started = time.perf_counter()
        solver.apply(edit)
        result = solver.resolve()
        incremental = time.perf_counter() - started
        # The scratch rival pays what any stateless caller pays for the
        # edited net: validate + plan + compile + solve (the edit
        # invalidated the schedule cache, exactly as it would for them).
        started = time.perf_counter()
        scratch = insert_buffers(tree, library, algorithm="fast",
                                 backend=backend)
        scratch_seconds = time.perf_counter() - started
        if result.slack != scratch.slack:  # pragma: no cover - honesty guard
            raise AssertionError(
                f"incremental/scratch mismatch after {name} edit: "
                f"{result.slack} != {scratch.slack}"
            )
        bucket = per_class[name]
        bucket["incremental_seconds"] += incremental
        bucket["scratch_seconds"] += scratch_seconds
        bucket["edits"] += 1
        speedup = scratch_seconds / incremental if incremental else float("inf")
        bucket["speedups"].append(speedup)
        log_speedups.append(math.log(speedup))
        fractions.append(solver.last_executed_fraction)

    for bucket in per_class.values():
        speedups = bucket.pop("speedups")
        bucket["speedup_total"] = (
            bucket["scratch_seconds"] / bucket["incremental_seconds"]
            if bucket["incremental_seconds"] else float("inf")
        )
        bucket["speedup_geomean"] = math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        )

    cache_stats = solver.stats()["frontier_cache"]
    return {
        "backend": backend,
        "initial_solve_seconds": initial_seconds,
        "baseline_slack_seconds": baseline.slack,
        "edits": len(schedule),
        "classes": per_class,
        "geomean_speedup": math.exp(sum(log_speedups) / len(log_speedups)),
        "mean_executed_fraction": sum(fractions) / len(fractions),
        "frontier_cache": {
            "entries": cache_stats["entries"],
            "bytes": cache_stats["bytes"],
            "hit_rate": cache_stats["hit_rate"],
        },
    }


def measure_trunk(scale: float, edits_per_class: int) -> Dict:
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    points = []
    for target in TRUNK_SWEEP:
        positions = max(int(target * scale), 50)
        per_point = edits_per_class if target <= 4000 else max(
            2, edits_per_class // 2
        )
        for backend in _backends():
            clear_schedule_cache()
            tree = copy.deepcopy(build_net(FIG4_NET,
                                           positions_override=positions))
            row = replay(tree, library, backend, per_point,
                         seed=target + len(backend))
            row["positions"] = positions
            row["target_positions"] = target
            points.append(row)
    return {
        "net": FIG4_NET.name,
        "algorithm": "fast",
        "library_size": LIBRARY_SIZE,
        "points": points,
    }


def measure_multi_sink(scale: float, edits_per_class: int) -> Dict:
    """Companion: a branchy net where dirty paths are genuinely short."""
    positions = max(int(2000 * scale), 100)
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    base = random_tree_net(
        50, seed=50, required_arrival=(ps(500.0), ps(3000.0)),
        driver=Driver(resistance=200.0),
    )
    rows = []
    for backend in _backends():
        clear_schedule_cache()
        tree = segment_to_position_count(copy.deepcopy(base), positions)
        # Sink and wire edits only: this net exists to show the
        # dirty-path claim without the driver class's huge numbers.
        row = replay(
            tree, library, backend, edits_per_class, seed=11,
            classes=["sink", "wire"],
        )
        row["positions"] = positions
        rows.append(row)
    return {"net": "random50", "positions_target": 2000, "points": rows}


def collect(scale: float, edits_per_class: int) -> Dict:
    from repro.core.stores import resolve_backend

    ci_gate = dict(CI_GATE, backend=resolve_backend("auto"))
    return {
        "meta": {
            "bench": "PR5 incremental ECO re-solve engine",
            "scale": scale,
            "edits_per_class": edits_per_class,
            "python": sys.version.split()[0],
            "backends": _backends(),
            "workload": (
                "single-edit replay: apply one random edit "
                "(sink RAT/cap | wire re-parasitize | driver swap), "
                "incremental resolve vs from-scratch insert_buffers of "
                "the same edited net, bit-identity asserted per edit; "
                "headline = geometric mean of per-edit speedups"
            ),
        },
        "ci_gate": ci_gate,
        "incremental": measure_trunk(scale, edits_per_class),
        "multi_sink": measure_multi_sink(scale, edits_per_class),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Persist the PR5 incremental-engine trajectory to JSON.")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR5.json",
        help="output path (default: BENCH_PR5.json at the repo root)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="instance scale factor (default: $REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument("--edits-per-class", type=int, default=6,
                        help="replay length per edit class (default 6; "
                             "halved at the largest point)")
    args = parser.parse_args(argv)

    payload = collect(args.scale, args.edits_per_class)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"incremental edit replay ({payload['incremental']['net']}, "
          f"fast, b={LIBRARY_SIZE}):")
    for point in payload["incremental"]["points"]:
        classes = point["classes"]
        detail = "  ".join(
            f"{name} {bucket['speedup_total']:.2f}x"
            for name, bucket in classes.items()
        )
        print(f"  n={point['positions']:>5} {point['backend']:<7}"
              f" geomean {point['geomean_speedup']:8.2f}x   {detail}")
    for row in payload["multi_sink"]["points"]:
        detail = "  ".join(
            f"{name} {bucket['speedup_total']:.2f}x"
            for name, bucket in row["classes"].items()
        )
        print(f"  multi-sink n={row['positions']:>5} {row['backend']:<7}"
              f" geomean {row['geomean_speedup']:8.2f}x   {detail}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
