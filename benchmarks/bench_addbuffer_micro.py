"""Ablation — the add-buffer operation in isolation: O(bk) vs O(k + b).

This is the paper's Section 3 claim stripped of everything else: on a
synthetic nonredundant candidate list of length k, time the Lillis scan
against the convex-prune + hull-walk generation.  It also covers the
paper's remark that at small b the new operation carries a slight
overhead from ``Convexpruning`` — visible here as the b = 2 ratio.

Run: ``pytest benchmarks/bench_addbuffer_micro.py --benchmark-only``
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.buffer_ops import BufferPlan, generate_fast, generate_lillis
from repro.core.candidate import Candidate, SinkDecision
from repro.core.pruning import prune_dominated
from repro.library.generators import paper_library

LIST_LENGTHS = (100, 1000, 4000)
LIBRARY_SIZES = (2, 8, 64)


def synthetic_list(length: int, seed: int = 0):
    """A nonredundant candidate list of exactly ~length entries.

    Q grows concavely with C with noise, so a realistic fraction of the
    list survives convex pruning rather than the hull collapsing to two
    points.
    """
    rng = random.Random(seed)
    cands = []
    c = 0.0
    for i in range(length):
        c += rng.uniform(0.5e-15, 2.0e-15)
        q = 1e-9 * math.sqrt(i + 1) + rng.uniform(0.0, 2e-11)
        cands.append(Candidate(q=q, c=c, decision=SinkDecision(i)))
    cands.sort(key=lambda cand: cand.c)
    out = prune_dominated(cands)
    assert len(out) >= 0.5 * length
    return out


@pytest.mark.parametrize("length", LIST_LENGTHS)
@pytest.mark.parametrize("size", LIBRARY_SIZES)
@pytest.mark.parametrize("op", ["lillis", "fast"])
def test_addbuffer_micro(benchmark, length, size, op):
    cands = synthetic_list(length)
    plan = BufferPlan(0, paper_library(size).buffers)
    generate = generate_lillis if op == "lillis" else generate_fast
    benchmark.extra_info.update(list_length=len(cands), library_size=size)
    result = benchmark(generate, cands, plan)
    assert len(result) >= 1


def test_addbuffer_asymptotics(benchmark):
    """Measured work ratio must scale with b (the whole point).

    At k = 4000: lillis does ~b*k candidate evaluations, fast does
    ~k + b.  The wall-clock ratio at b = 64 should exceed the ratio at
    b = 2 by a wide margin.
    """
    import time

    cands = synthetic_list(4000)

    def measure(op, size):
        plan = BufferPlan(0, paper_library(size).buffers)
        generate = generate_lillis if op == "lillis" else generate_fast
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            generate(cands, plan)
            best = min(best, time.perf_counter() - start)
        return best

    def ratios():
        return {
            size: measure("lillis", size) / measure("fast", size)
            for size in (2, 64)
        }

    result = benchmark.pedantic(ratios, rounds=1, iterations=1)
    print(f"\nadd-buffer lillis/fast time ratio: b=2 -> {result[2]:.2f}x, "
          f"b=64 -> {result[64]:.2f}x")
    assert result[64] > 4.0
    assert result[64] > 2.0 * result[2]
