"""Benchmark trajectory persistence: write ``BENCH_PR2.json``.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) measures a
lot, but nothing survives the run — so successive PRs have no baseline
to compare against.  This script distills the three workloads that the
compiled-execution work targets into one JSON file at the repo root:

* ``fig4`` — the Figure 4 trunk sweep (algorithm ``fast``), each point
  timed two ways per backend: the per-solve **tree walk** (auto-compile
  disabled, so every solve re-validates, re-plans and walks the object
  graph) versus the **compiled** repeat-solve path (one
  :func:`~repro.core.schedule.compile_net`, then schedule-interpreter
  solves).  ``ratio`` is walk/compiled; ``fig4.compiled_speedup`` is the
  mean ratio over the sweep.  The trunk is deliberately kernel-bound
  (the paper's long-list regime), so these ratios are the *floor* of the
  compiled win — small-net workloads amortize far more.
* ``fig3`` — one Figure 3 cell: lillis vs fast on the same compiled
  net (the paper's own speedup, for trend tracking).
* ``batch`` — :func:`~repro.core.batch.solve_many` throughput over a
  corpus of small nets, precompiled versus object-tree dispatch, plus
  the pickled payload sizes of both task encodings.

Run::

    PYTHONPATH=src python benchmarks/persist.py [--out BENCH_PR2.json]
                                                [--scale 1.0] [--repeats 5]

``--scale`` (default: the ``REPRO_BENCH_SCALE`` environment variable,
else 1.0) shrinks the instances the same way the benchmark suite's
conftest does, so the CI smoke job can afford the sweep.  Timings are
best-of-``--repeats`` (minimum = least noisy estimator of deterministic
work).

Reading the file: every ``*_seconds`` field is wall time, every
``ratio``/``speedup`` field is "old over new" (bigger is better for the
new path), and ``meta`` records the scale/repeats so numbers are only
compared against runs with the same settings.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.api import insert_buffers
from repro.core.batch import solve_many
from repro.core.schedule import auto_compile, compile_net
from repro.core.stores import resolve_backend
from repro.experiments.workloads import FIG4_NET, FIGURE_NET, build_net
from repro.library.generators import paper_library

# persist.py runs from the benchmarks directory (as a script or under
# pytest's rootdir), so the suite's shared helpers import directly.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import batch_corpus  # noqa: E402

#: Figure 4 position counts measured at scale 1.0.
FIG4_SWEEP = (500, 1000, 2000)
LIBRARY_SIZE = 32


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _best_of_paired(
    first: Callable[[], object], second: Callable[[], object], repeats: int
) -> tuple:
    """Best-of-N for two rivals with interleaved rounds.

    Alternating the two measurements inside each round exposes both to
    the same background drift (thermal throttling, noisy neighbours),
    which matters when the difference under test is a few percent.
    """
    best_first = float("inf")
    best_second = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - started)
        started = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - started)
    return best_first, best_second


def _backends() -> List[str]:
    fastest = resolve_backend("auto")
    return ["object"] if fastest == "object" else ["object", "soa"]


def measure_fig4(scale: float, repeats: int) -> Dict:
    """Tree walk vs compiled repeat-solve across the trunk sweep."""
    points = []
    ratios = []
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    for target in FIG4_SWEEP:
        positions = max(int(target * scale), 50)
        tree = build_net(FIG4_NET, positions_override=positions)
        for backend in _backends():
            compiled = compile_net(tree, library)

            def solve_walk() -> None:
                with auto_compile(False):
                    insert_buffers(tree, library, algorithm="fast",
                                   backend=backend)

            def solve_compiled() -> None:
                insert_buffers(compiled, library, algorithm="fast",
                               backend=backend)

            solve_walk()  # warm build_net/library caches
            solve_compiled()  # warm the factory's scratch arena
            walk, fast = _best_of_paired(solve_walk, solve_compiled, repeats)
            ratio = walk / fast if fast else float("inf")
            ratios.append(ratio)
            points.append({
                "positions": positions,
                "backend": backend,
                "tree_walk_seconds": walk,
                "compiled_seconds": fast,
                "ratio": ratio,
            })
    return {
        "algorithm": "fast",
        "library_size": LIBRARY_SIZE,
        "points": points,
        "compiled_speedup": sum(ratios) / len(ratios),
    }


def measure_fig3(scale: float, repeats: int) -> Dict:
    """One Figure 3 cell: the paper's lillis-vs-fast speedup."""
    spec = FIGURE_NET if scale == 1.0 else FIGURE_NET.scale(scale)
    tree = build_net(spec)
    library = paper_library(16, jitter=0.03, seed=16)
    compiled = compile_net(tree, library)
    # The object backend: the paper's lillis-vs-fast claim is about
    # per-candidate work, which the SoA backend's vectorized scans
    # deliberately sidestep.
    insert_buffers(compiled, library, algorithm="fast", backend="object")
    fast = _best_of(
        lambda: insert_buffers(compiled, library, algorithm="fast",
                               backend="object"),
        repeats,
    )
    lillis = _best_of(
        lambda: insert_buffers(compiled, library, algorithm="lillis",
                               backend="object"),
        repeats,
    )
    return {
        "net": spec.name,
        "backend": "object",
        "library_size": 16,
        "positions": compiled.num_buffer_positions,
        "lillis_seconds": lillis,
        "fast_seconds": fast,
        "speedup": lillis / fast if fast else float("inf"),
    }


def measure_batch(scale: float, repeats: int) -> Dict:
    """solve_many throughput: compiled dispatch vs object-tree dispatch."""
    trees = batch_corpus(8, max(int(150 * scale), 30))
    library = paper_library(8, jitter=0.03, seed=8)
    results: Dict = {"nets": len(trees), "backends": []}
    compiled = [compile_net(tree, library) for tree in trees]
    results["payload_bytes_tree"] = len(pickle.dumps(trees))
    results["payload_bytes_compiled"] = len(pickle.dumps(compiled))
    for backend in _backends():
        def solve_trees() -> None:
            with auto_compile(False):
                solve_many(trees, library, jobs=1, backend=backend,
                           precompile=False)

        def solve_compiled() -> None:
            solve_many(compiled, library, jobs=1, backend=backend)

        solve_compiled()  # warm arenas
        tree_seconds, compiled_seconds = _best_of_paired(
            solve_trees, solve_compiled, repeats)
        results["backends"].append({
            "backend": backend,
            "tree_dispatch_seconds": tree_seconds,
            "compiled_dispatch_seconds": compiled_seconds,
            "tree_nets_per_second": len(trees) / tree_seconds,
            "compiled_nets_per_second": len(trees) / compiled_seconds,
            "ratio": tree_seconds / compiled_seconds,
        })
    return results


def collect(scale: float, repeats: int) -> Dict:
    """Every persisted measurement, as one JSON-ready dict."""
    return {
        "meta": {
            "bench": "PR2 compiled solve schedules",
            "scale": scale,
            "repeats": repeats,
            "python": sys.version.split()[0],
            "backends": _backends(),
        },
        "fig4": measure_fig4(scale, repeats),
        "fig3": measure_fig3(scale, repeats),
        "batch": measure_batch(scale, repeats),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Persist the PR2 benchmark trajectory to JSON.")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR2.json",
        help="output path (default: BENCH_PR2.json at the repo root)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="instance scale factor (default: $REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing repeats (default 5)")
    args = parser.parse_args(argv)

    payload = collect(args.scale, args.repeats)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    fig4 = payload["fig4"]
    print(f"fig4 trunk sweep (fast, b={fig4['library_size']}):")
    for point in fig4["points"]:
        print(f"  n={point['positions']:>5} {point['backend']:<7}"
              f" walk {point['tree_walk_seconds']*1e3:8.2f}ms"
              f" compiled {point['compiled_seconds']*1e3:8.2f}ms"
              f" ratio {point['ratio']:.2f}x")
    print(f"  mean compiled speedup: {fig4['compiled_speedup']:.2f}x")
    fig3 = payload["fig3"]
    print(f"fig3 cell b=16: lillis/fast = {fig3['speedup']:.2f}x")
    for row in payload["batch"]["backends"]:
        print(f"batch {row['backend']:<7}"
              f" {row['tree_nets_per_second']:6.1f} -> "
              f"{row['compiled_nets_per_second']:6.1f} nets/s "
              f"({row['ratio']:.2f}x)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
