"""Benchmark trajectory persistence: write ``BENCH_PR4.json``.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) measures a
lot, but nothing survives the run — so successive PRs have no baseline
to compare against.  This script distills the workloads the kernel-
engine work targets into one JSON file at the repo root:

* ``fig4`` — the Figure 4 trunk sweep (algorithm ``fast``) over the
  paper's full position range (500 … 8000), each point timed two ways
  per backend: the per-solve **tree walk** (auto-compile disabled)
  versus the **compiled** repeat-solve path.  ``ratio`` is
  walk/compiled per backend; each position additionally records
  ``soa_vs_object_compiled`` — compiled-object seconds over
  compiled-soa seconds, the headline number of the PR4 kernel engine
  (>1 means the vectorized backend wins; PR2's trajectory showed ~0.5
  here).  The backend comparison is interleaved best-of-N, so both
  backends see the same thermal drift.
* ``op_profile`` — the wire/merge/buffer wall-clock split of
  ``bench_op_profile.py`` (object backend, instrumented list ops) for
  both algorithms, recording where solve time goes.
* ``fig3`` — one Figure 3 cell: lillis vs fast on the same compiled
  net (the paper's own speedup, for trend tracking).
* ``batch`` — :func:`~repro.core.batch.solve_many` throughput over a
  corpus of small nets, precompiled versus object-tree dispatch, plus
  the pickled payload sizes of both task encodings.
* ``ci_gate`` — thresholds the CI perf smoke job enforces with
  ``tools/perf_gate.py`` against a freshly generated file: at every
  sweep point with at least ``min_positions`` actual positions,
  compiled-soa must not be slower than ``max_soa_over_object`` times
  compiled-object (the PR2 regression shape must stay reversed).

Run::

    PYTHONPATH=src python benchmarks/persist.py [--out BENCH_PR4.json]
                                                [--scale 1.0] [--repeats 5]

``--scale`` (default: the ``REPRO_BENCH_SCALE`` environment variable,
else 1.0) shrinks the instances the same way the benchmark suite's
conftest does, so the CI smoke job can afford the sweep.  Timings are
best-of-``--repeats`` (minimum = least noisy estimator of deterministic
work).

Reading the file: every ``*_seconds`` field is wall time, every
``ratio``/``speedup`` field is "old over new" (bigger is better for the
new path), and ``meta`` records the scale/repeats so numbers are only
compared against runs with the same settings.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.api import insert_buffers
from repro.core.batch import solve_many
from repro.core.schedule import auto_compile, compile_net
from repro.core.stores import resolve_backend
from repro.experiments.profiling import profile_operations
from repro.experiments.workloads import (
    FIG4_NET,
    FIGURE_NET,
    TABLE1_NETS,
    build_net,
)
from repro.library.generators import paper_library

# persist.py runs from the benchmarks directory (as a script or under
# pytest's rootdir), so the suite's shared helpers import directly.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import batch_corpus  # noqa: E402

#: Figure 4 position counts measured at scale 1.0 — the paper's full
#: Figure-4 domain (FIG4_NET's canonical size is n = 8000).
FIG4_SWEEP = (500, 1000, 2000, 4000, 8000)
LIBRARY_SIZE = 32

#: CI thresholds embedded in the output (tools/perf_gate.py reads them
#: back from the freshly generated file).
CI_GATE = {
    # Points with at least this many *actual* positions are gated.
    "min_positions": 1000,
    # compiled-soa seconds must be <= this multiple of compiled-object.
    "max_soa_over_object": 1.0,
}


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _best_of_paired(
    first: Callable[[], object], second: Callable[[], object], repeats: int
) -> tuple:
    """Best-of-N for two rivals with interleaved rounds.

    Alternating the two measurements inside each round exposes both to
    the same background drift (thermal throttling, noisy neighbours),
    which matters when the difference under test is a few percent.
    """
    best_first = float("inf")
    best_second = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - started)
        started = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - started)
    return best_first, best_second


def _backends() -> List[str]:
    fastest = resolve_backend("auto")
    return ["object"] if fastest == "object" else ["object", "soa"]


def measure_fig4(scale: float, repeats: int) -> Dict:
    """Tree walk vs compiled, and compiled soa vs object, per position."""
    points = []
    walk_ratios = []
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    backends = _backends()
    for target in FIG4_SWEEP:
        positions = max(int(target * scale), 50)
        tree = build_net(FIG4_NET, positions_override=positions)
        compiled = compile_net(tree, library)
        # The big points dominate wall time; halve their repeats.
        point_repeats = repeats if target <= 2000 else max(2, repeats // 2)
        compiled_seconds: Dict[str, float] = {}
        for backend in backends:

            def solve_walk() -> None:
                with auto_compile(False):
                    insert_buffers(tree, library, algorithm="fast",
                                   backend=backend)

            def solve_compiled() -> None:
                insert_buffers(compiled, library, algorithm="fast",
                               backend=backend)

            solve_walk()  # warm build_net/library caches
            solve_compiled()  # warm the factory's scratch arena/tape
            walk, fast = _best_of_paired(solve_walk, solve_compiled,
                                         point_repeats)
            ratio = walk / fast if fast else float("inf")
            walk_ratios.append(ratio)
            compiled_seconds[backend] = fast
            points.append({
                "positions": positions,
                "target_positions": target,
                "backend": backend,
                "tree_walk_seconds": walk,
                "compiled_seconds": fast,
                "ratio": ratio,
            })
        if "soa" in compiled_seconds:
            # The PR4 headline: compiled object over compiled soa.
            head = compiled_seconds["object"] / compiled_seconds["soa"]
            for point in points[-len(backends):]:
                point["soa_vs_object_compiled"] = head
    return {
        "algorithm": "fast",
        "library_size": LIBRARY_SIZE,
        "points": points,
        "compiled_speedup": sum(walk_ratios) / len(walk_ratios),
    }


def measure_op_profile(scale: float) -> Dict:
    """The wire/merge/buffer wall-clock split (object backend)."""
    spec = TABLE1_NETS[1] if scale == 1.0 else TABLE1_NETS[1].scale(scale)
    tree = build_net(spec)
    rows = []
    for size in (8, LIBRARY_SIZE):
        library = paper_library(size, jitter=0.03, seed=size)
        for algorithm in ("lillis", "fast"):
            profile = profile_operations(tree, library, algorithm=algorithm)
            rows.append({
                "net": spec.name,
                "algorithm": algorithm,
                "library_size": size,
                "wire_seconds": profile.wire_seconds,
                "merge_seconds": profile.merge_seconds,
                "buffer_seconds": profile.buffer_seconds,
                "buffer_fraction": profile.buffer_fraction,
            })
    return {"rows": rows}


def measure_fig3(scale: float, repeats: int) -> Dict:
    """One Figure 3 cell: the paper's lillis-vs-fast speedup."""
    spec = FIGURE_NET if scale == 1.0 else FIGURE_NET.scale(scale)
    tree = build_net(spec)
    library = paper_library(16, jitter=0.03, seed=16)
    compiled = compile_net(tree, library)
    # The object backend: the paper's lillis-vs-fast claim is about
    # per-candidate work, which the SoA backend's vectorized scans
    # deliberately sidestep.
    insert_buffers(compiled, library, algorithm="fast", backend="object")
    fast = _best_of(
        lambda: insert_buffers(compiled, library, algorithm="fast",
                               backend="object"),
        repeats,
    )
    lillis = _best_of(
        lambda: insert_buffers(compiled, library, algorithm="lillis",
                               backend="object"),
        repeats,
    )
    return {
        "net": spec.name,
        "backend": "object",
        "library_size": 16,
        "positions": compiled.num_buffer_positions,
        "lillis_seconds": lillis,
        "fast_seconds": fast,
        "speedup": lillis / fast if fast else float("inf"),
    }


def measure_batch(scale: float, repeats: int) -> Dict:
    """solve_many throughput: compiled dispatch vs object-tree dispatch."""
    trees = batch_corpus(8, max(int(150 * scale), 30))
    library = paper_library(8, jitter=0.03, seed=8)
    results: Dict = {"nets": len(trees), "backends": []}
    compiled = [compile_net(tree, library) for tree in trees]
    results["payload_bytes_tree"] = len(pickle.dumps(trees))
    results["payload_bytes_compiled"] = len(pickle.dumps(compiled))
    for backend in _backends():
        def solve_trees() -> None:
            with auto_compile(False):
                solve_many(trees, library, jobs=1, backend=backend,
                           precompile=False)

        def solve_compiled() -> None:
            solve_many(compiled, library, jobs=1, backend=backend)

        solve_compiled()  # warm arenas
        tree_seconds, compiled_seconds = _best_of_paired(
            solve_trees, solve_compiled, repeats)
        results["backends"].append({
            "backend": backend,
            "tree_dispatch_seconds": tree_seconds,
            "compiled_dispatch_seconds": compiled_seconds,
            "tree_nets_per_second": len(trees) / tree_seconds,
            "compiled_nets_per_second": len(trees) / compiled_seconds,
            "ratio": tree_seconds / compiled_seconds,
        })
    return results


def collect(scale: float, repeats: int) -> Dict:
    """Every persisted measurement, as one JSON-ready dict."""
    return {
        "meta": {
            "bench": "PR4 zero-object SoA kernel engine",
            "scale": scale,
            "repeats": repeats,
            "python": sys.version.split()[0],
            "backends": _backends(),
        },
        "ci_gate": dict(CI_GATE),
        "fig4": measure_fig4(scale, repeats),
        "op_profile": measure_op_profile(scale),
        "fig3": measure_fig3(scale, repeats),
        "batch": measure_batch(scale, repeats),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Persist the PR4 benchmark trajectory to JSON.")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR4.json",
        help="output path (default: BENCH_PR4.json at the repo root)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="instance scale factor (default: $REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing repeats (default 5)")
    args = parser.parse_args(argv)

    payload = collect(args.scale, args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    fig4 = payload["fig4"]
    print(f"fig4 trunk sweep (fast, b={fig4['library_size']}):")
    for point in fig4["points"]:
        head = point.get("soa_vs_object_compiled")
        suffix = (f"  soa-vs-obj {head:.2f}x"
                  if head is not None and point["backend"] == "soa" else "")
        print(f"  n={point['positions']:>5} {point['backend']:<7}"
              f" walk {point['tree_walk_seconds']*1e3:9.2f}ms"
              f" compiled {point['compiled_seconds']*1e3:9.2f}ms"
              f" ratio {point['ratio']:.2f}x{suffix}")
    print(f"  mean compiled speedup: {fig4['compiled_speedup']:.2f}x")
    for row in payload["op_profile"]["rows"]:
        print(f"op split {row['algorithm']:<7} b={row['library_size']:<3}"
              f" wire {row['wire_seconds']*1e3:7.2f}ms"
              f" merge {row['merge_seconds']*1e3:7.2f}ms"
              f" buffer {row['buffer_seconds']*1e3:7.2f}ms"
              f" (buffer share {row['buffer_fraction']:.0%})")
    fig3 = payload["fig3"]
    print(f"fig3 cell b=16: lillis/fast = {fig3['speedup']:.2f}x")
    for row in payload["batch"]["backends"]:
        print(f"batch {row['backend']:<7}"
              f" {row['tree_nets_per_second']:6.1f} -> "
              f"{row['compiled_nets_per_second']:6.1f} nets/s "
              f"({row['ratio']:.2f}x)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
