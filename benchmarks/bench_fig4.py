"""Figure 4 — normalized running time versus buffer positions n.

Paper: at b = 32, both algorithms grow superlinearly in n, but the new
algorithm grows much more slowly because the add-buffer operation —
the step it accelerates — dominates as n (and with it the candidate
list length k) increases.

Run: ``pytest benchmarks/bench_fig4.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import run_once, scaled

from repro.core.api import insert_buffers
from repro.core.schedule import auto_compile, compile_net
from repro.experiments.figures import format_figure, run_fig4
from repro.experiments.workloads import (
    FIG4_NET,
    FIG4_POSITION_COUNTS,
    build_net,
)
from repro.library.generators import paper_library

SPEC = scaled(FIG4_NET)
LIBRARY_SIZE = 32


@pytest.mark.parametrize("positions", FIG4_POSITION_COUNTS)
@pytest.mark.parametrize("algorithm", ["lillis", "fast"])
@pytest.mark.parametrize("backend", ["object", "soa"])
def test_fig4_point(benchmark, positions, algorithm, backend):
    tree = build_net(SPEC, positions_override=positions)
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    benchmark.extra_info.update(positions=tree.num_buffer_positions,
                                library_size=LIBRARY_SIZE,
                                backend=backend)
    run_once(benchmark, insert_buffers, tree, library, algorithm=algorithm,
             backend=backend)


@pytest.mark.parametrize("mode", ["tree-walk", "compiled"])
def test_fig4_solve_path(benchmark, mode):
    """Per-solve tree walk vs compiled repeat-solve on one trunk point.

    The compiled cell measures exactly what a sweep pays per repeat
    solve: compilation (validation, plans, flattening) happens once,
    outside the timed region.
    """
    tree = build_net(SPEC, positions_override=FIG4_POSITION_COUNTS[1])
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    benchmark.extra_info.update(mode=mode, positions=tree.num_buffer_positions,
                                library_size=LIBRARY_SIZE)
    if mode == "compiled":
        net = compile_net(tree, library)
        insert_buffers(net, library)  # warm the scratch arena
        run_once(benchmark, insert_buffers, net, library)
    else:
        with auto_compile(False):
            run_once(benchmark, insert_buffers, tree, library)


def test_fig4_claims(benchmark):
    series = run_once(benchmark, run_fig4, spec=SPEC,
                      library_size=LIBRARY_SIZE)
    print()
    print(format_figure(series))

    # Times increase with n for both algorithms.
    lillis_norms = [p.lillis_normalized for p in series.points]
    fast_norms = [p.fast_normalized for p in series.points]
    assert lillis_norms == sorted(lillis_norms)
    assert fast_norms == sorted(fast_norms)
    # The baseline's growth outpaces the new algorithm's (paper's point).
    assert lillis_norms[-1] > fast_norms[-1]
    # And in absolute terms the new algorithm wins at the largest n.
    last = series.points[-1]
    assert last.fast_seconds < last.lillis_seconds
