"""Motivation — library clustering (the pre-2005 workaround) measured.

The paper's introduction: with hundreds of buffer types, the previous
practice (Alpert et al., ICCAD 2000) was to cluster the library down to
a few representatives, trading solution quality for speed.  The O(bn^2)
algorithm removes the need.  This benchmark regenerates that trade-off:
buffering with clustered libraries of 4..32 types versus the full 64,
reporting runtime and slack loss.

Run: ``pytest benchmarks/bench_clustering.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import run_once, scaled

from repro.core.api import insert_buffers
from repro.experiments.workloads import TABLE1_NETS, build_net
from repro.library.clustering import cluster_library
from repro.library.generators import paper_library

SPEC = scaled(TABLE1_NETS[0])
FULL_SIZE = 64
TARGETS = (4, 8, 16, 32)


@pytest.fixture(scope="module")
def full_library():
    return paper_library(FULL_SIZE, jitter=0.05, seed=7)


@pytest.mark.parametrize("target", TARGETS)
def test_clustered_library_runtime(benchmark, full_library, target):
    tree = build_net(SPEC)
    reduced = cluster_library(full_library, target, seed=0)
    benchmark.extra_info.update(library_size=target)
    run_once(benchmark, insert_buffers, tree, reduced, algorithm="fast")


def test_clustering_quality_tradeoff(benchmark, full_library):
    """Clustered libraries lose slack; the fast algorithm on the full
    library needs no such sacrifice."""
    tree = build_net(SPEC)

    def sweep():
        full = insert_buffers(tree, full_library)
        losses = {}
        for target in TARGETS:
            reduced = cluster_library(full_library, target, seed=0)
            result = insert_buffers(tree, reduced)
            losses[target] = full.slack - result.slack
        return full.slack, losses

    full_slack, losses = run_once(benchmark, sweep)
    print()
    for target, loss in sorted(losses.items()):
        print(f"b={target:>3}: slack loss vs full library "
              f"{loss / 1e-12:.2f}ps")
    # A clustered library can never beat the full library it came from.
    assert all(loss >= -1e-16 for loss in losses.values())
    # And the coarsest clustering hurts at least as much as the finest.
    assert losses[4] >= losses[32] - 1e-16
