"""Execution-routing replay benchmark: ``BENCH_PR8.json``.

Builds a deterministic mixed workload — solo solves across the size
spectrum, multi-corner batch groups and incremental ECO sessions —
captures it in the workload-log format (:mod:`repro.routing.workload`),
then replays it under several routing policies and reports each
policy's total wall time and regret against the oracle (the per-request
best measured plan).

The corpus is the benchmark's contract with the test suite: running
with ``--capture tests/data/workload_mixed.jsonl`` regenerates the
committed regression corpus the tier-1 replay test locks the schema
with.  The benchmark itself builds the same corpus in a temporary
file, so the committed artifact and the measured one cannot drift
structurally.

What the numbers mean:

* ``oracle_seconds`` — sum over requests of the best measured plan;
  no policy can beat it (it is the same table every policy is priced
  from).
* ``policies.static`` — the historical hardcoded heuristics (SoA when
  NumPy exists, batch any structural group, 50k-instruction parallel
  floor), now expressed as a routing policy.  This is the baseline the
  router must never lose to.
* ``policies.model`` — the fitted cost model
  (``src/repro/routing/model_default.json``) choosing per request.
  Expect wins on small nets (object store below the kernel-launch
  crossover) and parity elsewhere.
* ``always_*`` — single-strategy escape hatches, for context.

Every plan's result is checked bit-identical before anything is
priced, so a policy can only ever change wall time, never answers.

``ci_gate`` thresholds are embedded in the output and enforced by
``tools/perf_gate.py`` against a freshly generated file: the model
policy must reach ``min_model_speedup_vs_oracle`` (how close to the
per-request best it lands) and ``min_model_speedup_vs_static`` (it
must not lose to the legacy heuristics beyond timing noise).

Run::

    PYTHONPATH=src python benchmarks/bench_routing.py \\
        [--out BENCH_PR8.json] [--scale 1.0] [--repeats 3]
    PYTHONPATH=src python benchmarks/bench_routing.py \\
        --capture tests/data/workload_mixed.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.batch import SolverPool
from repro.experiments.workloads import corner_variants
from repro.incremental.engine import IncrementalSolver
from repro.library.generators import paper_library
from repro.routing.features import features_of
from repro.routing.router import ExecutionPlan
from repro.routing.workload import WorkloadLog, compiled_digest, replay
from repro.tree.builders import random_tree_net
from repro.tree.io import library_to_dict, tree_from_dict, tree_to_dict

#: (sinks, seed) cells of the solo-solve sweep, per library size.
SOLO_CELLS = {
    8: ((2, 11), (3, 12), (4, 13), (6, 14), (8, 15), (12, 16),
        (16, 17), (24, 18)),
    16: ((6, 21), (10, 22), (14, 23), (20, 24), (28, 25), (40, 26),
         (56, 27), (80, 28)),
    32: ((4, 31), (8, 32), (12, 33), (16, 34), (24, 35), (32, 36),
         (48, 37), (64, 38)),
}

#: (sinks, lanes, seed) cells of the multi-corner batch sweep (b=8).
BATCH_CELLS = (
    (8, 4, 41), (16, 4, 42), (32, 4, 43), (64, 4, 44),
    (8, 8, 45), (16, 8, 46), (32, 8, 47), (64, 8, 48),
)

#: (sinks, seed, edit script) cells of the session sweep (b=8).  Each
#: script is a list of edit dicts in the loaded net's preorder ids;
#: sink ids are resolved per net at build time (``"sink:<k>"`` means
#: the k-th sink in preorder).
SESSION_CELLS = (
    (16, 51, [{"op": "set_sink_rat", "node": "sink:0",
               "required_arrival": 5e-10}]),
    (16, 52, [{"op": "set_sink_rat", "node": "sink:1",
               "required_arrival": 8e-10},
              {"op": "set_sink_rat", "node": "sink:2",
               "required_arrival": 3e-10}]),
    (32, 53, [{"op": "set_sink_rat", "node": "sink:0",
               "required_arrival": 6e-10}]),
    (32, 54, [{"op": "set_sink_rat", "node": "sink:3",
               "required_arrival": 4e-10},
              {"op": "set_sink_rat", "node": "sink:5",
               "required_arrival": 9e-10}]),
    (48, 55, [{"op": "set_sink_rat", "node": "sink:2",
               "required_arrival": 7e-10}]),
    (48, 56, [{"op": "swap_driver", "resistance": 150.0}]),
    (64, 57, [{"op": "set_sink_rat", "node": "sink:4",
               "required_arrival": 5e-10}]),
    (64, 58, [{"op": "swap_driver", "resistance": 90.0}]),
)

POLICIES = ("static", "model", "always_object", "always_soa",
            "always_walk", "always_compiled")

CI_GATE = {
    # The model policy's total must land within 10% of the oracle (the
    # per-request best measured plan) on the mixed corpus ...
    "min_model_speedup_vs_oracle": 0.9,
    # ... and must not lose to the legacy static heuristics beyond a
    # timing-noise allowance (identical choices tie exactly; the slack
    # absorbs scheduler jitter between the shared measurements).
    "min_model_speedup_vs_static": 0.98,
}


def _scaled(sinks: int, scale: float) -> int:
    return max(int(round(sinks * scale)), 2)


def _resolve_sink_ids(tree, script: List[dict]) -> List[dict]:
    """Replace ``"sink:<k>"`` placeholders with the net's actual ids."""
    sinks = [node.node_id for node in tree.sinks()]
    resolved = []
    for spec in script:
        spec = dict(spec)
        node = spec.get("node")
        if isinstance(node, str) and node.startswith("sink:"):
            spec["node"] = sinks[int(node.split(":", 1)[1]) % len(sinks)]
        resolved.append(spec)
    return resolved


def build_corpus(path: Path, scale: float = 1.0) -> Dict[str, int]:
    """Write the mixed workload corpus (full capture) to ``path``.

    Deterministic by construction: fixed seeds, fixed cell tables, and
    nets serialized through one ``tree_to_dict`` round trip so node
    ids in session edit scripts are stable under re-loading.
    """
    counts = {"solve": 0, "batch": 0, "session": 0}
    log = WorkloadLog(path, capture="full")

    for library_size, cells in sorted(SOLO_CELLS.items()):
        library = paper_library(library_size, jitter=0.03, seed=library_size)
        pool = SolverPool(library, workload_log=log)
        for sinks, seed in cells:
            pool.solve([random_tree_net(_scaled(sinks, scale), seed=seed)])
            counts["solve"] += 1
        pool.close()

    library = paper_library(8, jitter=0.03, seed=8)
    for sinks, lanes, seed in BATCH_CELLS:
        base = random_tree_net(_scaled(sinks, scale), seed=seed)
        variants = [tree for _, tree in corner_variants(base, lanes)]
        pool = SolverPool(library, workload_log=log)
        pool.solve(variants)
        pool.close()
        counts["batch"] += 1

    for sinks, seed, script in SESSION_CELLS:
        # Round-trip the tree first: tree_from_dict re-assigns ids in
        # preorder, so the serialized net and the edit script agree on
        # ids both now and at replay time.
        tree = tree_from_dict(
            tree_to_dict(random_tree_net(_scaled(sinks, scale), seed=seed))
        )
        net_dict = tree_to_dict(tree)
        edits = _resolve_sink_ids(tree, script)
        solver = IncrementalSolver(tree, library)
        solver.resolve()
        for edit in edits:
            solver.apply(edit)
        started = time.perf_counter()
        solver.resolve()
        seconds = time.perf_counter() - started
        plan = ExecutionPlan(backend=solver.backend, schedule_mode="splice")
        log.record(
            "session",
            digest=compiled_digest(solver.compiled),
            features=features_of(
                solver.compiled, kind="session",
                dirty_fraction=solver.last_executed_fraction,
            ),
            plan=plan,
            policy="static",
            seconds=seconds,
            algorithm=solver.algorithm,
            options=solver.options,
            payload={
                "library": library_to_dict(library),
                "net": net_dict,
                "edits": edits,
            },
        )
        counts["session"] += 1

    log.close()
    return counts


def collect(scale: float, repeats: int) -> Dict:
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "workload.jsonl"
        counts = build_corpus(corpus_path, scale=scale)
        report = replay(corpus_path, policies=POLICIES, repeats=repeats)
    return {
        "meta": {
            "bench": "PR8 execution-routing replay",
            "scale": scale,
            "repeats": repeats,
            "python": sys.version.split()[0],
            "corpus": dict(counts, requests=sum(counts.values())),
            "policies": list(POLICIES),
            "workload": (
                "deterministic mixed corpus (solo solves over three "
                "library sizes, multi-corner batch groups, incremental "
                "ECO sessions) captured in the workload-log format, "
                "then replayed: every candidate plan of every request "
                "measured best-of-repeats into one shared table, "
                "bit-identity asserted across plans, each policy "
                "priced from the same table"
            ),
        },
        "ci_gate": dict(CI_GATE),
        "routing": report,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Persist the PR8 routing-replay trajectory to JSON.")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR8.json",
        help="output path (default: BENCH_PR8.json at the repo root)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="instance scale factor (default: $REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats per (request, plan) (default 3)")
    parser.add_argument(
        "--capture", type=Path, default=None, metavar="PATH",
        help="only write the corpus JSONL here (the committed "
             "tests/data/workload_mixed.jsonl mode) and exit")
    args = parser.parse_args(argv)

    if args.capture is not None:
        args.capture.parent.mkdir(parents=True, exist_ok=True)
        if args.capture.exists():
            args.capture.unlink()
        counts = build_corpus(args.capture, scale=args.scale)
        total = sum(counts.values())
        print(f"wrote {total} records ({counts['solve']} solve, "
              f"{counts['batch']} batch, {counts['session']} session) "
              f"-> {args.capture}")
        return 0

    payload = collect(args.scale, args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    report = payload["routing"]
    print(f"routing replay ({report['requests']} requests, "
          f"repeats={args.repeats}, model {report['model_version']}):")
    print(f"  oracle {report['oracle_seconds'] * 1e3:9.1f}ms")
    for name, bucket in report["policies"].items():
        print(
            f"  {name:<16} {bucket['total_seconds'] * 1e3:9.1f}ms"
            f"  regret {bucket['regret_seconds'] * 1e3:8.1f}ms"
            f"  vs-oracle {bucket['speedup_vs_oracle']:5.2f}x"
            f"  vs-static {bucket['speedup_vs_static']:5.2f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.exit(main())
