"""Figure 3 — normalized running time versus library size b.

Paper: on the m = 1944 / n = 33133 net, both algorithms' times grow
roughly linearly in b, but the new algorithm's slope is much smaller
(its add-buffer step is O(k + b) rather than O(b k)).  The benchmark
regenerates the curve on the scaled net and asserts the slope ordering.

Run: ``pytest benchmarks/bench_fig3.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import run_once, scaled

from repro.core.api import insert_buffers
from repro.experiments.figures import format_figure, run_fig3
from repro.experiments.workloads import (
    FIG3_LIBRARY_SIZES,
    FIGURE_NET,
    build_net,
)
from repro.library.generators import paper_library

SPEC = scaled(FIGURE_NET)


@pytest.mark.parametrize("size", FIG3_LIBRARY_SIZES)
@pytest.mark.parametrize("algorithm", ["lillis", "fast"])
@pytest.mark.parametrize("backend", ["object", "soa"])
def test_fig3_point(benchmark, size, algorithm, backend):
    tree = build_net(SPEC)
    library = paper_library(size, jitter=0.03, seed=size)
    benchmark.extra_info.update(library_size=size,
                                positions=tree.num_buffer_positions,
                                backend=backend)
    run_once(benchmark, insert_buffers, tree, library, algorithm=algorithm,
             backend=backend)


def test_fig3_claims(benchmark):
    """The full sweep, normalized like the paper's y-axis."""
    series = run_once(benchmark, run_fig3, spec=SPEC)
    print()
    print(format_figure(series))

    lillis_slope, fast_slope = series.slopes()
    # Both curves rise with b...
    assert series.points[-1].lillis_normalized > series.points[0].lillis_normalized
    assert series.points[-1].fast_normalized >= series.points[0].fast_normalized
    # ...but the new algorithm's slope is clearly smaller (paper: ~5x).
    assert fast_slope < 0.6 * lillis_slope
    # At b = 64 the absolute times favour the new algorithm.
    last = series.points[-1]
    assert last.fast_seconds < last.lillis_seconds
