"""Batch-axis group-solve benchmark: ``BENCH_PR6.json``.

Measures the batch-axis engine (:mod:`repro.core.stores.batch_axis`)
on its motivating workload — a multi-corner sweep: one net replicated
across R/C process corners (:func:`~repro.experiments.workloads.corner_variants`),
all replicas sharing one :func:`~repro.core.schedule.group_signature`.
Each (group size, net size) cell times two ways of solving the same
lanes:

* ``sequential_seconds`` — the per-net compiled-soa path
  (:func:`~repro.core.api.insert_buffers` over each lane in turn), the
  production path before this engine existed;
* ``batched_seconds`` — one :func:`~repro.core.stores.batch_axis.solve_group`
  call on a warm :class:`~repro.core.stores.batch_axis.BatchedSoAFactory`,
  fetching every compiled instruction once and executing it as a
  vectorized kernel across all lanes.

Both operate on the *same pre-compiled nets*, so the ratio isolates
solve time (compilation amortizes identically for both callers).
Bit-identity of every lane against its sequential solve is asserted
before anything is timed — speedups can never come from solving a
different problem.  ``speedup`` is sequential/batched (bigger is
better for the batch axis).

The net is the Figure 4 trunk (the paper's long-candidate-list
regime) with library b = 32.  Expect the speedup to grow with lanes —
more lanes amortize instruction fetch and kernel launch — and to
taper with net size at fixed lanes: the batched add-buffer spends
O(b·k) arithmetic per op (the hull-free argmax walk) where the
sequential path spends O(k) hull construction plus an O(b) walk, so
longer candidate lists trade launch amortization against raw
arithmetic.  Small nets at small group sizes sit near 1x — the
engine's overhead floor — which is why
:class:`~repro.core.batch.SolverPool` only groups, never splits, and
why the gate below only applies where batching is meant to win.

``ci_gate`` thresholds are embedded in the output and enforced by
``tools/perf_gate.py`` against a freshly generated file: every point
with at least ``min_positions`` actual positions *and* at least
``min_group`` lanes must reach ``min_speedup``.

Run::

    PYTHONPATH=src python benchmarks/bench_batch_axis.py \\
        [--out BENCH_PR6.json] [--scale 1.0] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.api import insert_buffers
from repro.core.schedule import compile_net, group_signature
from repro.core.stores.batch_axis import BatchedSoAFactory, solve_group
from repro.experiments.workloads import (
    FIG4_NET,
    build_net,
    corner_variants,
)
from repro.library.generators import paper_library

#: Lanes per group (the multi-corner counts a signoff flow sees).
GROUP_SIZES = (4, 16, 64)

#: Figure 4 trunk position targets at scale 1.0.
POSITION_SWEEP = (100, 1000, 8000)

LIBRARY_SIZE = 32

CI_GATE = {
    # Points with at least this many *actual* positions ...
    "min_positions": 1000,
    # ... and at least this many lanes are gated: the regime the
    # engine exists for.  Smaller cells are recorded as overhead-floor
    # context, not gated (a 4-lane group of 100-position nets is
    # dominated by fixed per-op cost on both paths).
    "min_group": 16,
    # Floor on sequential/batched wall-clock in the gated cells.
    "min_speedup": 1.5,
}


def measure_point(
    positions: int, lanes: int, library, repeats: int
) -> Dict:
    """One (net size, group size) cell: parity check, then timing."""
    tree = build_net(FIG4_NET, positions_override=positions)
    compiled = [
        compile_net(variant, library)
        for _, variant in corner_variants(tree, lanes)
    ]
    signature = group_signature(compiled[0])
    assert all(group_signature(net) == signature for net in compiled[1:])

    factory = BatchedSoAFactory(lanes)
    # Warm-up doubles as the honesty guard: every lane must be
    # bit-identical to its own sequential compiled-soa solve.
    batched = solve_group(compiled, library, factory=factory)
    for net, lane_result in zip(compiled, batched):
        reference = insert_buffers(net, library, backend="soa")
        if (lane_result.slack != reference.slack
                or lane_result.assignment != reference.assignment):
            raise AssertionError(
                f"batched/sequential mismatch at n={positions} "
                f"lanes={lanes}: {lane_result.slack} != {reference.slack}"
            )

    sequential_best = float("inf")
    batched_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for net in compiled:
            insert_buffers(net, library, backend="soa")
        sequential_best = min(
            sequential_best, time.perf_counter() - started)
        started = time.perf_counter()
        solve_group(compiled, library, factory=factory)
        batched_best = min(batched_best, time.perf_counter() - started)

    stats = factory.stats()
    return {
        "positions": positions,
        "lanes": lanes,
        "sequential_seconds": sequential_best,
        "batched_seconds": batched_best,
        "per_lane_batched_seconds": batched_best / lanes,
        "speedup": sequential_best / batched_best,
        "baseline_slack_seconds": batched[0].slack,
        "arena_pooled_bytes": stats["arena"]["pooled_bytes"],
    }


def collect(scale: float, repeats: int) -> Dict:
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    points: List[Dict] = []
    for target in POSITION_SWEEP:
        positions = max(int(target * scale), 30)
        for lanes in GROUP_SIZES:
            # The largest cell sequentially solves lanes full-size
            # nets per repeat; budget repeats by total work so the
            # sweep stays affordable without starving small cells.
            effective = repeats if positions * lanes <= 64_000 else 1
            point = measure_point(positions, lanes, library, effective)
            point["target_positions"] = target
            point["repeats"] = effective
            points.append(point)
    return {
        "meta": {
            "bench": "PR6 batch-axis group solver",
            "scale": scale,
            "repeats": repeats,
            "python": sys.version.split()[0],
            "net": FIG4_NET.name,
            "algorithm": "fast",
            "library_size": LIBRARY_SIZE,
            "workload": (
                "multi-corner group: one Figure 4 trunk replicated "
                "across R/C corners, solve_group (one vectorized "
                "interpreter pass over all lanes) vs per-net "
                "compiled-soa insert_buffers, bit-identity asserted "
                "per lane before timing; timings best-of-repeats on "
                "pre-compiled nets and a warm factory"
            ),
        },
        "ci_gate": dict(CI_GATE),
        "batch_axis": {
            "net": FIG4_NET.name,
            "algorithm": "fast",
            "library_size": LIBRARY_SIZE,
            "points": points,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Persist the PR6 batch-axis trajectory to JSON.")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR6.json",
        help="output path (default: BENCH_PR6.json at the repo root)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="instance scale factor (default: $REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats per cell (default 3; the largest cells "
             "drop to 1 automatically)")
    args = parser.parse_args(argv)

    payload = collect(args.scale, args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"batch-axis group solve ({FIG4_NET.name}, fast, "
          f"b={LIBRARY_SIZE}):")
    for point in payload["batch_axis"]["points"]:
        print(
            f"  n={point['positions']:>5} lanes={point['lanes']:>3}"
            f"  sequential {point['sequential_seconds']*1e3:9.1f}ms"
            f"  batched {point['batched_seconds']*1e3:9.1f}ms"
            f"  speedup {point['speedup']:6.2f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
