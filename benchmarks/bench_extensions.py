"""Extension benchmarks: wire sizing, polarity, segmenting quality.

These back the library's beyond-the-paper features with measured
evidence:

* joint wire sizing (paper ref [7]) — runtime scales ~linearly with the
  number of widths and the slack never degrades;
* polarity-aware DP (inverters) — bounded overhead over the plain DP on
  polarity-free instances;
* wire segmenting (paper ref [1], Alpert & Devgan) — slack improves
  with finer segmenting and saturates, motivating how the paper's
  experiments choose n.

Run: ``pytest benchmarks/bench_extensions.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import run_once, scaled

from repro.core.api import insert_buffers
from repro.core.polarity import insert_buffers_with_inverters
from repro.experiments.workloads import TABLE1_NETS, build_net
from repro.library.generators import mixed_paper_library, paper_library
from repro.tree.builders import random_tree_net
from repro.tree.node import Driver
from repro.tree.segmenting import segment_tree
from repro.units import ps
from repro.wiresizing import default_wire_classes, size_wires_and_insert_buffers

SPEC = scaled(TABLE1_NETS[0])


@pytest.mark.parametrize("num_widths", [1, 2, 4])
def test_wiresizing_runtime(benchmark, num_widths):
    tree = build_net(SPEC)
    library = paper_library(8, jitter=0.03, seed=8)
    classes = default_wire_classes(num_widths)
    benchmark.extra_info.update(num_widths=num_widths)
    result = run_once(benchmark, size_wires_and_insert_buffers, tree,
                      library, classes)
    benchmark.extra_info["slack_ps"] = result.slack / 1e-12


def test_wiresizing_quality_monotone(benchmark):
    """More width choices can only help; measure the gain curve."""
    tree = build_net(SPEC)
    library = paper_library(8, jitter=0.03, seed=8)

    def sweep():
        return {
            w: size_wires_and_insert_buffers(
                tree, library, default_wire_classes(w)
            ).slack
            for w in (1, 2, 3, 4)
        }

    slacks = run_once(benchmark, sweep)
    print()
    base = slacks[1]
    for w, slack in sorted(slacks.items()):
        print(f"widths={w}: slack {slack/1e-12:.1f}ps "
              f"(gain {(slack-base)/1e-12:+.1f}ps)")
    ordered = [slacks[w] for w in sorted(slacks)]
    assert ordered == sorted(ordered)


@pytest.mark.parametrize("mode", ["plain", "polarity"])
def test_polarity_overhead(benchmark, mode):
    """The polarity DP on an all-positive net does the same optimization
    with two lists; its overhead should be a small constant factor."""
    tree = build_net(SPEC)
    library = mixed_paper_library(16, inverter_fraction=0.0)
    benchmark.extra_info.update(mode=mode)
    if mode == "plain":
        result = run_once(benchmark, insert_buffers, tree, library)
        slack = result.slack
    else:
        result = run_once(benchmark, insert_buffers_with_inverters, tree,
                          library)
        slack = result.slack
    benchmark.extra_info["slack_ps"] = slack / 1e-12


def test_polarity_equivalence_on_positive_nets(benchmark):
    tree = build_net(SPEC)
    library = mixed_paper_library(8, inverter_fraction=0.0)

    def both():
        plain = insert_buffers(tree, library)
        polarity = insert_buffers_with_inverters(tree, library)
        return plain.slack, polarity.slack

    plain_slack, polarity_slack = run_once(benchmark, both)
    assert polarity_slack == pytest.approx(plain_slack, abs=1e-16)


def test_segmenting_quality_saturates(benchmark):
    """Alpert-Devgan: finer segmenting buys slack with diminishing
    returns.  Sweep the segment length on one net."""
    base = random_tree_net(24, seed=11, required_arrival=ps(1500.0),
                           driver=Driver(200.0))
    library = paper_library(8, jitter=0.03, seed=8)

    def sweep():
        results = {}
        for length in (2000.0, 1000.0, 500.0, 250.0, 125.0):
            tree = segment_tree(base, length)
            results[length] = (
                tree.num_buffer_positions,
                insert_buffers(tree, library).slack,
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    slacks = []
    for length in sorted(results, reverse=True):
        positions, slack = results[length]
        print(f"segment <= {length:6.0f}um: n={positions:>5}, "
              f"slack {slack/1e-12:.1f}ps")
        slacks.append(slack)
    # Monotone improvement...
    assert slacks == sorted(slacks)
    # ...with diminishing returns: the last halving buys less than the
    # first one.
    first_gain = slacks[1] - slacks[0]
    last_gain = slacks[-1] - slacks[-2]
    assert last_gain <= first_gain + 1e-16
