"""Micro-bench tuning the SoA selection-kernel cutoff.

The kernel engine (:mod:`repro.core.stores.soa`) dispatches its
selection kernels — dominance prune and convex hull — between the
shared scalar scans of :mod:`repro.core.pruning` and whole-array NumPy
forms, behind one crossover (:func:`repro.core.stores.soa.kernel_cutoff`).
Selection involves no arithmetic, so the cutoff can never change
results; this script measures where each form wins so the default stays
honest on the current interpreter/NumPy combination.

Two measurements:

1. **Kernel-level** — scalar vs vectorized prune on realistic
   candidate-list shapes (a wire-sheared nonredundant list with a few
   dominance inversions) across lengths, printing per-call times and
   the measured crossover.  The convex hull is measured the same way;
   its vectorized form (layer-stripping passes) loses by an order of
   magnitude on the mostly-convex lists the DP actually produces,
   which is why the hull crossover sits at ``_HULL_FACTOR`` times the
   kernel cutoff.
2. **End-to-end** — the Figure 4 trunk solved under a sweep of cutoff
   settings, confirming the kernel-level pick on the real workload.
3. **Batched end-to-end** — the same trunk as a 16-lane multi-corner
   group through :func:`~repro.core.stores.batch_axis.solve_group`,
   whose kernels dispatch per-lane scalar scans versus lane-batched
   masks on ``lanes * width <= kernel_cutoff()`` (the whole group's
   element count, not one list's length).  The sweep shows the shared
   default also holds there: with 16 lanes even width-3 lists clear
   ``48``, so group kernels go vectorized almost immediately.
   Measured 2026-08 on CPython 3.12: the 48–96 plateau is the optimum
   (48 within ~1% of the best), forcing the group kernels scalar
   (``cutoff = inf``) costs ~1.6x, forcing everything vectorized
   (``cutoff = 0``) costs ~10% — so the batched path needs no separate
   knob and keeps sharing the single-net default of 48.

Run::

    PYTHONPATH=src python benchmarks/bench_kernel_cutoff.py [--scale 0.5]
"""

from __future__ import annotations

import argparse
import time
from typing import List, Tuple

import numpy as np

from repro.core.api import insert_buffers
from repro.core.pruning import hull_indices, prune_dominated_indices
from repro.core.schedule import compile_net
from repro.core.stores.soa import (
    _hull_indices,
    _nonredundant_indices,
    kernel_cutoff,
    set_kernel_cutoff,
)
from repro.experiments.workloads import FIG4_NET, build_net
from repro.library.generators import paper_library

LENGTHS = (32, 64, 96, 128, 192, 256, 512, 1024)
CUTOFF_SWEEP = (0, 24, 48, 96, 192, 1 << 30)


def _realistic_list(n: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """A c-sorted list shaped like a post-wire DP list.

    Strictly increasing c; q increasing but with a handful of local
    inversions (the dominated candidates a wire shear produces), so the
    prune has realistic work to do.
    """
    rng = np.random.default_rng(seed)
    c = np.cumsum(rng.uniform(1e-16, 2e-15, n))
    q = np.cumsum(rng.uniform(1e-13, 4e-12, n))
    flips = rng.choice(n - 1, size=max(n // 40, 1), replace=False)
    q[flips + 1], q[flips] = q[flips].copy(), q[flips + 1].copy()
    return q, c


def _time_per_call(fn, inputs, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for q, c in inputs:
            fn(q, c)
        best = min(best, (time.perf_counter() - started) / len(inputs))
    return best


def kernel_sweep(repeats: int) -> int:
    """Print per-length scalar/vector timings; return the crossover."""
    previous = kernel_cutoff()
    crossover = LENGTHS[-1]
    print("length  prune-scalar  prune-vector  hull-scalar")
    try:
        for n in LENGTHS:
            inputs = [_realistic_list(n, seed) for seed in range(32)]
            set_kernel_cutoff(1 << 30)  # force scalar
            scalar = _time_per_call(_nonredundant_indices, inputs, repeats)
            set_kernel_cutoff(0)  # force vector
            vector = _time_per_call(_nonredundant_indices, inputs, repeats)
            hull_inputs = [
                (q[np.array(prune_dominated_indices(q.tolist(), c.tolist()))],
                 c[np.array(prune_dominated_indices(q.tolist(), c.tolist()))])
                for q, c in inputs
            ]
            set_kernel_cutoff(1 << 30)
            hull_scalar = _time_per_call(_hull_indices, hull_inputs, repeats)
            print(f"{n:6d}  {scalar*1e6:10.2f}us  {vector*1e6:10.2f}us"
                  f"  {hull_scalar*1e6:9.2f}us")
            if vector < scalar and n < crossover:
                crossover = n
    finally:
        set_kernel_cutoff(previous)
    print(f"measured prune crossover: ~{crossover} "
          f"(current default {previous})")
    return crossover


def end_to_end_sweep(scale: float, repeats: int) -> None:
    """Confirm the pick on the real fig4 trunk workload."""
    positions = max(int(2000 * scale), 100)
    library = paper_library(32, jitter=0.03, seed=32)
    tree = build_net(FIG4_NET, positions_override=positions)
    compiled = compile_net(tree, library)
    reference = insert_buffers(compiled, library, backend="soa")
    previous = kernel_cutoff()
    print(f"fig4 trunk n={positions}, b=32, compiled soa:")
    try:
        for cutoff in CUTOFF_SWEEP:
            set_kernel_cutoff(cutoff)
            result = insert_buffers(compiled, library, backend="soa")
            assert result.slack == reference.slack  # cutoff never changes bits
            assert result.assignment == reference.assignment
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                insert_buffers(compiled, library, backend="soa")
                best = min(best, time.perf_counter() - started)
            label = "inf" if cutoff == 1 << 30 else str(cutoff)
            print(f"  cutoff {label:>6}: {best*1e3:8.2f}ms")
    finally:
        set_kernel_cutoff(previous)


def batched_sweep(scale: float, repeats: int) -> None:
    """Confirm the pick on the batch-axis group path.

    The group kernels compare ``lanes * width`` against the cutoff —
    the element count of the whole lane block a batched kernel would
    touch — so a 16-lane group crosses it at width 3 and runs
    vectorized for essentially the entire solve.  The cutoff is
    selection-only dispatch there too: every setting must produce
    bit-identical lanes.
    """
    from repro.core.stores.batch_axis import BatchedSoAFactory, solve_group
    from repro.experiments.workloads import corner_variants

    positions = max(int(2000 * scale), 100)
    lanes = 16
    library = paper_library(32, jitter=0.03, seed=32)
    tree = build_net(FIG4_NET, positions_override=positions)
    compiled = [
        compile_net(variant, library)
        for _, variant in corner_variants(tree, lanes)
    ]
    factory = BatchedSoAFactory(lanes)
    reference = solve_group(compiled, library, factory=factory)
    previous = kernel_cutoff()
    print(f"batched fig4 group n={positions}, lanes={lanes}, b=32:")
    try:
        for cutoff in CUTOFF_SWEEP:
            set_kernel_cutoff(cutoff)
            results = solve_group(compiled, library, factory=factory)
            for ref, result in zip(reference, results):
                assert result.slack == ref.slack
                assert result.assignment == ref.assignment
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                solve_group(compiled, library, factory=factory)
                best = min(best, time.perf_counter() - started)
            label = "inf" if cutoff == 1 << 30 else str(cutoff)
            print(f"  cutoff {label:>6}: {best*1e3:8.2f}ms")
    finally:
        set_kernel_cutoff(previous)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Tune the SoA selection-kernel cutoff.")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    kernel_sweep(args.repeats)
    end_to_end_sweep(args.scale, args.repeats)
    batched_sweep(args.scale, args.repeats)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
